"""Unit tests for the row-oriented heap file."""

import numpy as np
import pytest

from repro.data import float32_exact
from repro.errors import StorageError
from repro.storage import HeapFile, Pager


@pytest.fixture
def matrix(rng):
    return float32_exact(rng.random((137, 5)))  # odd size: partial last page


@pytest.fixture
def heap(matrix):
    # 5 floats x 4 bytes = 20 bytes per row; 3 rows per 64-byte page
    return HeapFile(matrix, Pager(page_size=64))


class TestLayout:
    def test_points_per_page(self, heap):
        assert heap.points_per_page == 3

    def test_page_count(self, heap):
        assert heap.page_count == -(-137 // 3)

    def test_row_too_large(self):
        with pytest.raises(StorageError):
            HeapFile(np.zeros((2, 100)), Pager(page_size=64))

    def test_page_of_point(self, heap):
        assert heap.page_of_point(0) == 0
        assert heap.page_of_point(2) == 0
        assert heap.page_of_point(3) == 1
        with pytest.raises(StorageError):
            heap.page_of_point(137)


class TestScan:
    def test_round_trip(self, heap, matrix):
        np.testing.assert_array_equal(heap.read_all(), matrix.astype(np.float32))

    def test_scan_yields_in_order(self, heap):
        first_ids = [first for first, _rows in heap.scan()]
        assert first_ids == sorted(first_ids)
        assert first_ids[0] == 0

    def test_scan_is_sequential(self, heap):
        heap.pager.reset_counters()
        list(heap.scan())
        recorder = heap.pager.recorder
        assert recorder.random_reads == 1  # only the initial seek
        assert recorder.sequential_reads == heap.page_count - 1


class TestFetch:
    def test_fetch_returns_requested_order(self, heap, matrix):
        ids = [100, 3, 57, 3]
        rows = heap.fetch_points(ids)
        np.testing.assert_array_equal(rows, matrix[ids].astype(np.float32))

    def test_fetch_reads_each_page_once(self, heap):
        heap.pager.reset_counters()
        heap.fetch_points([0, 1, 2])  # same page
        assert heap.pager.recorder.total_reads == 1

    def test_scattered_fetch_is_mostly_random(self, heap):
        heap.pager.reset_counters()
        heap.fetch_points([0, 30, 60, 90, 120])
        recorder = heap.pager.recorder
        assert recorder.random_reads == 5
        assert recorder.sequential_reads == 0

    def test_adjacent_pages_fetch_sequential(self, heap):
        heap.pager.reset_counters()
        heap.fetch_points([0, 3, 6])  # pages 0, 1, 2
        recorder = heap.pager.recorder
        assert recorder.random_reads == 1
        assert recorder.sequential_reads == 2

    def test_fetch_invalid_id(self, heap):
        with pytest.raises(StorageError):
            heap.fetch_points([9999])

    def test_fetch_empty(self, heap):
        rows = heap.fetch_points([])
        assert rows.shape == (0, 5)


class TestSharedPager:
    def test_two_files_on_one_pager(self, matrix):
        pager = Pager(page_size=64)
        first = HeapFile(matrix, pager)
        second = HeapFile(matrix * 0.5, pager)
        np.testing.assert_array_equal(first.read_all(), matrix.astype(np.float32))
        np.testing.assert_array_equal(
            second.read_all(), (matrix * 0.5).astype(np.float32)
        )
        assert second.page_of_point(0) == first.page_count
