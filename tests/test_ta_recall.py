"""Fagin's TA and the kNN-recall evaluator."""

import numpy as np
import pytest

from repro.baselines import ta_top_k
from repro.errors import ValidationError
from repro.eval import (
    frequent_knmatch_searcher,
    knn_recall,
    knn_searcher,
)


class TestThresholdAlgorithm:
    def test_correct_for_monotone_sum(self, rng):
        data = rng.random((80, 4))
        run = ta_top_k(data, lambda row: float(row.sum()), k=5)
        expected = np.argsort(data.sum(axis=1))[:5]
        assert sorted(run.ids) == sorted(int(i) for i in expected)

    def test_correct_for_monotone_max(self, rng):
        data = rng.random((80, 4))
        run = ta_top_k(data, lambda row: float(row.max()), k=3)
        expected = np.argsort(data.max(axis=1))[:3]
        assert sorted(run.ids) == sorted(int(i) for i in expected)

    def test_aggregates_ascending(self, rng):
        data = rng.random((60, 3))
        run = ta_top_k(data, lambda row: float(row.sum()), k=5)
        assert run.aggregates == sorted(run.aggregates)

    def test_stops_before_full_scan_on_correlated_data(self, rng):
        data = np.sort(rng.random((200, 3)), axis=0)
        run = ta_top_k(data, lambda row: float(row.sum()), k=1)
        assert run.sorted_accesses < 200 * 3 / 2

    def test_ta_at_most_fa_depth(self, rng):
        """TA's threshold always stops no later than FA (classic result)."""
        from repro.baselines import fa_top_k

        data = rng.random((100, 4))
        agg = lambda row: float(row.sum())  # noqa: E731
        ta = ta_top_k(data, agg, k=3)
        fa = fa_top_k(data, agg, k=3)
        assert ta.sorted_accesses <= fa.sorted_accesses
        assert sorted(ta.ids) == sorted(fa.ids)

    def test_breaks_on_n_match_difference(self, figure3_database, figure3_query):
        """The paper's Fig.-3 setup defeats TA exactly like FA: the true
        1-match (point 2, diff 0.2) is missed."""

        def one_match(row: np.ndarray) -> float:
            return float(np.min(np.abs(row - figure3_query)))

        run = ta_top_k(figure3_database, one_match, k=1)
        assert run.ids != [1]  # the correct answer is point index 1

    def test_k_validated(self, rng):
        with pytest.raises(ValidationError):
            ta_top_k(rng.random((5, 2)), lambda row: 0.0, k=6)


class TestKnnRecall:
    def test_knn_searcher_has_perfect_recall(self, small_data):
        report = knn_recall(
            small_data, knn_searcher(small_data), "knn", queries=20, k=10
        )
        assert report.mean_recall == 1.0

    def test_random_searcher_has_poor_recall(self, small_data, rng):
        def random_searcher(query, k):
            return rng.choice(300, size=k, replace=False).tolist()

        report = knn_recall(
            small_data, random_searcher, "random", queries=20, k=10
        )
        assert report.mean_recall < 0.3

    def test_frequent_knmatch_is_not_a_knn_approximation(self, small_data):
        """The paper's Sec.-6 point: matching is a different query, not
        an approximate kNN — its recall sits strictly between random
        and perfect."""
        report = knn_recall(
            small_data,
            frequent_knmatch_searcher(small_data),
            "freq-knmatch",
            queries=20,
            k=10,
        )
        assert 0.2 < report.mean_recall < 1.0

    def test_str(self, small_data):
        report = knn_recall(
            small_data, knn_searcher(small_data), "knn", queries=5, k=3
        )
        assert "recall" in str(report)

    def test_validation(self, small_data):
        searcher = knn_searcher(small_data)
        with pytest.raises(ValidationError):
            knn_recall(small_data, searcher, "x", queries=0)
        with pytest.raises(ValidationError):
            knn_recall(small_data, searcher, "x", k=301)
        with pytest.raises(ValidationError):
            knn_recall(np.zeros(5), searcher, "x")

    def test_searcher_answer_count_enforced(self, small_data):
        def lazy(query, k):
            return [0]

        with pytest.raises(ValidationError):
            knn_recall(small_data, lazy, "lazy", queries=2, k=5)
