"""The R-tree baseline: structure invariants, queries, the curse."""

import numpy as np
import pytest

from repro.baselines import KnnEngine, Rect, RTree
from repro.errors import ValidationError


@pytest.fixture
def tree_and_data(rng):
    data = rng.random((500, 4))
    return RTree.build(data, max_entries=16), data


class TestRect:
    def test_point_rect(self):
        rect = Rect.point(np.array([1.0, 2.0]))
        assert rect.area() == 0.0
        assert rect.contains_point(np.array([1.0, 2.0]))

    def test_extend_and_area(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        rect.extend(Rect(np.array([2.0, 0.5]), np.array([3.0, 2.0])))
        np.testing.assert_array_equal(rect.low, [0.0, 0.0])
        np.testing.assert_array_equal(rect.high, [3.0, 2.0])
        assert rect.area() == pytest.approx(6.0)

    def test_enlargement(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        other = Rect.point(np.array([2.0, 1.0]))
        assert rect.enlargement(other) == pytest.approx(1.0)

    def test_intersects(self):
        a = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = Rect(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        c = Rect(np.array([1.5, 1.5]), np.array([2.0, 2.0]))
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)
        # touching edges do intersect
        d = Rect(np.array([1.0, 0.0]), np.array([2.0, 1.0]))
        assert a.intersects(d)

    def test_min_distance(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.min_distance(np.array([0.5, 0.5])) == 0.0
        assert rect.min_distance(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert rect.min_distance(np.array([2.0, 2.0])) == pytest.approx(np.sqrt(2))


class TestStructure:
    def test_size_and_nodes(self, tree_and_data):
        tree, data = tree_and_data
        assert tree.size == 500
        assert tree.node_count > 1
        assert tree.height >= 2

    def test_fanout_bounds(self, tree_and_data):
        tree, _ = tree_and_data
        stack = [(tree._root, True)]
        while stack:
            node, is_root = stack.pop()
            assert node.fanout() <= tree.max_entries
            if not is_root:
                assert node.fanout() >= 1
            if not node.leaf:
                stack.extend((child, False) for child in node.children)

    def test_rects_contain_children(self, tree_and_data):
        tree, _ = tree_and_data
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for _pid, coords in node.entries:
                    assert node.rect.contains_point(coords)
            else:
                for child in node.children:
                    assert np.all(node.rect.low <= child.rect.low + 1e-12)
                    assert np.all(child.rect.high <= node.rect.high + 1e-12)
                    stack.append(child)

    def test_all_points_present(self, tree_and_data):
        tree, data = tree_and_data
        found = tree.range_query(np.zeros(4), np.ones(4))
        assert found == list(range(500))

    def test_validation(self):
        with pytest.raises(ValidationError):
            RTree(0)
        with pytest.raises(ValidationError):
            RTree(2, max_entries=3)
        with pytest.raises(ValidationError):
            RTree(2).k_nearest([0.0, 0.0], 1)


class TestRangeQuery:
    def test_matches_brute_force(self, tree_and_data, rng):
        tree, data = tree_and_data
        for _ in range(10):
            low = rng.random(4) * 0.6
            high = low + rng.random(4) * 0.4
            expected = sorted(
                int(i)
                for i in np.flatnonzero(
                    np.all((data >= low) & (data <= high), axis=1)
                )
            )
            assert tree.range_query(low, high) == expected

    def test_empty_window(self, tree_and_data):
        tree, _ = tree_and_data
        assert tree.range_query(np.full(4, 2.0), np.full(4, 3.0)) == []

    def test_inverted_window_rejected(self, tree_and_data):
        tree, _ = tree_and_data
        with pytest.raises(ValidationError):
            tree.range_query(np.ones(4), np.zeros(4))


class TestKNearest:
    def test_matches_scan_knn(self, tree_and_data, rng):
        tree, data = tree_and_data
        knn = KnnEngine(data)
        for _ in range(5):
            query = rng.random(4)
            tree_result = tree.k_nearest(query, 10)
            scan_result = knn.top_k(query, 10)
            np.testing.assert_allclose(
                [dist for _pid, dist in tree_result],
                scan_result.distances,
                atol=1e-9,
            )

    def test_distances_ascending(self, tree_and_data, rng):
        tree, _ = tree_and_data
        result = tree.k_nearest(rng.random(4), 20)
        distances = [dist for _pid, dist in result]
        assert distances == sorted(distances)

    def test_self_query(self, tree_and_data):
        tree, data = tree_and_data
        result = tree.k_nearest(data[123], 1)
        assert result[0][0] == 123
        assert result[0][1] == pytest.approx(0.0)

    def test_k_validated(self, tree_and_data):
        tree, _ = tree_and_data
        with pytest.raises(ValidationError):
            tree.k_nearest(np.zeros(4), 501)

    def test_node_access_counter(self, tree_and_data, rng):
        tree, _ = tree_and_data
        tree.reset_counters()
        tree.k_nearest(rng.random(4), 5)
        assert 0 < tree.node_accesses <= tree.node_count


class TestDimensionalityCurse:
    def test_node_access_fraction_grows_with_d(self, rng):
        """The paper's Sec.-6 claim, measured: at low d a kNN query
        touches a small share of nodes; at high d nearly all of them."""
        fractions = {}
        for d in (2, 16):
            data = rng.random((2000, d))
            tree = RTree.build(data, max_entries=16)
            tree.reset_counters()
            for query in rng.random((5, d)):
                tree.k_nearest(query, 10)
            fractions[d] = tree.node_accesses / (5 * tree.node_count)
        assert fractions[2] < 0.35
        assert fractions[16] > 0.85
        assert fractions[2] < fractions[16]
