"""The SS-tree baseline: invariants, exact kNN, the curse again."""

import numpy as np
import pytest

from repro.baselines import KnnEngine, RTree, SSTree
from repro.errors import ValidationError


@pytest.fixture
def tree_and_data(rng):
    data = rng.random((400, 4))
    return SSTree.build(data, max_entries=16), data


class TestStructure:
    def test_size_and_nodes(self, tree_and_data):
        tree, _ = tree_and_data
        assert tree.size == 400
        assert tree.node_count > 1

    def test_fanout_bounds(self, tree_and_data):
        tree, _ = tree_and_data
        stack = [tree._root]
        while stack:
            node = stack.pop()
            assert 1 <= node.fanout() <= tree.max_entries
            if not node.leaf:
                stack.extend(node.children)

    def test_spheres_cover_contents(self, tree_and_data):
        tree, _ = tree_and_data
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for _pid, coords in node.entries:
                    distance = np.linalg.norm(coords - node.sphere.center)
                    assert distance <= node.sphere.radius + 1e-9
            else:
                for child in node.children:
                    reach = (
                        np.linalg.norm(child.sphere.center - node.sphere.center)
                        + child.sphere.radius
                    )
                    assert reach <= node.sphere.radius + 1e-9
                    stack.append(child)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SSTree(0)
        with pytest.raises(ValidationError):
            SSTree(2, max_entries=2)
        with pytest.raises(ValidationError):
            SSTree(2).k_nearest([0.0, 0.0], 1)


class TestKNearest:
    def test_matches_scan_knn(self, tree_and_data, rng):
        tree, data = tree_and_data
        knn = KnnEngine(data)
        for _ in range(5):
            query = rng.random(4)
            tree_result = tree.k_nearest(query, 8)
            scan_result = knn.top_k(query, 8)
            np.testing.assert_allclose(
                [dist for _pid, dist in tree_result],
                scan_result.distances,
                atol=1e-9,
            )

    def test_self_query(self, tree_and_data):
        tree, data = tree_and_data
        result = tree.k_nearest(data[55], 1)
        assert result[0][0] == 55
        assert result[0][1] == pytest.approx(0.0)

    def test_distances_ascending(self, tree_and_data, rng):
        tree, _ = tree_and_data
        result = tree.k_nearest(rng.random(4), 15)
        distances = [dist for _pid, dist in result]
        assert distances == sorted(distances)

    def test_node_accounting(self, tree_and_data, rng):
        tree, _ = tree_and_data
        tree.reset_counters()
        tree.k_nearest(rng.random(4), 5)
        assert 0 < tree.node_accesses <= tree.node_count


class TestCurse:
    def test_sstree_also_collapses_at_high_d(self, rng):
        fractions = {}
        for d in (2, 16):
            data = rng.random((1500, d))
            tree = SSTree.build(data, max_entries=16)
            tree.reset_counters()
            for query in rng.random((5, d)):
                tree.k_nearest(query, 10)
            fractions[d] = tree.node_accesses / (5 * tree.node_count)
        assert fractions[2] < 0.6
        assert fractions[16] > 0.9

    def test_agrees_with_rtree(self, rng):
        """Two independent exact indexes, identical kNN distances."""
        data = rng.random((600, 3))
        ss = SSTree.build(data)
        rt = RTree.build(data)
        query = rng.random(3)
        ss_dists = [dist for _pid, dist in ss.k_nearest(query, 12)]
        rt_dists = [dist for _pid, dist in rt.k_nearest(query, 12)]
        np.testing.assert_allclose(ss_dists, rt_dists, atol=1e-9)
