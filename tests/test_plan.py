"""The cost-based query planner behind ``engine="auto"``.

Covers the exactness contract (auto answers bit-identical to every
manual canonical-tie-break engine across the flat, sharded and dynamic
facades, on tie-heavy data), planner determinism, the cost-model
round-trip and sidecar persistence, the fallback path, and the
``repro_plan_*`` metrics / ``plan`` span surface.
"""

import numpy as np
import pytest

from repro import MatchDatabase, MetricsRegistry
from repro.core.dynamic import DynamicMatchDatabase
from repro.core.engine import AUTO_ENGINE, ENGINE_CHOICES, ENGINE_NAMES
from repro.errors import ValidationError
from repro.obs import SpanCollector
from repro.plan import (
    FALLBACK_ENGINE,
    CostCurve,
    PlanModel,
    QueryPlanner,
    load_plan_model,
    plan_model_path,
    save_plan_model,
)
from repro.shard import ShardedMatchDatabase


@pytest.fixture
def tie_data(rng):
    """Quantised values: heavy ties, where engine order differences show."""
    return np.round(rng.random((240, 6)) * 4) / 4


@pytest.fixture
def tie_queries(tie_data):
    return tie_data[:4] + 0.125


#: A model whose curves make block-ad the predictable winner without
#: probing; used whenever a test needs a deterministic decision.
def fixed_model():
    return PlanModel(
        {
            "block-ad": CostCurve("block-ad", 1e-7, source="bench"),
            "naive": CostCurve("naive", 2e-7, source="bench"),
            "batch-block-ad": CostCurve("batch-block-ad", 1e-7, source="bench"),
        }
    )


class TestAutoBitIdentical:
    """engine="auto" never changes an answer, only which engine runs."""

    @pytest.mark.parametrize("manual", ["block-ad", "naive"])
    def test_single_query_flat(self, tie_data, tie_queries, manual):
        db = MatchDatabase(tie_data)
        for query in tie_queries:
            auto = db.k_n_match(query, 7, 4, engine="auto")
            ref = db.k_n_match(query, 7, 4, engine=manual)
            assert auto.ids == ref.ids
            assert auto.differences == ref.differences

    @pytest.mark.parametrize("manual", ["block-ad", "naive"])
    def test_frequent_flat(self, tie_data, tie_queries, manual):
        db = MatchDatabase(tie_data)
        for query in tie_queries:
            auto = db.frequent_k_n_match(query, 6, (2, 5), engine="auto")
            ref = db.frequent_k_n_match(query, 6, (2, 5), engine=manual)
            assert auto.ids == ref.ids
            assert auto.frequencies == ref.frequencies
            assert auto.answer_sets == ref.answer_sets

    @pytest.mark.parametrize("manual", ["batch-block-ad", "block-ad", "naive"])
    def test_batch_flat(self, tie_data, tie_queries, manual):
        db = MatchDatabase(tie_data)
        auto = db.k_n_match_batch(tie_queries, 7, 4, engine="auto")
        ref = db.k_n_match_batch(tie_queries, 7, 4, engine=manual)
        for a, r in zip(auto, ref):
            assert a.ids == r.ids
            assert a.differences == r.differences

    @pytest.mark.parametrize("manual", ["batch-block-ad", "block-ad", "naive"])
    def test_frequent_batch_flat(self, tie_data, tie_queries, manual):
        db = MatchDatabase(tie_data)
        auto = db.frequent_k_n_match_batch(tie_queries, 6, (2, 5), engine="auto")
        ref = db.frequent_k_n_match_batch(tie_queries, 6, (2, 5), engine=manual)
        for a, r in zip(auto, ref):
            assert a.ids == r.ids
            assert a.frequencies == r.frequencies

    def test_auto_as_default_engine(self, tie_data, tie_queries):
        db = MatchDatabase(tie_data, default_engine="auto")
        ref = MatchDatabase(tie_data)
        for query in tie_queries:
            auto = db.k_n_match(query, 5, 3)
            manual = ref.k_n_match(query, 5, 3, engine="block-ad")
            assert auto.ids == manual.ids

    @pytest.mark.parametrize("manual", ["block-ad", "naive"])
    def test_sharded_matches_flat(self, tie_data, tie_queries, manual):
        flat = MatchDatabase(tie_data)
        sharded = ShardedMatchDatabase(tie_data, shards=3)
        for query in tie_queries:
            auto = sharded.k_n_match(query, 7, 4, engine="auto")
            ref = flat.k_n_match(query, 7, 4, engine=manual)
            assert auto.ids == ref.ids
            assert auto.differences == ref.differences

    def test_sharded_frequent_and_batch(self, tie_data, tie_queries):
        flat = MatchDatabase(tie_data)
        sharded = ShardedMatchDatabase(tie_data, shards=3)
        fa = sharded.frequent_k_n_match(tie_queries[0], 6, (2, 5), engine="auto")
        fr = flat.frequent_k_n_match(tie_queries[0], 6, (2, 5), engine="block-ad")
        assert fa.ids == fr.ids and fa.frequencies == fr.frequencies
        ba = sharded.k_n_match_batch(tie_queries, 7, 4, engine="auto")
        br = flat.k_n_match_batch(tie_queries, 7, 4, engine="block-ad")
        for a, r in zip(ba, br):
            assert a.ids == r.ids
        fba = sharded.frequent_k_n_match_batch(tie_queries, 6, (2, 5), engine="auto")
        fbr = flat.frequent_k_n_match_batch(
            tie_queries, 6, (2, 5), engine="block-ad"
        )
        for a, r in zip(fba, fbr):
            assert a.ids == r.ids

    def test_sharded_auto_default_engine(self, tie_data, tie_queries):
        sharded = ShardedMatchDatabase(tie_data, shards=3, default_engine="auto")
        flat = MatchDatabase(tie_data)
        auto = sharded.k_n_match(tie_queries[0], 5, 3)
        ref = flat.k_n_match(tie_queries[0], 5, 3, engine="block-ad")
        assert auto.ids == ref.ids

    def test_dynamic_matches_flat_auto(self, tie_data, tie_queries):
        # The dynamic facade has no engine= parameter; its canonical
        # tie-break must agree with whatever the planner picks.
        dynamic = DynamicMatchDatabase(tie_data)
        flat = MatchDatabase(tie_data)
        for query in tie_queries:
            dyn = dynamic.k_n_match(query, 7, 4)
            auto = flat.k_n_match(query, 7, 4, engine="auto")
            assert dyn.ids == auto.ids
            assert dyn.differences == auto.differences


class TestPlannerDecisions:
    def test_deterministic_given_model(self, tie_data):
        a = QueryPlanner(MatchDatabase(tie_data), model=fixed_model(), seed=3)
        b = QueryPlanner(MatchDatabase(tie_data), model=fixed_model(), seed=3)
        pa = a.plan("frequent_k_n_match", 6, (2, 5))
        pb = b.plan("frequent_k_n_match", 6, (2, 5))
        assert pa.engine == pb.engine
        assert pa.predicted_seconds == pb.predicted_seconds
        assert pa.candidates == pb.candidates
        assert pa.reason == pb.reason

    def test_decision_cached_per_workload(self, tie_data):
        planner = QueryPlanner(MatchDatabase(tie_data), model=fixed_model())
        first = planner.plan("k_n_match", 5, (3, 3))
        again = planner.plan("k_n_match", 5, (3, 3))
        assert again is first
        planner.invalidate()
        fresh = planner.plan("k_n_match", 5, (3, 3))
        assert fresh is not first
        assert fresh.engine == first.engine

    def test_fixed_model_prefers_cheaper_curve(self, tie_data):
        # naive touches every cell, so with a per-cell price only 2x
        # block-ad's it loses whenever the estimated fraction is < 50%.
        planner = QueryPlanner(MatchDatabase(tie_data), model=fixed_model())
        plan = planner.plan("k_n_match", 5, (2, 2))
        assert plan.engine == "block-ad"
        assert not plan.fallback
        assert set(plan.candidates) == {"block-ad", "naive"}
        assert plan.estimate is not None
        assert plan.estimate.kind == "k-n-match"

    def test_naive_wins_when_frontier_overpriced(self, tie_data):
        model = PlanModel(
            {
                "block-ad": CostCurve("block-ad", 1e-4),
                "naive": CostCurve("naive", 1e-9),
            }
        )
        planner = QueryPlanner(MatchDatabase(tie_data), model=model)
        plan = planner.plan("frequent_k_n_match", 5, (2, 5))
        assert plan.engine == "naive"

    def test_batch_considers_batch_engine(self, tie_data):
        planner = QueryPlanner(MatchDatabase(tie_data), model=fixed_model())
        plan = planner.plan("k_n_match", 5, (3, 3), batched=True)
        assert "batch-block-ad" in plan.candidates

    def test_probing_fits_missing_curves(self, tie_data):
        planner = QueryPlanner(MatchDatabase(tie_data))
        assert planner.model.engines == ()
        plan = planner.plan("k_n_match", 5, (3, 3))
        assert not plan.fallback
        assert planner.model.has_curve(plan.engine)
        assert plan.predicted_seconds > 0

    def test_fallback_when_unpriceable(self, tie_data, monkeypatch):
        import repro.core.engine as engine_module

        def refuse(name, columns, metrics=None, spans=None):
            raise ValidationError("probing disabled for this test")

        monkeypatch.setattr(engine_module, "make_engine", refuse)
        planner = QueryPlanner(MatchDatabase(tie_data))
        plan = planner.plan("k_n_match", 5, (3, 3))
        assert plan.fallback
        assert plan.engine == FALLBACK_ENGINE
        assert plan.candidates == {}

    def test_validation_flows_through_plan(self, tie_data):
        db = MatchDatabase(tie_data)
        with pytest.raises(ValidationError):
            db.plan_query("k_n_match", 0, (3, 3))
        with pytest.raises(ValidationError):
            db.plan_query("k_n_match", 5, (5, 2))
        with pytest.raises(ValidationError):
            db.plan_query("nearest", 5, (2, 3))

    def test_auto_error_messages_match_manual(self, tie_data):
        # A bad k rejected on the auto path reads exactly like the same
        # bad k rejected on a manual-engine path.
        db = MatchDatabase(tie_data)
        with pytest.raises(ValidationError) as auto_error:
            db.k_n_match(tie_data[0], 0, 3, engine="auto")
        with pytest.raises(ValidationError) as manual_error:
            db.k_n_match(tie_data[0], 0, 3, engine="block-ad")
        assert str(auto_error.value) == str(manual_error.value)

    def test_record_actual_refines_curve(self, tie_data):
        planner = QueryPlanner(MatchDatabase(tie_data), model=fixed_model())
        plan = planner.plan("k_n_match", 5, (3, 3))
        before = planner.model.curve(plan.engine).seconds_per_cell
        planner.record_actual(plan, cells=1000.0, seconds=1.0)
        after = planner.model.curve(plan.engine).seconds_per_cell
        assert after != before

    def test_sharded_plan_clamps_k_to_largest_shard(self, rng):
        data = np.round(rng.random((30, 4)) * 4) / 4
        sharded = ShardedMatchDatabase(data, shards=6)
        # k valid globally but larger than any single shard's cardinality
        plan = sharded.plan_query("k_n_match", 20, (2, 2))
        assert plan.k <= max(
            db.cardinality for db in sharded._shard_dbs if db is not None
        )
        assert plan.fanout > 1


class TestEngineRegistry:
    def test_auto_in_choices_not_names(self):
        assert AUTO_ENGINE in ENGINE_CHOICES
        assert AUTO_ENGINE not in ENGINE_NAMES

    def test_engine_accessor_rejects_auto(self, tie_data):
        db = MatchDatabase(tie_data, default_engine="auto")
        with pytest.raises(ValidationError, match="resolved per query"):
            db.engine()
        with pytest.raises(ValidationError, match="resolved per query"):
            MatchDatabase(tie_data).engine("auto")

    def test_unknown_default_engine_still_rejected(self, tie_data):
        with pytest.raises(ValidationError):
            MatchDatabase(tie_data, default_engine="bogus")
        with pytest.raises(ValidationError):
            ShardedMatchDatabase(tie_data, shards=2, default_engine="bogus")


class TestPlanModel:
    def test_round_trip(self):
        model = fixed_model()
        model.observe("block-ad", 500, 0.01)
        restored = PlanModel.from_dict(model.to_dict())
        assert restored.engines == model.engines
        for name in model.engines:
            assert restored.curve(name) == model.curve(name)

    def test_sidecar_save_load(self, tmp_path):
        base = tmp_path / "db.npz"
        base.write_bytes(b"")
        path = save_plan_model(fixed_model(), base)
        assert path == plan_model_path(base)
        loaded = load_plan_model(base)
        assert loaded is not None
        assert loaded.engines == fixed_model().engines

    def test_missing_sidecar_is_none(self, tmp_path):
        assert load_plan_model(tmp_path / "absent.npz") is None

    def test_malformed_sidecar_raises(self, tmp_path):
        base = tmp_path / "db.npz"
        with open(plan_model_path(base), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ValidationError):
            load_plan_model(base)

    def test_version_mismatch_raises(self):
        with pytest.raises(ValidationError):
            PlanModel.from_dict({"version": 99, "curves": {}})
        with pytest.raises(ValidationError):
            PlanModel.from_dict(["not", "a", "dict"])

    def test_observe_creates_and_blends(self):
        model = PlanModel()
        model.observe("block-ad", 100, 0.001)
        assert model.curve("block-ad").source == "observed"
        first = model.curve("block-ad").seconds_per_cell
        model.observe("block-ad", 100, 0.003)
        blended = model.curve("block-ad").seconds_per_cell
        assert first < blended < 0.003 / 100

    def test_predict_unfit_engine_is_none(self):
        assert PlanModel().predict("block-ad", 100) is None

    def test_set_plan_model_resets_planner(self, tie_data):
        db = MatchDatabase(tie_data)
        first = db.planner
        db.set_plan_model(fixed_model())
        assert db.planner is not first
        assert db.planner.model.has_curve("naive")


class TestPlanObservability:
    def test_metrics_and_span_exported(self, tie_data, tie_queries):
        db = MatchDatabase(tie_data)
        registry = MetricsRegistry()
        spans = SpanCollector()
        db.set_metrics(registry)
        db.set_spans(spans)
        db.set_plan_model(fixed_model())
        result = db.k_n_match(tie_queries[0], 5, 3, engine="auto")
        assert len(result.ids) == 5
        decisions = registry.get("repro_plan_decisions_total")
        assert decisions is not None
        (child,) = [
            c
            for c in decisions.children()
            if dict(c.labels)["engine"] == "block-ad"
        ]
        assert child.value == 1
        assert registry.get("repro_plan_predicted_seconds").children()
        assert registry.get("repro_plan_actual_seconds").children()
        plan_spans = [
            root for root in spans.traces() if root.name == "plan"
        ]
        assert plan_spans, [root.name for root in spans.traces()]
        assert plan_spans[0].meta["engine"] == "block-ad"

    def test_no_metrics_no_overhead_objects(self, tie_data, tie_queries):
        db = MatchDatabase(tie_data)
        db.set_plan_model(fixed_model())
        result = db.k_n_match(tie_queries[0], 5, 3, engine="auto")
        assert len(result.ids) == 5  # no registry installed: still fine

    def test_sharded_fanout_metric(self, tie_data, tie_queries):
        sharded = ShardedMatchDatabase(tie_data, shards=3)
        registry = MetricsRegistry()
        sharded.set_metrics(registry)
        sharded.set_plan_model(fixed_model())
        sharded.k_n_match(tie_queries[0], 5, 3, engine="auto")
        fanout = registry.get("repro_plan_fanout_total")
        assert fanout is not None and fanout.children()


class TestPlanCLI:
    def test_plan_command_saves_sidecar(self, tie_data, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_database

        path = tmp_path / "db.npz"
        save_database(MatchDatabase(tie_data), path)
        rc = main(
            ["plan", str(path), "--k", "5", "--n-range", "2:5", "--save"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan[frequent_k_n_match" in out
        assert "cost curves" in out
        sidecar = load_plan_model(path)
        assert sidecar is not None and sidecar.engines

    def test_query_engine_auto(self, tie_data, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_database

        path = tmp_path / "db.npz"
        save_database(MatchDatabase(tie_data), path)
        query = ",".join(str(v) for v in tie_data[0])
        rc = main(
            [
                "query", str(path), "--k", "3", "--n", "4",
                "--query", query, "--engine", "auto",
            ]
        )
        assert rc == 0
        assert "3-4-match answers" in capsys.readouterr().out
