"""The AD engine against the naive oracle, plus its counters and edges."""

import numpy as np
import pytest

from conftest import (
    assert_valid_frequent,
    assert_valid_knmatch,
    reference_differences,
)
from repro import MatchDatabase
from repro.core.ad import ADEngine
from repro.core.naive import NaiveScanEngine
from repro.errors import ValidationError


class TestKNMatchAgainstOracle:
    @pytest.mark.parametrize("n", [1, 2, 4, 7, 8])
    @pytest.mark.parametrize("k", [1, 5, 37])
    def test_differences_match_naive(self, small_data, small_query, n, k):
        ad = ADEngine(small_data).k_n_match(small_query, k, n)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, k, n)
        np.testing.assert_allclose(
            sorted(ad.differences), sorted(naive.differences), atol=1e-12
        )
        assert_valid_knmatch(small_data, small_query, n, k, ad.ids)

    def test_ids_match_naive_when_tie_free(self, small_data, small_query):
        # continuous data: ties have probability ~0, so the sets agree
        ad = ADEngine(small_data).k_n_match(small_query, 11, 5)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 11, 5)
        assert sorted(ad.ids) == sorted(naive.ids)

    def test_results_sorted_by_difference(self, small_data, small_query):
        result = ADEngine(small_data).k_n_match(small_query, 9, 4)
        assert result.differences == sorted(result.differences)

    def test_deterministic(self, small_data, small_query):
        a = ADEngine(small_data).k_n_match(small_query, 6, 3)
        b = ADEngine(small_data).k_n_match(small_query, 6, 3)
        assert a.ids == b.ids
        assert a.stats.heap_pops == b.stats.heap_pops


class TestFrequentAgainstOracle:
    @pytest.mark.parametrize("n_range", [(1, 8), (3, 6), (5, 5)])
    def test_answer_sets_valid_and_ids_agree(self, small_data, small_query, n_range):
        ad = ADEngine(small_data).frequent_k_n_match(small_query, 10, n_range)
        naive = NaiveScanEngine(small_data).frequent_k_n_match(
            small_query, 10, n_range
        )
        assert ad.ids == naive.ids
        assert ad.frequencies == naive.frequencies
        assert_valid_frequent(small_data, small_query, n_range, 10, ad.answer_sets)

    def test_literal_pseudocode_mode_supersets(self, small_data, small_query):
        """truncate_answer_sets=False reproduces Fig. 6 verbatim: S[n]
        may exceed k for n < n1 but its first k entries are the answer."""
        engine = ADEngine(small_data)
        strict = engine.frequent_k_n_match(small_query, 8, (2, 6))
        literal = engine.frequent_k_n_match(
            small_query, 8, (2, 6), truncate_answer_sets=False
        )
        for n in range(2, 7):
            assert literal.answer_sets[n][:8] == strict.answer_sets[n]
            assert len(literal.answer_sets[n]) >= len(strict.answer_sets[n])
        assert len(literal.answer_sets[6]) == 8  # n1 stops exactly at k

    def test_keep_answer_sets_false(self, small_data, small_query):
        result = ADEngine(small_data).frequent_k_n_match(
            small_query, 5, (2, 4), keep_answer_sets=False
        )
        assert result.answer_sets is None
        assert len(result.ids) == 5


class TestStats:
    def test_counters_are_consistent(self, small_data, small_query):
        result = ADEngine(small_data).k_n_match(small_query, 5, 4)
        stats = result.stats
        assert stats.total_attributes == small_data.size
        assert 0 < stats.heap_pops <= stats.attributes_retrieved
        # retrieved = popped + whatever still sits in the frontier
        assert stats.attributes_retrieved <= stats.heap_pops + 2 * 8
        assert stats.binary_search_probes == 8

    def test_larger_k_retrieves_more(self, small_data, small_query):
        engine = ADEngine(small_data)
        small = engine.k_n_match(small_query, 1, 4).stats.attributes_retrieved
        large = engine.k_n_match(small_query, 50, 4).stats.attributes_retrieved
        assert small < large

    def test_larger_n_retrieves_more(self, small_data, small_query):
        engine = ADEngine(small_data)
        small = engine.k_n_match(small_query, 5, 1).stats.attributes_retrieved
        large = engine.k_n_match(small_query, 5, 8).stats.attributes_retrieved
        assert small < large

    def test_frequent_cost_equals_k_n1_match_cost(self, small_data, small_query):
        """Thm 3.3's observation: frequent k-[n0,n1]-match retrieves the
        same attributes as a plain k-n1-match."""
        engine = ADEngine(small_data)
        frequent = engine.frequent_k_n_match(small_query, 7, (2, 6))
        plain = engine.k_n_match(small_query, 7, 6)
        assert (
            frequent.stats.attributes_retrieved
            == plain.stats.attributes_retrieved
        )


class TestEdgeCases:
    def test_k_equals_cardinality(self, small_data, small_query):
        result = ADEngine(small_data).k_n_match(small_query, 300, 4)
        assert sorted(result.ids) == list(range(300))

    def test_single_point_database(self):
        result = ADEngine([[0.3, 0.7]]).k_n_match([0.0, 0.0], 1, 2)
        assert result.ids == [0]
        assert result.differences[0] == pytest.approx(0.7)

    def test_single_dimension(self):
        data = [[0.1], [0.5], [0.9]]
        result = ADEngine(data).k_n_match([0.45], 2, 1)
        assert result.ids == [1, 0]

    def test_query_outside_data_range(self, small_data):
        # all cursors walk one direction only
        result = ADEngine(small_data).k_n_match(np.full(8, 10.0), 3, 8)
        expected = np.argsort(reference_differences(small_data, np.full(8, 10.0), 8))
        assert sorted(result.ids) == sorted(int(i) for i in expected[:3])

    def test_duplicate_points_all_returned(self):
        data = np.tile(np.array([[0.5, 0.5]]), (4, 1))
        result = ADEngine(data).k_n_match([0.5, 0.5], 4, 2)
        assert sorted(result.ids) == [0, 1, 2, 3]
        assert result.match_difference == 0.0

    def test_validation_bubbles_up(self, small_data, small_query):
        engine = ADEngine(small_data)
        with pytest.raises(ValidationError):
            engine.k_n_match(small_query, 0, 1)
        with pytest.raises(ValidationError):
            engine.k_n_match(small_query, 1, 9)
        with pytest.raises(ValidationError):
            engine.frequent_k_n_match(small_query, 1, (5, 2))

    def test_shares_prebuilt_columns(self, small_data):
        db = MatchDatabase(small_data)
        engine = ADEngine(db.columns)
        assert engine.columns is db.columns
        assert engine.cardinality == 300
        assert engine.dimensionality == 8
