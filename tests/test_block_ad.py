"""The vectorised block-AD engine: identical answers, bounded retrieval."""

import numpy as np
import pytest

from conftest import assert_valid_frequent
from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.naive import NaiveScanEngine
from repro.data import float32_exact


class TestAgainstOracle:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_k_n_match_ids_equal_naive(self, small_data, small_query, n):
        block = BlockADEngine(small_data).k_n_match(small_query, 9, n)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 9, n)
        assert block.ids == naive.ids
        np.testing.assert_allclose(block.differences, naive.differences, atol=1e-12)

    @pytest.mark.parametrize("n_range", [(1, 8), (4, 6), (8, 8)])
    def test_frequent_equals_naive(self, small_data, small_query, n_range):
        block = BlockADEngine(small_data).frequent_k_n_match(
            small_query, 10, n_range
        )
        naive = NaiveScanEngine(small_data).frequent_k_n_match(
            small_query, 10, n_range
        )
        assert block.ids == naive.ids
        assert block.frequencies == naive.frequencies
        assert block.answer_sets == naive.answer_sets

    @pytest.mark.parametrize("seed", range(10))
    def test_randomised_configurations(self, seed):
        rng = np.random.default_rng(seed)
        c = int(rng.integers(5, 300))
        d = int(rng.integers(1, 10))
        k = int(rng.integers(1, c + 1))
        n0 = int(rng.integers(1, d + 1))
        n1 = int(rng.integers(n0, d + 1))
        data = rng.random((c, d))
        query = rng.random(d)
        block = BlockADEngine(data).frequent_k_n_match(query, k, (n0, n1))
        naive = NaiveScanEngine(data).frequent_k_n_match(query, k, (n0, n1))
        assert block.ids == naive.ids
        assert block.frequencies == naive.frequencies


class TestTieHeavyData:
    """Integer-valued data: massive ties, answer sets non-unique.

    Cross-engine id equality is NOT guaranteed here; validity is."""

    @pytest.mark.parametrize("seed", range(5))
    def test_answers_valid_under_ties(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 3, (150, 5)).astype(float)
        query = rng.integers(0, 3, 5).astype(float)
        result = BlockADEngine(data).frequent_k_n_match(query, 12, (2, 4))
        assert_valid_frequent(data, query, (2, 4), 12, result.answer_sets)

    def test_all_identical_points_terminate(self):
        data = np.full((30, 4), 0.25)
        result = BlockADEngine(data).k_n_match(np.full(4, 0.25), 5, 4)
        assert len(result.ids) == 5
        assert result.match_difference == 0.0

    def test_all_identical_far_query(self):
        data = np.full((30, 4), 0.25)
        result = BlockADEngine(data).k_n_match(np.full(4, 0.9), 5, 4)
        assert result.match_difference == pytest.approx(0.65)


class TestRetrievalEfficiency:
    def test_attribute_overhead_vs_reference_ad(self):
        """Block-AD may retrieve more than optimal AD, but only by a
        modest factor (window overshoot + candidate refinement)."""
        rng = np.random.default_rng(99)
        data = float32_exact(rng.random((5000, 12)))
        query = float32_exact(rng.random(12))
        block = BlockADEngine(data).frequent_k_n_match(query, 10, (4, 9))
        ad = ADEngine(data).frequent_k_n_match(query, 10, (4, 9))
        assert block.ids == ad.ids
        assert (
            block.stats.attributes_retrieved
            <= 4 * ad.stats.attributes_retrieved + data.shape[1] * 100
        )

    def test_stats_populated(self, small_data, small_query):
        stats = BlockADEngine(small_data).frequent_k_n_match(
            small_query, 5, (2, 6)
        ).stats
        assert stats.total_attributes == small_data.size
        assert stats.attributes_retrieved > 0
        assert stats.candidates_refined >= 5
        assert stats.binary_search_probes > 0


class TestEdgeCases:
    def test_single_point(self):
        result = BlockADEngine([[0.1, 0.2]]).k_n_match([0.0, 0.0], 1, 1)
        assert result.ids == [0]
        assert result.differences[0] == pytest.approx(0.1)

    def test_k_equals_cardinality(self, small_data, small_query):
        result = BlockADEngine(small_data).frequent_k_n_match(
            small_query, 300, (1, 8)
        )
        assert sorted(result.ids) == list(range(300))

    def test_zero_initial_epsilon_path(self):
        """Query exactly on many points: nearest differences are zero,
        forcing the eps=0 -> smallest-positive fallback."""
        data = np.array([[0.5, 0.5]] * 10 + [[0.6, 0.6]] * 10)
        result = BlockADEngine(data).k_n_match([0.5, 0.5], 15, 2)
        assert len(result.ids) == 15
        assert result.match_difference == pytest.approx(0.1)

    def test_shares_columns_with_match_database(self, small_data):
        from repro import MatchDatabase

        db = MatchDatabase(small_data)
        engine = BlockADEngine(db.columns)
        assert engine.columns is db.columns
