"""Unit tests for the sorted-column substrate (columns, cursors, heap)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sorted_lists import (
    DOWN,
    UP,
    AscendingDifferenceFrontier,
    DirectionCursor,
    SortedColumns,
    make_cursors,
)


class TestSortedColumns:
    def test_columns_are_sorted(self, small_data):
        columns = SortedColumns(small_data)
        for j in range(columns.dimensionality):
            values = columns.column_values(j)
            assert np.all(np.diff(values) >= 0)

    def test_ids_are_permutations(self, small_data):
        columns = SortedColumns(small_data)
        for j in range(columns.dimensionality):
            ids = columns.column_ids(j)
            assert sorted(ids) == list(range(columns.cardinality))

    def test_values_align_with_ids(self, small_data):
        columns = SortedColumns(small_data)
        for j in (0, columns.dimensionality - 1):
            ids = columns.column_ids(j)
            np.testing.assert_array_equal(
                columns.column_values(j), small_data[ids, j]
            )

    def test_stable_sort_orders_ties_by_id(self):
        data = np.array([[2.0], [1.0], [2.0], [1.0]])
        columns = SortedColumns(data)
        np.testing.assert_array_equal(columns.column_ids(0), [1, 3, 0, 2])

    def test_entry(self):
        columns = SortedColumns([[3.0], [1.0], [2.0]])
        assert columns.entry(0, 0) == (1, 1.0)
        assert columns.entry(0, 2) == (0, 3.0)

    def test_entry_bounds(self):
        columns = SortedColumns([[1.0]])
        with pytest.raises(ValidationError):
            columns.entry(0, 1)
        with pytest.raises(ValidationError):
            columns.entry(1, 0)

    def test_locate_is_searchsorted_left(self, small_data):
        columns = SortedColumns(small_data)
        for value in (0.0, 0.5, 1.0, small_data[0, 0]):
            expected = int(
                np.searchsorted(columns.column_values(0), value, side="left")
            )
            assert columns.locate(0, value) == expected

    def test_locate_all(self, small_data, small_query):
        columns = SortedColumns(small_data)
        positions = columns.locate_all(small_query)
        for j, pos in enumerate(positions):
            assert columns.locate(j, small_query[j]) == pos

    def test_total_attributes(self, small_data):
        columns = SortedColumns(small_data)
        assert columns.total_attributes == small_data.size


class TestDirectionCursor:
    def test_up_cursor_walks_ascending_values(self):
        columns = SortedColumns([[1.0], [3.0], [2.0]])
        cursor = DirectionCursor(columns, 0, UP, 0, query_value=0.0)
        seen = [cursor.next() for _ in range(3)]
        assert [pid for pid, _ in seen] == [0, 2, 1]
        diffs = [dif for _, dif in seen]
        assert diffs == sorted(diffs)
        assert cursor.next() is None
        assert cursor.exhausted

    def test_down_cursor_walks_descending_positions(self):
        columns = SortedColumns([[1.0], [3.0], [2.0]])
        cursor = DirectionCursor(columns, 0, DOWN, 2, query_value=4.0)
        seen = [cursor.next() for _ in range(3)]
        assert [pid for pid, _ in seen] == [1, 2, 0]
        diffs = [dif for _, dif in seen]
        assert diffs == sorted(diffs)

    def test_retrieved_counter(self):
        columns = SortedColumns([[1.0], [2.0]])
        cursor = DirectionCursor(columns, 0, UP, 0, query_value=1.5)
        cursor.next()
        assert cursor.retrieved == 1
        cursor.next()
        cursor.next()  # exhausted; must not count
        assert cursor.retrieved == 2

    def test_invalid_direction(self):
        columns = SortedColumns([[1.0]])
        with pytest.raises(ValueError):
            DirectionCursor(columns, 0, 0, 0, 0.0)

    def test_make_cursors_partition_each_dimension(self, small_data, small_query):
        """Each attribute is covered by exactly one of the 2d cursors."""
        columns = SortedColumns(small_data)
        cursors = make_cursors(columns, small_query)
        assert len(cursors) == 2 * columns.dimensionality
        for j in range(columns.dimensionality):
            down, up = cursors[2 * j], cursors[2 * j + 1]
            seen = []
            while True:
                pair = down.next()
                if pair is None:
                    break
                seen.append(pair[0])
            while True:
                pair = up.next()
                if pair is None:
                    break
                seen.append(pair[0])
            assert sorted(seen) == list(range(columns.cardinality))


class TestFrontier:
    def test_pops_in_ascending_difference_order(self, small_data, small_query):
        columns = SortedColumns(small_data)
        frontier = AscendingDifferenceFrontier(make_cursors(columns, small_query))
        last = -1.0
        count = 0
        while True:
            popped = frontier.pop()
            if popped is None:
                break
            _pid, _slot, dif = popped
            assert dif >= last - 1e-12
            last = dif
            count += 1
        assert count == small_data.size  # every attribute exactly once

    def test_each_attribute_popped_once(self):
        data = np.array([[1.0, 5.0], [2.0, 6.0], [3.0, 7.0]])
        columns = SortedColumns(data)
        frontier = AscendingDifferenceFrontier(
            make_cursors(columns, np.array([2.0, 6.0]))
        )
        pops = []
        while True:
            popped = frontier.pop()
            if popped is None:
                break
            pops.append(popped[0])
        assert sorted(pops) == [0, 0, 1, 1, 2, 2]

    def test_peek_difference(self):
        columns = SortedColumns([[1.0], [4.0]])
        frontier = AscendingDifferenceFrontier(
            make_cursors(columns, np.array([2.0]))
        )
        assert frontier.peek_difference() == pytest.approx(1.0)
        frontier.pop()
        assert frontier.peek_difference() == pytest.approx(2.0)
        frontier.pop()
        assert frontier.peek_difference() is None
        assert not frontier

    def test_attributes_retrieved_includes_frontier_fill(self, small_data, small_query):
        columns = SortedColumns(small_data)
        frontier = AscendingDifferenceFrontier(make_cursors(columns, small_query))
        # Nothing popped yet, but up to 2d attributes were read to fill g[].
        assert 0 < frontier.attributes_retrieved <= 2 * columns.dimensionality
        frontier.pop()
        assert frontier.pops == 1
