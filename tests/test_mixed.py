"""Mixed numeric/categorical matching (the paper's footnote-1 future work)."""

import numpy as np
import pytest

from repro import CATEGORICAL, NUMERIC, MixedMatchDatabase, Schema
from repro.errors import ValidationError


@pytest.fixture
def fruit_db():
    """A little produce catalogue: colour and shape are categorical."""
    schema = Schema.of(
        CATEGORICAL,  # colour
        CATEGORICAL,  # shape
        NUMERIC,  # diameter (normalised)
        NUMERIC,  # weight (normalised)
        names=("colour", "shape", "diameter", "weight"),
    )
    records = [
        ("orange", "round", 0.40, 0.35),  # 0: an orange
        ("orange", "round", 0.42, 0.37),  # 1: another orange
        ("yellow", "round", 0.41, 0.36),  # 2: grapefruit-ish
        ("orange", "flame", 0.90, 0.05),  # 3: a fire
        ("white", "round", 0.95, 0.90),   # 4: a volleyball
        ("green", "oblong", 0.70, 0.80),  # 5: a melon
    ]
    return MixedMatchDatabase(records, schema)


class TestSchema:
    def test_defaults(self):
        schema = Schema.of(NUMERIC, CATEGORICAL)
        assert schema.dimensionality == 2
        assert schema.mismatch_costs == (1.0, 1.0)
        assert schema.names == ("dim0", "dim1")
        assert schema.numeric_dimensions == [0]
        assert schema.categorical_dimensions == [1]

    def test_custom_costs_and_names(self):
        schema = Schema.of(
            CATEGORICAL, NUMERIC, mismatch_costs=(0.5, 1.0), names=("a", "b")
        )
        assert schema.mismatch_costs == (0.5, 1.0)
        assert schema.names == ("a", "b")

    def test_validation(self):
        with pytest.raises(ValidationError):
            Schema.of()
        with pytest.raises(ValidationError):
            Schema.of("text")
        with pytest.raises(ValidationError):
            Schema.of(NUMERIC, mismatch_costs=(1.0, 2.0))
        with pytest.raises(ValidationError):
            Schema.of(CATEGORICAL, mismatch_costs=(0.0,))
        with pytest.raises(ValidationError):
            Schema.of(NUMERIC, names=("a", "b"))


class TestConstruction:
    def test_basic(self, fruit_db):
        assert fruit_db.cardinality == 6
        assert fruit_db.dimensionality == 4
        assert len(fruit_db) == 6

    def test_categories(self, fruit_db):
        assert set(fruit_db.categories(0)) == {"orange", "yellow", "white", "green"}
        with pytest.raises(ValidationError):
            fruit_db.categories(2)  # numeric

    def test_rejects_bad_records(self):
        schema = Schema.of(NUMERIC, CATEGORICAL)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([], schema)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([(1.0,)], schema)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([("not-a-number", "x")], schema)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([(float("nan"), "x")], schema)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([(1.0, ["unhashable"])], schema)
        with pytest.raises(ValidationError):
            MixedMatchDatabase([(1.0, "x")], schema="not a schema")

    def test_integers_as_categories(self):
        schema = Schema.of(CATEGORICAL, NUMERIC)
        db = MixedMatchDatabase([(1, 0.5), (2, 0.6), (1, 0.9)], schema)
        result = db.k_n_match((1, 0.5), k=2, n=2)
        assert result.ids == [0, 2]


class TestDifferences:
    def test_difference_matrix(self, fruit_db):
        query = ("orange", "round", 0.40, 0.35)
        deltas = fruit_db.difference_matrix(query)
        np.testing.assert_allclose(deltas[0], [0, 0, 0, 0])
        np.testing.assert_allclose(deltas[2], [1, 0, 0.01, 0.01], atol=1e-12)
        np.testing.assert_allclose(deltas[3], [0, 1, 0.5, 0.3], atol=1e-12)

    def test_unseen_category_mismatches_everything(self, fruit_db):
        deltas = fruit_db.difference_matrix(("ultraviolet", "round", 0.4, 0.35))
        assert np.all(deltas[:, 0] == 1.0)

    def test_custom_mismatch_cost(self):
        schema = Schema.of(CATEGORICAL, NUMERIC, mismatch_costs=(0.3, 1.0))
        db = MixedMatchDatabase([("a", 0.0), ("b", 0.0)], schema)
        deltas = db.difference_matrix(("a", 0.0))
        assert deltas[1, 0] == pytest.approx(0.3)


class TestQueries:
    def test_orange_story(self, fruit_db):
        """The paper's Sec.-2.2 intuition: searching for an orange, a
        k-1-match may surface the fire, a k-2-match the volleyball, but
        the frequent query settles on the real oranges."""
        query = ("orange", "round", 0.40, 0.35)
        result = fruit_db.frequent_k_n_match(query, k=2, n_range=(1, 4))
        assert set(result.ids) == {0, 1}

    def test_exact_record_wins_full_match(self, fruit_db):
        result = fruit_db.k_n_match(("white", "round", 0.95, 0.90), k=1, n=4)
        assert result.ids == [4]
        assert result.differences[0] == 0.0

    def test_partial_match_ignores_categorical_mismatch(self, fruit_db):
        # n=2: the fire matches the orange's colour + has a roundish
        # diameter? No - it matches colour exactly and nothing else is
        # close; the other oranges match colour AND shape.
        result = fruit_db.k_n_match(("orange", "round", 0.40, 0.35), k=3, n=2)
        assert set(result.ids) >= {0, 1}

    def test_matches_equivalent_numeric_database(self, rng):
        """One-hot equivalence: a categorical dimension with cost 1 is
        the same as matching on its dictionary code scaled... checked by
        direct profile comparison with a hand-built difference matrix."""
        schema = Schema.of(CATEGORICAL, NUMERIC, NUMERIC)
        values = ["x", "y", "z"]
        records = [
            (values[int(rng.integers(3))], float(rng.random()), float(rng.random()))
            for _ in range(40)
        ]
        db = MixedMatchDatabase(records, schema)
        query = ("y", 0.5, 0.5)
        deltas = db.difference_matrix(query)
        for n in (1, 2, 3):
            result = db.k_n_match(query, k=5, n=n)
            expected = np.partition(deltas, n - 1, axis=1)[:, n - 1]
            order = np.lexsort((np.arange(40), expected))[:5]
            assert result.ids == [int(i) for i in order]

    def test_frequent_answer_sets_cover_range(self, fruit_db):
        result = fruit_db.frequent_k_n_match(
            ("orange", "round", 0.4, 0.35), k=3, n_range=(2, 4)
        )
        assert sorted(result.answer_sets) == [2, 3, 4]
        assert len(result.ids) == 3

    def test_query_validation(self, fruit_db):
        with pytest.raises(ValidationError):
            fruit_db.k_n_match(("orange", "round", 0.4), 1, 1)
        with pytest.raises(ValidationError):
            fruit_db.k_n_match(("orange", "round", "wide", 0.35), 1, 1)
        with pytest.raises(ValidationError):
            fruit_db.k_n_match(("orange", "round", float("inf"), 0.35), 1, 1)
        with pytest.raises(ValidationError):
            fruit_db.k_n_match(("orange", "round", 0.4, 0.35), 7, 1)
        with pytest.raises(ValidationError):
            fruit_db.k_n_match(("orange", "round", 0.4, 0.35), 1, 5)
