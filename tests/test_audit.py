"""Unit tests for the repro.obs optimality audit.

The audit is the executable form of Thm 3.2/3.3: on attribute-difference
tie-free data the AD engine must sit exactly at the Fagin-model lower
bound (ratio 1.0), and every other correct engine must sit at or above
it.  The lower bound itself is pinned on hand-checked data first so the
engine assertions mean something.
"""

import numpy as np
import pytest

from repro.core.engine import ENGINE_NAMES, MatchDatabase
from repro.errors import ValidationError
from repro.obs import (
    OptimalityReport,
    audit_engines,
    audit_result,
    examined_cost,
    fagin_lower_bound,
)


class TestLowerBound:
    def test_hand_checked_small_case(self):
        # 1-D, query 0: differences are 1, 2, 10.  k=2, n=1 -> delta=2.
        # Attributes strictly below delta: {1}.  Bound = 1 + 1 = 2.
        data = np.array([[1.0], [2.0], [10.0]])
        bound, delta, at_delta = fagin_lower_bound(data, [0.0], k=2, n=1)
        assert delta == 2.0
        assert bound == 2
        assert at_delta == 1

    def test_two_dimensional_counts_all_attributes(self):
        # Query (0, 0); per-point sorted attribute differences:
        #   point 0: (1, 4), point 1: (2, 3), point 2: (9, 9).
        # n=1 matches are 1, 2, 9 -> k=2 gives delta=2; attributes
        # strictly below 2 across the whole matrix: just the 1.
        data = np.array([[1.0, 4.0], [2.0, 3.0], [9.0, 9.0]])
        bound, delta, at_delta = fagin_lower_bound(data, [0.0, 0.0], k=2, n=1)
        assert delta == 2.0
        assert bound == 2
        assert at_delta == 1

    def test_ties_at_delta_are_reported(self):
        data = np.array([[1.0], [1.0], [5.0]])
        bound, delta, at_delta = fagin_lower_bound(data, [0.0], k=1, n=1)
        assert delta == 1.0
        assert bound == 1  # nothing strictly below delta
        assert at_delta == 2

    def test_validates_arguments(self):
        data = np.zeros((3, 2))
        with pytest.raises(ValidationError):
            fagin_lower_bound(np.zeros(3), [0.0], k=1, n=1)
        with pytest.raises(ValidationError):
            fagin_lower_bound(data, [0.0, 0.0], k=0, n=1)
        with pytest.raises(ValidationError):
            fagin_lower_bound(data, [0.0, 0.0], k=4, n=1)
        with pytest.raises(ValidationError):
            fagin_lower_bound(data, [0.0, 0.0], k=1, n=3)


class TestExaminedCost:
    def test_frontier_engines_are_charged_heap_pops(self):
        from repro.core.types import SearchStats

        stats = SearchStats(heap_pops=7, attributes_retrieved=20)
        assert examined_cost(stats) == 7

    def test_scan_engines_are_charged_everything_examined(self):
        from repro.core.types import SearchStats

        stats = SearchStats(
            attributes_retrieved=30,
            approximation_entries_scanned=12,
            inverted_list_entries=5,
        )
        assert examined_cost(stats) == 47


@pytest.fixture
def tie_free_db(rng):
    # Continuous uniform draws are attribute-difference tie-free with
    # probability 1; the fixed seed makes the property reproducible.
    data = rng.random((400, 5))
    query = rng.random(5)
    return MatchDatabase(data), query


class TestEngineOptimality:
    def test_ad_audits_at_exactly_one_on_tie_free_data(self, tie_free_db):
        db, query = tie_free_db
        result = db.k_n_match(query, 8, 3, engine="ad")
        report = audit_result(db.data, query, result, engine="ad")
        assert report.tie_free
        assert report.ratio == 1.0
        assert report.examined == report.lower_bound

    def test_ad_frequent_audits_at_one(self, tie_free_db):
        db, query = tie_free_db
        result = db.frequent_k_n_match(query, 8, (2, 4), engine="ad")
        report = audit_result(db.data, query, result, engine="ad")
        assert report.kind == "frequent_k_n_match"
        assert report.n == 4  # Thm 3.3: charged as a k-n1-match search
        assert report.tie_free
        assert report.ratio == 1.0

    def test_every_engine_is_at_or_above_the_bound(self, tie_free_db):
        db, query = tie_free_db
        reports = audit_engines(db, query, k=8, n=3)
        assert set(reports) == set(ENGINE_NAMES)
        for name, report in reports.items():
            assert isinstance(report, OptimalityReport)
            assert report.ratio >= 1.0, f"{name} audited below the bound"
        assert reports["ad"].ratio == 1.0

    def test_disk_ad_audits_at_one(self, tie_free_db):
        from repro.disk import DiskADEngine

        db, query = tie_free_db
        engine = DiskADEngine(db.data)
        result = engine.k_n_match(query, 8, 3)
        report = audit_result(db.data, query, result, engine="disk-ad")
        assert report.ratio == 1.0

    def test_vafile_audits_at_or_above_one(self, tie_free_db):
        from repro.vafile import VAFileEngine

        db, query = tie_free_db
        engine = VAFileEngine(db.data)
        result = engine.k_n_match(query, 8, 3)
        report = audit_result(db.data, query, result, engine="va-file")
        assert report.ratio >= 1.0

    def test_summary_format(self, tie_free_db):
        db, query = tie_free_db
        result = db.k_n_match(query, 8, 3, engine="ad")
        summary = audit_result(db.data, query, result, engine="ad").summary()
        assert summary.startswith("audit[ad/k_n_match] delta=")
        assert "ratio=1.0000" in summary

    def test_rejects_unknown_result_type(self, tie_free_db):
        db, query = tie_free_db
        with pytest.raises(ValidationError):
            audit_result(db.data, query, object(), engine="ad")
