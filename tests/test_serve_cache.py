"""The result cache: LRU mechanics and correctness under mutation.

The load-bearing property: a cache hit is **byte-identical** to what a
cold query would answer *right now* — so every mutation (insert,
delete, compact) must make all previously cached answers unreachable,
which the generation-keyed design gives for free.
"""

import json

import numpy as np
import pytest

from repro.core.dynamic import DynamicMatchDatabase
from repro.errors import ValidationError
from repro.serve import ResultCache, ServeApp, cache_key, canonical_json, query_fingerprint


def post(app, path, payload):
    return app.handle("POST", path, canonical_json(payload))


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
class TestResultCache:
    def test_get_put_and_counters(self):
        cache = ResultCache(capacity=4)
        key = cache_key(0, "ad", "k_n_match", 2, 3, b"q")
        assert cache.get(key) is None
        assert cache.put(key, b"answer") == 0
        assert cache.get(key) == b"answer"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_evicts_least_recent(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key(0, "ad", "k_n_match", 2, 3, bytes([i])) for i in range(3)]
        cache.put(keys[0], b"0")
        cache.put(keys[1], b"1")
        cache.get(keys[0])  # refresh 0; 1 becomes the eviction victim
        evicted = cache.put(keys[2], b"2")
        assert evicted == 1
        assert cache.get(keys[0]) == b"0"
        assert cache.get(keys[1]) is None
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        key = cache_key(0, "ad", "k_n_match", 2, 3, b"q")
        assert not cache.enabled
        assert cache.put(key, b"x") == 0
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            ResultCache(capacity=-1)
        with pytest.raises(ValidationError):
            ResultCache(capacity=2.5)

    def test_clear(self):
        cache = ResultCache(capacity=4)
        key = cache_key(0, "ad", "k_n_match", 2, 3, b"q")
        cache.put(key, b"x")
        cache.clear()
        assert cache.get(key) is None

    def test_fingerprint_is_numeric_not_textual(self):
        # 1 and 1.0 are the same float64 -> same entry
        assert query_fingerprint([1, 2]) == query_fingerprint([1.0, 2.0])
        # any numeric difference separates
        assert query_fingerprint([1.0, 2.0]) != query_fingerprint([1.0, 2.0 + 1e-12])
        # shape is part of the identity
        assert query_fingerprint([[1.0, 2.0]]) != query_fingerprint([1.0, 2.0])


# ----------------------------------------------------------------------
# correctness under mutation, on a real dynamic database
# ----------------------------------------------------------------------
class TestGenerationInvalidation:
    @pytest.fixture
    def db(self, small_data):
        return DynamicMatchDatabase(small_data)

    @pytest.fixture
    def app(self, db):
        return ServeApp(db, cache_size=64)

    def _query(self, app, query, k=5, n=4):
        return post(app, "/v1/query", {"query": list(query), "k": k, "n": n})

    def test_hit_is_byte_identical_to_cold(self, app, small_query):
        _, h1, b1 = self._query(app, small_query)
        _, h2, b2 = self._query(app, small_query)
        assert dict(h1)["X-Repro-Cache"] == "miss"
        assert dict(h2)["X-Repro-Cache"] == "hit"
        assert b1 == b2

    @pytest.mark.parametrize("mutation", ["insert", "delete", "compact"])
    def test_mutation_invalidates(self, app, db, small_query, mutation):
        _, _, before = self._query(app, small_query)
        if mutation == "insert":
            # insert a point that beats everything for this query
            db.insert(np.asarray(small_query))
        elif mutation == "delete":
            # delete the current best answer
            db.delete(json.loads(before)["result"]["ids"][0])
        else:
            db.compact()
        _, headers, after = self._query(app, small_query)
        assert dict(headers)["X-Repro-Cache"] == "miss"  # not replayed
        direct = db.k_n_match(small_query, 5, 4)
        assert json.loads(after)["result"]["ids"] == direct.ids
        if mutation != "compact":  # compaction keeps answers identical
            assert json.loads(before)["result"]["ids"] != direct.ids

    def test_mutation_invalidates_frequent(self, app, db, small_query):
        payload = {"query": list(small_query), "k": 4, "n_range": [2, 5]}
        _, _, before = post(app, "/v1/frequent", payload)
        _, headers, _ = post(app, "/v1/frequent", payload)
        assert dict(headers)["X-Repro-Cache"] == "hit"
        db.insert(np.asarray(small_query))
        _, headers, after = post(app, "/v1/frequent", payload)
        assert dict(headers)["X-Repro-Cache"] == "miss"
        direct = db.frequent_k_n_match(small_query, 4, (2, 5))
        assert json.loads(after)["result"]["ids"] == direct.ids
        assert json.loads(before)["result"]["ids"] != direct.ids

    def test_batch_cached_and_invalidated(self, app, db, small_data):
        payload = {
            "queries": [list(row) for row in small_data[:3]],
            "k": 3,
            "n": 4,
        }
        post(app, "/v1/batch", payload)
        _, headers, _ = post(app, "/v1/batch", payload)
        assert dict(headers)["X-Repro-Cache"] == "hit"
        db.delete(0)
        _, headers, _ = post(app, "/v1/batch", payload)
        assert dict(headers)["X-Repro-Cache"] == "miss"

    def test_distinct_parameters_never_collide(self, app, small_query):
        self._query(app, small_query, k=5, n=4)
        _, headers, _ = self._query(app, small_query, k=5, n=5)
        assert dict(headers)["X-Repro-Cache"] == "miss"
        _, headers, _ = self._query(app, small_query, k=6, n=4)
        assert dict(headers)["X-Repro-Cache"] == "miss"


# ----------------------------------------------------------------------
# the no-poison guard: results computed across a mutation are not cached
# ----------------------------------------------------------------------
class TestMidExecutionMutation:
    def test_result_computed_across_generations_is_not_cached(self, small_data):
        class ShiftyDB:
            """Bumps its generation *during* query execution once."""

            def __init__(self, data):
                self._inner = DynamicMatchDatabase(data)
                self.cardinality = self._inner.cardinality
                self.dimensionality = self._inner.dimensionality
                self.generation = 0
                self.shift_on_next_query = False

            def k_n_match(self, query, k, n):
                result = self._inner.k_n_match(query, k, n)
                if self.shift_on_next_query:
                    self.generation += 1  # a writer raced us
                    self.shift_on_next_query = False
                return result

        db = ShiftyDB(small_data)
        app = ServeApp(db, cache_size=64)
        query = list(small_data[0] + 0.25)

        db.shift_on_next_query = True
        _, headers, _ = post(app, "/v1/query", {"query": query, "k": 2, "n": 3})
        assert dict(headers)["X-Repro-Cache"] == "miss"
        assert len(app.cache) == 0  # racing result was NOT stored

        # a clean run at the new generation caches normally
        _, headers, _ = post(app, "/v1/query", {"query": query, "k": 2, "n": 3})
        assert dict(headers)["X-Repro-Cache"] == "miss"
        assert len(app.cache) == 1
        _, headers, _ = post(app, "/v1/query", {"query": query, "k": 2, "n": 3})
        assert dict(headers)["X-Repro-Cache"] == "hit"
