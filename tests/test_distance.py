"""Unit tests for repro.core.distance."""

import numpy as np
import pytest

from repro.core.distance import (
    TRIANGLE_COUNTEREXAMPLE,
    chebyshev_distance,
    dpf_distance,
    dpf_distances,
    euclidean_distance,
    manhattan_distance,
    match_count_within,
    match_profile,
    minkowski_distance,
    n_match_difference,
    n_match_differences,
    pairwise_absolute_differences,
)
from repro.errors import ValidationError


class TestNMatchDifference:
    def test_definition_example(self):
        # object 1 of Figure 1 vs the all-ones query
        p = [1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1]
        q = [1.0] * 10
        assert n_match_difference(p, q, 1) == 0.0
        assert n_match_difference(p, q, 7) == pytest.approx(0.2)
        assert n_match_difference(p, q, 10) == pytest.approx(99.0)

    def test_symmetry(self):
        p, q = [0.1, 0.9, 0.4], [0.3, 0.2, 0.4]
        for n in (1, 2, 3):
            assert n_match_difference(p, q, n) == n_match_difference(q, p, n)

    def test_monotone_in_n(self):
        rng = np.random.default_rng(1)
        p, q = rng.random(12), rng.random(12)
        diffs = [n_match_difference(p, q, n) for n in range(1, 13)]
        assert diffs == sorted(diffs)

    def test_d_match_equals_chebyshev(self):
        rng = np.random.default_rng(2)
        p, q = rng.random(9), rng.random(9)
        assert n_match_difference(p, q, 9) == pytest.approx(chebyshev_distance(p, q))

    def test_identical_points_all_zero(self):
        p = np.array([0.5, 0.5, 0.5])
        for n in (1, 2, 3):
            assert n_match_difference(p, p, n) == 0.0

    @pytest.mark.parametrize("n", [0, -1, 4])
    def test_n_out_of_range(self, n):
        with pytest.raises(ValidationError):
            n_match_difference([1.0, 2.0, 3.0], [0.0, 0.0, 0.0], n)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValidationError):
            n_match_difference([[1.0, 2.0]], [[0.0, 0.0]], 1)


class TestVectorisedForms:
    def test_matches_scalar_form(self):
        rng = np.random.default_rng(3)
        data, q = rng.random((40, 6)), rng.random(6)
        for n in (1, 3, 6):
            expected = [n_match_difference(row, q, n) for row in data]
            np.testing.assert_allclose(n_match_differences(data, q, n), expected)

    def test_profile_is_sorted_differences(self):
        rng = np.random.default_rng(4)
        p, q = rng.random(7), rng.random(7)
        profile = match_profile(p, q)
        np.testing.assert_allclose(profile, np.sort(np.abs(p - q)))
        for n in range(1, 8):
            assert profile[n - 1] == pytest.approx(n_match_difference(p, q, n))

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            n_match_differences(np.zeros(3), np.zeros(3), 1)

    def test_n_bounds(self):
        with pytest.raises(ValidationError):
            n_match_differences(np.zeros((2, 3)), np.zeros(3), 4)


class TestMatchCount:
    def test_counts_threshold_inclusive(self):
        p, q = [1.0, 2.0, 3.5], [1.0, 1.8, 3.0]
        assert match_count_within(p, q, 0.0) == 1
        assert match_count_within(p, q, 0.2) == 2
        assert match_count_within(p, q, 0.5) == 3

    def test_negative_delta_rejected(self):
        with pytest.raises(ValidationError):
            match_count_within([1.0], [1.0], -0.1)

    def test_duality_with_n_match(self):
        # count(delta) >= n  <=>  n-match difference <= delta
        rng = np.random.default_rng(5)
        p, q = rng.random(10), rng.random(10)
        for n in range(1, 11):
            delta = n_match_difference(p, q, n)
            assert match_count_within(p, q, delta) >= n


class TestMinkowski:
    def test_euclidean(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert chebyshev_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(4.0)

    def test_p_must_be_positive(self):
        with pytest.raises(ValidationError):
            minkowski_distance([1.0], [2.0], p=0.0)

    def test_pairwise_broadcast(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        q = np.array([1.0, 1.0])
        np.testing.assert_allclose(
            pairwise_absolute_differences(data, q), [[0.0, 1.0], [2.0, 3.0]]
        )


class TestDPF:
    def test_aggregates_n_smallest(self):
        p, q = [1.0, 5.0, 2.0], [1.1, 9.0, 2.2]
        # diffs: 0.1, 4.0, 0.2 -> two smallest are 0.1, 0.2
        assert dpf_distance(p, q, 2) == pytest.approx(np.hypot(0.1, 0.2))

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(6)
        data, q = rng.random((25, 5)), rng.random(5)
        for n in (1, 3, 5):
            expected = [dpf_distance(row, q, n) for row in data]
            np.testing.assert_allclose(dpf_distances(data, q, n), expected)

    def test_full_n_equals_lp(self):
        rng = np.random.default_rng(7)
        p, q = rng.random(6), rng.random(6)
        assert dpf_distance(p, q, 6, p=2.0) == pytest.approx(
            euclidean_distance(p, q)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            dpf_distance([1.0, 2.0], [0.0, 0.0], 3)
        with pytest.raises(ValidationError):
            dpf_distance([1.0, 2.0], [0.0, 0.0], 1, p=-1)
        with pytest.raises(ValidationError):
            dpf_distances(np.zeros(4), np.zeros(4), 1)


class TestNonMetricProperty:
    def test_triangle_counterexample(self):
        """Sec. 2.1: the 1-match difference violates the triangle
        inequality on points F, G, H."""
        f, g, h = (np.array(p) for p in TRIANGLE_COUNTEREXAMPLE)
        fg = n_match_difference(f, g, 1)
        fh = n_match_difference(f, h, 1)
        gh = n_match_difference(g, h, 1)
        assert fg == pytest.approx(0.0)
        assert fh == pytest.approx(0.0)
        assert gh == pytest.approx(0.4)
        assert fg + fh < gh  # triangle inequality fails

    def test_not_monotone_aggregate(self):
        """Sec. 3's Figure-3 argument: point 1 < point 2 component-wise
        (in raw values) yet has the larger 1-match difference."""
        q = np.array([3.0, 7.0, 4.0])
        p1 = np.array([0.4, 1.0, 1.0])
        p2 = np.array([2.8, 5.5, 2.0])
        assert np.all(p1 < p2)
        assert n_match_difference(p1, q, 1) == pytest.approx(2.6)
        assert n_match_difference(p2, q, 1) == pytest.approx(0.2)
        assert n_match_difference(p1, q, 1) > n_match_difference(p2, q, 1)
