"""Experiment runners: structure always, shapes where scale-independent.

The full-scale shape assertions (crossovers, orderings) live in the
benchmarks, which run at the paper's sizes.  Here every runner is
exercised end-to-end at a small scale, checking output structure plus
the claims that hold at any scale (e.g. AD retrieves fewer attributes
as n1 shrinks; the planted COIL narrative).
"""

import pytest

from repro.data import PARTIAL_MATCH_IMAGE
from repro.experiments import fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15
from repro.experiments import table2_3, table4
from repro.experiments.common import (
    ExperimentResult,
    mean_simulated_seconds,
    mean_stats,
    scaled_cardinality,
    texture_workload,
    uniform_workload,
)
from repro.core.types import SearchStats

SMALL = dict(scale=0.03, queries=1)


class TestCommon:
    def test_scaled_cardinality_floor(self):
        assert scaled_cardinality(100000, 1.0) == 100000
        assert scaled_cardinality(100000, 0.001) == 1000
        assert scaled_cardinality(100000, 0.001, floor=100) == 100

    def test_uniform_workload(self):
        data, queries = uniform_workload(1200, 6, queries=4)
        assert data.shape == (1200, 6)
        assert queries.shape == (4, 6)

    def test_texture_workload_scales(self):
        data, queries = texture_workload(scale=0.02, queries=2)
        assert data.shape[0] == scaled_cardinality(68040, 0.02)
        assert queries.shape == (2, 16)

    def test_mean_stats(self):
        a = SearchStats(attributes_retrieved=10, total_attributes=100)
        b = SearchStats(attributes_retrieved=20, total_attributes=100)
        mean = mean_stats([a, b])
        assert mean.attributes_retrieved == 15
        assert mean.total_attributes == 100
        assert mean_stats([]).attributes_retrieved == 0

    def test_mean_simulated_seconds(self):
        stats = SearchStats(sequential_page_reads=10)
        assert mean_simulated_seconds([stats]) > 0
        assert mean_simulated_seconds([]) == 0.0

    def test_experiment_result_helpers(self):
        result = ExperimentResult(
            "Table X", "demo", ["a", "b"], [[1, 2], [3, 4]], notes=["n"]
        )
        assert result.column("b") == [2, 4]
        text = result.formatted()
        assert "Table X" in text and "note: n" in text


class TestEffectivenessExperiments:
    def test_table2_3_structure_and_narrative(self):
        table2, table3 = table2_3.run()
        assert len(table2.rows) == len(table2_3.TABLE2_N_VALUES)
        # the partial-match image shows up in k-n-match but not in kNN
        knmatch_text = " ".join(str(row[1]) for row in table2.rows)
        assert str(PARTIAL_MATCH_IMAGE) in knmatch_text
        assert str(PARTIAL_MATCH_IMAGE) not in str(table3.rows[0][1])

    def test_table4_orders_techniques(self):
        result = table4.run(queries=25, k=10)
        assert len(result.rows) == 5
        igrid_col = result.column("IGrid")
        freq_col = result.column("Freq. k-n-match")
        wins = sum(f > g for f, g in zip(freq_col, igrid_col))
        assert wins >= 4  # iris can be within noise at tiny query counts

    def test_table4_hcinn_is_paper_constant(self):
        result = table4.run(queries=5, k=5)
        hcinn = result.column("HCINN")
        assert hcinn[0] == pytest.approx(0.86)
        assert hcinn[2] is None

    def test_fig8_shapes(self):
        fig_a, fig_b = fig8.run(queries=20, k=10)
        assert set(fig_a.headers) == {"data set", "n0", "accuracy"}
        for row in fig_a.rows + fig_b.rows:
            assert 0.0 <= row[2] <= 1.0
        # (b): for each dataset accuracy at the largest n1 should not be
        # far below the maximum over the sweep (it flattens at large n1)
        for name in fig8.FIG8_DATASETS:
            curve = [r for r in fig_b.rows if r[0] == name]
            best = max(r[2] for r in curve)
            last = curve[-1][2]
            assert last >= best - 0.15

    def test_fig9_fraction_grows_with_n1(self):
        fig_a, fig_b = fig9.run(queries=10, k=10, io_queries=4)
        for name in fig9.FIG9_DATASETS:
            curve = [r[2] for r in fig_a.rows if r[0] == name]
            assert curve == sorted(curve)  # monotone in n1
            assert all(0 <= v <= 100 for v in curve)
        assert fig_b.rows[-1][0] == "IGrid (reference)"


@pytest.mark.slow
class TestEfficiencyExperiments:
    def test_fig10_structure(self):
        fig_a, fig_b = fig10.run(**SMALL)
        assert len(fig_a.rows) == 2 * len(fig10.FIG10_K_VALUES)
        for row in fig_a.rows:
            assert 0 < row[2] <= row[3]  # refined <= cardinality
        for row in fig_b.rows:
            assert row[2] > 0 and row[3] > 0

    def test_fig11_structure(self):
        fig_a, fig_b = fig11.run(**SMALL)
        assert len(fig_a.rows) == len(fig11.FIG11_K_VALUES)
        for row in fig_a.rows:
            assert row[1] > 0 and row[2] > 0

    def test_fig12_ad_pages_grow_with_n1(self):
        fig_a, _fig_b = fig12.run(**SMALL)
        for name in ("uniform", "texture"):
            pages = [r[2] for r in fig_a.rows if r[0] == name]
            assert pages == sorted(pages)

    def test_fig13_structure(self):
        fig_a, fig_b = fig13.run(
            scale=0.03, queries=1, k_values=(5, 10), sizes=(30000, 60000)
        )
        assert len(fig_a.rows) == 2
        assert len(fig_b.rows) == 2
        # scan cost strictly grows with dataset size
        assert fig_b.rows[0][1] < fig_b.rows[1][1]

    def test_fig14_structure(self):
        result = fig14.run(scale=0.03, queries=1, dimensionalities=(8, 16))
        assert [row[0] for row in result.rows] == [8, 16]
        # scan cost grows with dimensionality
        assert result.rows[0][1] < result.rows[1][1]

    def test_fig14_n_range_recipe(self):
        assert fig14.n_range_for_dimensionality(16) == (4, 8)
        assert fig14.n_range_for_dimensionality(8) == (4, 4)
        assert fig14.n_range_for_dimensionality(2) == (2, 2)

    def test_fig15_retrieval_grows_with_n1(self):
        fig_a, fig_b = fig15.run(scale=0.03, queries=1, n1_values=(6, 10, 16))
        fractions = [row[1] for row in fig_b.rows]
        assert fractions == sorted(fractions)
        assert all(0 < f <= 100 for f in fractions)
        assert len(fig_a.rows) == 3
