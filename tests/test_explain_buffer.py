"""Match explanations and the LRU buffer pool."""

import numpy as np
import pytest

from repro import MatchDatabase, explain_match
from repro.errors import StorageError, ValidationError
from repro.storage import BufferPool, Pager


class TestExplainMatch:
    FIG1 = [
        [1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1],
        [1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1],
        [1, 1, 1, 1, 1, 1, 2, 100, 2, 2],
        [20.0] * 10,
    ]
    QUERY = [1.0] * 10

    def test_figure1_object3_explanation(self):
        explanation = explain_match(self.FIG1, self.QUERY, point_id=2, n=6)
        assert explanation.delta == 0.0
        assert explanation.match_count == 6
        assert set(explanation.matching_dimensions) == {0, 1, 2, 3, 4, 5}
        # the 100-difference dimension is the top outlier
        assert explanation.outlier_dimensions[0] == 7

    def test_outliers_sorted_descending(self):
        explanation = explain_match(self.FIG1, self.QUERY, point_id=0, n=7)
        diffs = [explanation.differences[i] for i in explanation.outlier_dimensions]
        assert diffs == sorted(diffs, reverse=True)

    def test_matching_count_at_least_n(self, small_data, small_query):
        db = MatchDatabase(small_data)
        result = db.k_n_match(small_query, 3, 5)
        for pid in result.ids:
            explanation = explain_match(small_data, small_query, pid, 5)
            assert explanation.match_count >= 5
            assert explanation.delta == pytest.approx(
                np.sort(np.abs(small_data[pid] - small_query))[4]
            )

    def test_describe_with_names(self):
        explanation = explain_match(self.FIG1, self.QUERY, 2, 6)
        names = [f"f{i}" for i in range(10)]
        text = explanation.describe(names)
        assert "6 of 10 dimensions" in text
        assert "f7" in text  # the outlier is named

    def test_describe_default_names(self):
        text = explain_match(self.FIG1, self.QUERY, 2, 6).describe()
        assert "dim0" in text

    def test_describe_name_count_checked(self):
        explanation = explain_match(self.FIG1, self.QUERY, 2, 6)
        with pytest.raises(ValidationError):
            explanation.describe(["too", "few"])

    def test_validation(self):
        with pytest.raises(ValidationError):
            explain_match(self.FIG1, self.QUERY, point_id=4, n=1)
        with pytest.raises(ValidationError):
            explain_match(self.FIG1, self.QUERY, point_id=0, n=11)


class TestBufferPool:
    @pytest.fixture
    def pool(self):
        pager = Pager(page_size=8)
        for index in range(10):
            pager.allocate(bytes([index]) * 4)
        return BufferPool(pager, capacity=3)

    def test_miss_then_hit(self, pool):
        first = pool.read(0)
        second = pool.read(0)
        assert first == second
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_rate == 0.5

    def test_hits_do_not_touch_pager(self, pool):
        pool.read(5)
        before = pool.pager.recorder.total_reads
        pool.read(5)
        pool.read(5)
        assert pool.pager.recorder.total_reads == before

    def test_lru_eviction(self, pool):
        pool.read(0)
        pool.read(1)
        pool.read(2)
        pool.read(3)  # evicts 0
        assert not pool.contains(0)
        assert pool.contains(1)
        pool.read(0)  # miss again
        assert pool.misses == 5

    def test_access_refreshes_recency(self, pool):
        pool.read(0)
        pool.read(1)
        pool.read(2)
        pool.read(0)  # refresh 0
        pool.read(3)  # should evict 1, not 0
        assert pool.contains(0)
        assert not pool.contains(1)

    def test_capacity_never_exceeded(self, pool):
        for page in range(10):
            pool.read(page)
        assert pool.cached_pages <= 3

    def test_invalidate_and_clear(self, pool):
        pool.read(4)
        pool.invalidate(4)
        assert not pool.contains(4)
        pool.read(4)
        pool.read(5)
        pool.clear()
        assert pool.cached_pages == 0
        assert pool.misses > 0  # counters preserved
        pool.reset_counters()
        assert pool.misses == 0

    def test_validation(self):
        with pytest.raises(StorageError):
            BufferPool("not a pager", 3)
        with pytest.raises(StorageError):
            BufferPool(Pager(), 0)

    def test_warm_rerun_is_cheap(self, small_data, small_query):
        """A whole query's pages fit in a big pool: the second run hits
        memory only — the warm-cache story the cold engines exclude."""
        from repro.disk import DiskADEngine

        engine = DiskADEngine(small_data)
        engine.k_n_match(small_query, 5, 4)
        pool = BufferPool(engine.pager, capacity=10_000)
        # replay the pages the engine would touch via the pool
        touched = [
            engine.store.column(j).first_page for j in range(8)
        ]
        for page in touched:
            pool.read(page)
        before_hits = pool.hits
        for page in touched:
            pool.read(page)
        assert pool.hits == before_hits + len(touched)
