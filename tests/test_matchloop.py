"""The shared AD consumption loop, driven by scripted frontiers."""

from repro.core.matchloop import run_frequent_k_n_match, run_k_n_match


class ScriptedFrontier:
    """Feeds a fixed (pid, slot, diff) sequence to the loop."""

    def __init__(self, triples):
        self._triples = list(triples)
        self._index = 0

    def pop(self):
        if self._index >= len(self._triples):
            return None
        triple = self._triples[self._index]
        self._index += 1
        return triple

    @property
    def consumed(self):
        return self._index


def make(seq):
    """Build triples from (pid, diff) pairs; slots are irrelevant."""
    return ScriptedFrontier([(pid, 0, diff) for pid, diff in seq])


class TestRunKNMatch:
    def test_first_to_n_appearances_wins(self):
        frontier = make([(1, 0.1), (2, 0.2), (1, 0.3), (2, 0.4)])
        ids, diffs = run_k_n_match(frontier, cardinality=3, k=1, n=2)
        assert ids == [1]
        assert diffs == [0.3]

    def test_stops_immediately_after_kth_completion(self):
        frontier = make([(0, 0.1), (0, 0.2), (1, 0.3), (1, 0.4), (2, 0.5)])
        ids, _ = run_k_n_match(frontier, cardinality=3, k=2, n=2)
        assert ids == [0, 1]
        assert frontier.consumed == 4  # (2, 0.5) never popped

    def test_n_equals_1_takes_first_k_distinct(self):
        frontier = make([(5, 0.0), (5, 0.1), (7, 0.2), (5, 0.3), (9, 0.4)])
        ids, diffs = run_k_n_match(frontier, cardinality=10, k=3, n=1)
        assert ids == [5, 7, 9]
        assert diffs == [0.0, 0.2, 0.4]

    def test_exhausted_frontier_returns_partial(self):
        frontier = make([(0, 0.1)])
        ids, _ = run_k_n_match(frontier, cardinality=2, k=2, n=1)
        assert ids == [0]


class TestRunFrequent:
    def test_sets_record_completion_order(self):
        frontier = make(
            [(0, 0.1), (1, 0.2), (1, 0.3), (0, 0.4), (2, 0.5), (2, 0.6)]
        )
        sets = run_frequent_k_n_match(frontier, cardinality=3, k=2, n0=1, n1=2)
        assert sets[1] == [0, 1]  # point 2 never surfaces before the stop
        assert sets[2] == [1, 0]
        assert frontier.consumed == 4

    def test_stops_when_k_reach_n1(self):
        frontier = make(
            [(0, 0.1), (0, 0.2), (1, 0.3), (1, 0.4), (2, 0.5), (2, 0.6)]
        )
        sets = run_frequent_k_n_match(frontier, cardinality=3, k=2, n0=1, n1=2)
        assert sets[2] == [0, 1]
        assert frontier.consumed == 4

    def test_counts_below_n0_ignored(self):
        frontier = make([(0, 0.1), (1, 0.2), (0, 0.3), (0, 0.4)])
        sets = run_frequent_k_n_match(frontier, cardinality=2, k=1, n0=3, n1=3)
        assert sets == {3: [0]}

    def test_sets_for_all_n_in_range_present(self):
        frontier = make([(0, 0.1), (0, 0.2), (0, 0.3)])
        sets = run_frequent_k_n_match(frontier, cardinality=1, k=1, n0=1, n1=3)
        assert sorted(sets) == [1, 2, 3]
        assert sets[1] == sets[2] == sets[3] == [0]
