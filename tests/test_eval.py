"""Evaluation harness: class stripping, searcher adapters, formatting."""

import numpy as np
import pytest

from repro.data import ClassDataset, make_uci_standin
from repro.errors import ValidationError
from repro.eval import (
    class_stripping_accuracy,
    dpf_searcher,
    format_series,
    format_table,
    frequent_knmatch_searcher,
    igrid_searcher,
    knmatch_searcher,
    knn_searcher,
)


@pytest.fixture
def toy_dataset(rng):
    """Two well-separated classes of 30 points each."""
    a = rng.normal(0.25, 0.02, (30, 6))
    b = rng.normal(0.75, 0.02, (30, 6))
    data = np.clip(np.vstack([a, b]), 0, 1)
    labels = np.array([0] * 30 + [1] * 30)
    return ClassDataset("toy", data, labels, 2)


class TestClassStripping:
    def test_perfect_searcher_scores_one(self, toy_dataset):
        def perfect(query, k):
            # return k points of the query's own half
            own = 0 if query[0] < 0.5 else 1
            return list(range(own * 30, own * 30 + k))

        report = class_stripping_accuracy(
            toy_dataset, perfect, "perfect", queries=10, k=5, seed=0
        )
        assert report.accuracy == 1.0

    def test_adversarial_searcher_scores_zero(self, toy_dataset):
        def adversarial(query, k):
            other = 1 if query[0] < 0.5 else 0
            return list(range(other * 30, other * 30 + k))

        report = class_stripping_accuracy(
            toy_dataset, adversarial, "adversarial", queries=10, k=5, seed=0
        )
        assert report.accuracy == 0.0

    def test_separated_classes_easy_for_all_techniques(self, toy_dataset):
        for factory in (
            knn_searcher,
            frequent_knmatch_searcher,
            igrid_searcher,
        ):
            report = class_stripping_accuracy(
                toy_dataset, factory(toy_dataset.data), "t", queries=10, k=5, seed=1
            )
            assert report.accuracy > 0.9

    def test_wrong_answer_count_rejected(self, toy_dataset):
        def lazy(query, k):
            return [0]  # always one answer

        with pytest.raises(ValidationError):
            class_stripping_accuracy(toy_dataset, lazy, "lazy", queries=2, k=5)

    def test_report_string(self, toy_dataset):
        def first_k(query, k):
            return list(range(k))

        report = class_stripping_accuracy(
            toy_dataset, first_k, "first-k", queries=4, k=3, seed=2
        )
        assert "first-k" in str(report)
        assert "toy" in str(report)

    def test_parameter_validation(self, toy_dataset):
        def noop(query, k):
            return list(range(k))

        with pytest.raises(ValidationError):
            class_stripping_accuracy(toy_dataset, noop, "x", queries=0)
        with pytest.raises(ValidationError):
            class_stripping_accuracy(toy_dataset, noop, "x", k=0)


class TestSearcherFactories:
    @pytest.mark.parametrize(
        "factory_args",
        [
            (knn_searcher, ()),
            (frequent_knmatch_searcher, ()),
            (frequent_knmatch_searcher, ((2, 4),)),
            (igrid_searcher, ()),
            (knmatch_searcher, (3,)),
            (dpf_searcher, (3,)),
        ],
    )
    def test_returns_k_ids(self, toy_dataset, factory_args):
        factory, extra = factory_args
        searcher = factory(toy_dataset.data, *extra)
        ids = searcher(toy_dataset.data[0], 7)
        assert len(ids) == 7
        assert len(set(ids)) == 7

    def test_searchers_agree_on_trivial_query(self, toy_dataset):
        """The query point itself must be among everyone's answers."""
        for factory in (knn_searcher, frequent_knmatch_searcher, igrid_searcher):
            ids = factory(toy_dataset.data)(toy_dataset.data[12], 5)
            assert 12 in list(ids)

    def test_uci_standin_end_to_end(self):
        dataset = make_uci_standin("iris")
        searcher = frequent_knmatch_searcher(dataset.data)
        report = class_stripping_accuracy(
            dataset, searcher, "freq", queries=10, k=5, seed=3
        )
        assert 0.0 <= report.accuracy <= 1.0


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 20.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_renders_none_as_na(self):
        text = format_table(["x"], [[None]])
        assert "N.A." in text

    def test_format_table_float_precision(self):
        text = format_table(["x"], [[0.12345], [1234.5]])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text

    def test_format_series(self):
        text = format_series(
            "n",
            {"scan": {1: 0.5, 2: 0.6}, "ad": {1: 0.1}},
            title="demo",
        )
        assert "scan" in text and "ad" in text
        assert "N.A." in text  # missing ad@2
