"""Unit tests for the repro.obs span tracer and its exporters.

Covers span-tree construction (nesting, annotation, ring-buffer
eviction, the slow-query log), thread confinement, both exporters
(Chrome ``trace_event`` schema-checked, text renderer golden-tested),
and the zero-cost / bit-identical-answers contract on the instrumented
engines.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import (
    PHASE_NAMES,
    SpanCollector,
    chrome_trace_events,
    render_chrome_json,
    render_span_text,
)


class TestSpanTree:
    def test_nesting_and_order(self):
        spans = SpanCollector()
        with spans.span("root"):
            with spans.span("first"):
                pass
            with spans.span("second"):
                with spans.span("inner"):
                    pass
        (root,) = spans.traces()
        assert [s.name for s in root.iter_spans()] == [
            "root",
            "first",
            "second",
            "inner",
        ]
        assert [c.name for c in root.children] == ["first", "second"]

    def test_durations_are_monotonic_and_nested(self):
        spans = SpanCollector()
        with spans.span("root"):
            with spans.span("child"):
                time.sleep(0.002)
        (root,) = spans.traces()
        child = root.children[0]
        assert child.duration_seconds > 0
        assert root.start <= child.start
        assert child.end <= root.end

    def test_meta_and_annotate(self):
        spans = SpanCollector()
        with spans.span("root", k=5):
            spans.annotate(pops=17)
        (root,) = spans.traces()
        assert root.meta == {"k": 5, "pops": 17}

    def test_annotate_without_open_span_is_a_noop(self):
        spans = SpanCollector()
        spans.annotate(ignored=1)  # must not raise
        assert spans.traces() == []

    def test_find(self):
        spans = SpanCollector()
        with spans.span("root"):
            with spans.span("round"):
                pass
            with spans.span("round"):
                pass
        (root,) = spans.traces()
        assert len(root.find("round")) == 2
        assert root.find("missing") == []

    def test_incomplete_root_is_not_published(self):
        spans = SpanCollector()
        context = spans.span("root")
        context.__enter__()
        assert spans.traces() == []
        context.__exit__(None, None, None)
        assert len(spans.traces()) == 1

    def test_exception_still_publishes(self):
        spans = SpanCollector()
        with pytest.raises(RuntimeError):
            with spans.span("root"):
                with spans.span("child"):
                    raise RuntimeError("boom")
        (root,) = spans.traces()
        assert [s.name for s in root.iter_spans()] == ["root", "child"]


class TestRingBuffers:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        spans = SpanCollector(capacity=2)
        for index in range(4):
            with spans.span(f"q{index}"):
                pass
        assert [root.name for root in spans.traces()] == ["q2", "q3"]
        assert spans.dropped == 2

    def test_clear(self):
        spans = SpanCollector(slow_threshold_seconds=0.0)
        with spans.span("q"):
            pass
        spans.clear()
        assert spans.traces() == []
        assert spans.slow_traces() == []
        assert spans.dropped == 0

    def test_slow_log_thresholds(self):
        spans = SpanCollector(slow_threshold_seconds=0.005)
        with spans.span("fast"):
            pass
        with spans.span("slow"):
            time.sleep(0.01)
        assert [root.name for root in spans.slow_traces()] == ["slow"]
        assert len(spans.traces()) == 2

    def test_slow_log_disabled_by_default(self):
        spans = SpanCollector()
        with spans.span("q"):
            time.sleep(0.002)
        assert spans.slow_traces() == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            SpanCollector(capacity=0)
        with pytest.raises(ValidationError):
            SpanCollector(slow_capacity=0)
        with pytest.raises(ValidationError):
            SpanCollector(slow_threshold_seconds=-1.0)


class TestThreadConfinement:
    def test_worker_spans_become_roots_on_their_thread(self):
        spans = SpanCollector()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            with spans.span("worker_root"):
                with spans.span("worker_child"):
                    pass

        thread = threading.Thread(target=worker)
        with spans.span("main_root"):
            thread.start()
            barrier.wait()
            thread.join()
        roots = {root.name for root in spans.traces()}
        assert roots == {"main_root", "worker_root"}
        by_name = {root.name: root for root in spans.traces()}
        assert by_name["worker_root"].thread_id != by_name[
            "main_root"
        ].thread_id
        # The worker tree is intact and carries one thread id throughout.
        worker_root = by_name["worker_root"]
        assert [s.name for s in worker_root.iter_spans()] == [
            "worker_root",
            "worker_child",
        ]
        assert {s.thread_id for s in worker_root.iter_spans()} == {
            worker_root.thread_id
        }

    def test_concurrent_publishing_loses_nothing(self):
        spans = SpanCollector(capacity=1024)

        def hammer(tag):
            for index in range(100):
                with spans.span(f"{tag}-{index}"):
                    pass

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(spans.traces()) == 400
        assert spans.dropped == 0


class TestChromeExport:
    def _sample_traces(self):
        spans = SpanCollector()
        with spans.span("ad/k_n_match", k=3, n=2):
            with spans.span("cursor_init"):
                pass
            with spans.span("heap_consume"):
                spans.annotate(heap_pops=9)
        return spans

    def test_schema(self):
        spans = self._sample_traces()
        document = chrome_trace_events(spans.traces(), epoch=spans.epoch)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata, *complete = events
        assert metadata["ph"] == "M"
        assert metadata["name"] == "process_name"
        assert len(complete) == 3  # root + two phases
        for event in complete:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
        names = [event["name"] for event in complete]
        assert names == ["ad/k_n_match", "cursor_init", "heap_consume"]
        assert complete[0]["args"] == {"k": 3, "n": 2}
        assert complete[2]["args"] == {"heap_pops": 9}

    def test_json_text_round_trips_and_is_deterministic(self):
        spans = self._sample_traces()
        text = render_chrome_json(spans.traces(), epoch=spans.epoch)
        assert json.loads(text) == chrome_trace_events(
            spans.traces(), epoch=spans.epoch
        )
        assert text == render_chrome_json(spans.traces(), epoch=spans.epoch)


class TestTextRenderer:
    def test_golden_structure(self):
        spans = SpanCollector()
        with spans.span("root", k=2):
            with spans.span("first"):
                pass
            with spans.span("second"):
                with spans.span("inner", b=2, a=1):
                    pass
        (root,) = spans.traces()
        assert render_span_text(root, show_times=False) == (
            "root  [k=2]\n"
            "|- first\n"
            "`- second\n"
            "   `- inner  [a=1 b=2]"
        )

    def test_times_column(self):
        spans = SpanCollector()
        with spans.span("root"):
            pass
        (root,) = spans.traces()
        assert "ms" in render_span_text(root)


class TestEngineIntegration:
    """Spans on real engines: right phases, identical answers."""

    @pytest.fixture
    def workload(self, rng):
        data = rng.random((300, 6))
        query = rng.random(6)
        return data, query

    def test_ad_phases(self, workload):
        from repro.core.ad import ADEngine

        data, query = workload
        spans = SpanCollector()
        engine = ADEngine(data, spans=spans)
        result = engine.k_n_match(query, 4, 3)
        (root,) = spans.traces()
        assert root.name == "ad/k_n_match"
        assert root.meta["k"] == 4 and root.meta["n"] == 3
        assert [c.name for c in root.children] == [
            "cursor_init",
            "heap_consume",
        ]
        assert root.children[1].meta["heap_pops"] == result.stats.heap_pops

    def test_block_ad_phases(self, workload):
        from repro.core.ad_block import BlockADEngine

        data, query = workload
        spans = SpanCollector()
        engine = BlockADEngine(data, spans=spans)
        engine.frequent_k_n_match(query, 4, (1, 6))
        (root,) = spans.traces()
        assert root.name == "block-ad/frequent_k_n_match"
        names = [c.name for c in root.children]
        assert names == ["window_grow", "refine", "rank"]
        rounds = root.find("round")
        assert len(rounds) == root.children[0].meta["rounds"] >= 1

    def test_sharded_phases(self, workload):
        from repro.shard import ShardedMatchDatabase

        data, query = workload
        spans = SpanCollector()
        db = ShardedMatchDatabase(data, shards=3, spans=spans)
        db.k_n_match(query, 4, 3)
        roots = spans.traces()
        logical = [r for r in roots if r.name == "sharded/k_n_match"]
        assert len(logical) == 1
        (root,) = logical
        assert root.meta["shards"] == 3
        fanout = root.find("shard_fanout")
        assert len(fanout) == 1
        calls = [s for r in roots for s in r.find("shard_call")]
        assert len(calls) == 3
        assert {c.meta["shard"] for c in calls} == {0, 1, 2}
        merges = root.find("merge")
        assert len(merges) == 1

    def test_all_phase_names_are_in_the_vocabulary(self, workload):
        from repro.parallel import BatchBlockADEngine
        from repro.shard import ShardedMatchDatabase

        data, query = workload
        spans = SpanCollector(capacity=256)
        db = ShardedMatchDatabase(data, shards=2, spans=spans)
        db.frequent_k_n_match_batch(np.stack([query, query]), 3, (1, 6))
        batch = BatchBlockADEngine(data, spans=spans)
        batch.k_n_match_batch(np.stack([query, query]), 3, 4)
        seen = set()
        for root in spans.traces():
            for span in root.iter_spans():
                seen.add(span.name)
        phase_like = {name for name in seen if "/" not in name}
        assert phase_like <= set(PHASE_NAMES)
        roots = {name for name in seen if "/" in name}
        assert all(
            name.split("/", 1)[1].startswith(("k_n_match", "frequent"))
            for name in roots
        )

    def test_answers_bit_identical_with_spans(self, workload):
        from repro.core.engine import ENGINE_NAMES, MatchDatabase

        data, query = workload
        plain = MatchDatabase(data)
        traced = MatchDatabase(data, spans=SpanCollector())
        for engine in ENGINE_NAMES:
            reference = plain.k_n_match(query, 5, 3, engine=engine)
            result = traced.k_n_match(query, 5, 3, engine=engine)
            assert result.ids == reference.ids
            assert result.differences == reference.differences
            freq_reference = plain.frequent_k_n_match(
                query, 5, (2, 5), engine=engine
            )
            freq_result = traced.frequent_k_n_match(
                query, 5, (2, 5), engine=engine
            )
            assert freq_result.ids == freq_reference.ids
            assert freq_result.frequencies == freq_reference.frequencies

    def test_set_spans_reaches_existing_engines(self, workload):
        from repro.core.engine import MatchDatabase

        data, query = workload
        db = MatchDatabase(data)
        db.k_n_match(query, 2, 2)  # constructs the engine with spans=None
        spans = SpanCollector()
        db.set_spans(spans)
        db.k_n_match(query, 2, 2)
        assert len(spans.traces()) == 1
        db.set_spans(None)
        db.k_n_match(query, 2, 2)
        assert len(spans.traces()) == 1
