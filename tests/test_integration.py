"""Cross-module integration: every engine, one workload, one truth.

These tests exercise whole pipelines (generate -> build -> persist ->
load -> query -> explain -> advise) and the grand equivalence: seven
independent implementations of the same query semantics — naive scan,
AD, block-AD, disk AD, disk scan, VA-file, IR middleware — agreeing on
realistic workloads, including the skewed texture stand-in and varying
page sizes.
"""

import numpy as np
import pytest

from conftest import assert_valid_frequent
from repro import MatchDatabase, explain_match, load_database, save_database
from repro.core.advisor import recommend_engine
from repro.core.naive import NaiveScanEngine
from repro.data import (
    float32_exact,
    make_texture_like,
    sample_queries,
    skewed_dataset,
)
from repro.disk import DiskADEngine, DiskScanEngine
from repro.ir import MatchMiddleware, ScoreSystem
from repro.storage import DiskModel, Pager
from repro.vafile import VAFileEngine


@pytest.fixture(scope="module")
def workload():
    data = make_texture_like(cardinality=2500, seed=99)
    queries = sample_queries(data, 3, seed=100)
    return data, queries


class TestGrandEquivalence:
    K = 12
    N_RANGE = (5, 11)

    def test_all_engines_agree_on_texture(self, workload):
        data, queries = workload
        naive = NaiveScanEngine(data)
        db = MatchDatabase(data)
        disk_ad = DiskADEngine(data)
        disk_scan = DiskScanEngine(data)
        va = VAFileEngine(data)
        middleware = MatchMiddleware(
            [ScoreSystem(f"s{j}", data[:, j]) for j in range(data.shape[1])]
        )
        for query in queries:
            truth = naive.frequent_k_n_match(query, self.K, self.N_RANGE)
            assert_valid_frequent(
                data, query, self.N_RANGE, self.K, truth.answer_sets
            )
            for name, result in [
                ("ad", db.frequent_k_n_match(query, self.K, self.N_RANGE, engine="ad")),
                (
                    "block-ad",
                    db.frequent_k_n_match(query, self.K, self.N_RANGE, engine="block-ad"),
                ),
                ("disk-ad", disk_ad.frequent_k_n_match(query, self.K, self.N_RANGE)),
                ("disk-scan", disk_scan.frequent_k_n_match(query, self.K, self.N_RANGE)),
                ("va-file", va.frequent_k_n_match(query, self.K, self.N_RANGE)),
                ("middleware", middleware.frequent_k_n_match(query, self.K, self.N_RANGE)),
            ]:
                assert result.ids == truth.ids, name
                assert result.frequencies == truth.frequencies, name

    @pytest.mark.parametrize("page_size", [256, 1024, 4096])
    def test_page_size_never_changes_answers(self, workload, page_size):
        data, queries = workload
        model = DiskModel(page_size=page_size)
        engine = DiskADEngine(data, pager=Pager(page_size), disk_model=model)
        naive = NaiveScanEngine(data)
        result = engine.frequent_k_n_match(queries[0], 8, (4, 9))
        truth = naive.frequent_k_n_match(queries[0], 8, (4, 9))
        assert result.ids == truth.ids

    def test_smaller_pages_mean_more_page_reads(self, workload):
        data, queries = workload
        reads = {}
        for page_size in (512, 4096):
            engine = DiskADEngine(data, pager=Pager(page_size))
            stats = engine.frequent_k_n_match(queries[0], 8, (4, 9)).stats
            reads[page_size] = stats.page_reads
        assert reads[512] > reads[4096]

    def test_single_dimension_database_all_engines(self):
        data = float32_exact(np.linspace(0, 1, 50).reshape(-1, 1))
        query = np.array([0.52])
        truth = NaiveScanEngine(data).k_n_match(query, 5, 1)
        db = MatchDatabase(data)
        for engine in ("ad", "block-ad"):
            assert db.k_n_match(query, 5, 1, engine=engine).ids == truth.ids
        assert DiskADEngine(data).k_n_match(query, 5, 1).ids == truth.ids
        assert VAFileEngine(data).k_n_match(query, 5, 1).ids == truth.ids


class TestEndToEndPipeline:
    def test_generate_build_save_load_query_explain_advise(self, tmp_path):
        # generate
        data = skewed_dataset(800, 10, seed=3)
        # build + persist + reload
        db = MatchDatabase(data)
        path = tmp_path / "pipeline.npz"
        save_database(db, path)
        restored = load_database(path)
        # query
        query = data[17]
        result = restored.frequent_k_n_match(query, 6, (3, 8))
        assert 17 in result.ids  # the point itself always makes the cut
        # explain the top answer
        explanation = explain_match(data, query, result.ids[0], 8)
        assert explanation.match_count >= 8
        # advise
        advice = recommend_engine(restored, 6, (3, 8))
        rerun = restored.frequent_k_n_match(query, 6, (3, 8), engine=advice.engine)
        assert rerun.ids == result.ids

    def test_stats_sum_is_consistent_across_batch(self, workload):
        data, queries = workload
        db = MatchDatabase(data)
        batch = db.frequent_k_n_match_batch(queries, 5, (4, 8), engine="ad")
        for result in batch:
            stats = result.stats
            assert 0 < stats.attributes_retrieved <= stats.total_attributes
            assert stats.total_attributes == data.size
