"""Serving mutations: /v1/insert and /v1/delete against an LSM store.

The mutation endpoints must behave like the query endpoints in every
observable way — canonical JSON, verbatim validation messages, spans,
metrics, access log — while bumping the generation that keys the result
cache, so a cached answer can never outlive the live set it was
computed under.
"""

import io
import json

import numpy as np
import pytest

from repro.core.dynamic import DynamicMatchDatabase
from repro.core.engine import MatchDatabase
from repro.errors import ValidationError
from repro.lsm import LsmMatchDatabase
from repro.obs import MetricsRegistry, SpanCollector, render_prometheus
from repro.serve import ServeApp, canonical_json
from repro.serve.protocol import parse_delete_request, parse_insert_request

DIMS = 3


def post(app, path, payload):
    return app.handle("POST", path, canonical_json(payload))


def decode(body):
    return json.loads(body.decode("utf-8"))


@pytest.fixture
def store_app(tmp_path):
    db = LsmMatchDatabase(
        tmp_path / "store",
        dimensionality=DIMS,
        memtable_flush_rows=8,
        auto_compact=False,
    )
    app = ServeApp(db, cache_size=32)
    yield app, db
    db.close()


# ----------------------------------------------------------------------
# protocol parsing
# ----------------------------------------------------------------------
class TestMutationProtocol:
    def test_insert_request(self):
        request = parse_insert_request({"point": [1, 2.5, 3]})
        assert request.point == [1.0, 2.5, 3.0]
        assert request.deadline_ms is None

    def test_insert_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown field 'k'"):
            parse_insert_request({"point": [1.0], "k": 3})

    def test_delete_request(self):
        assert parse_delete_request({"pid": 17}).pid == 17

    def test_delete_pid_must_be_integer(self):
        with pytest.raises(ValidationError, match="pid must be an integer"):
            parse_delete_request({"pid": "x"})
        with pytest.raises(ValidationError, match="pid must be an integer"):
            parse_delete_request({"pid": True})


# ----------------------------------------------------------------------
# the endpoints
# ----------------------------------------------------------------------
class TestMutationEndpoints:
    def test_insert_returns_pid_and_generation(self, store_app):
        app, db = store_app
        status, headers, body = post(app, "/v1/insert", {"point": [1, 2, 3]})
        assert status == 200
        payload = decode(body)
        assert payload["kind"] == "insert"
        assert payload["pid"] == 0
        assert payload["generation"] == db.generation
        assert payload["cardinality"] == 1
        assert dict(headers)["X-Repro-Generation"] == str(db.generation)

    def test_delete_round_trip(self, store_app):
        app, db = store_app
        _s, _h, body = post(app, "/v1/insert", {"point": [1, 2, 3]})
        pid = decode(body)["pid"]
        status, headers, body = post(app, "/v1/delete", {"pid": pid})
        assert status == 200
        payload = decode(body)
        assert payload["kind"] == "delete"
        assert payload["cardinality"] == 0
        assert int(dict(headers)["X-Repro-Generation"]) == db.generation

    def test_canonical_json_bytes(self, store_app):
        app, _db = store_app
        _s, _h, body = post(app, "/v1/insert", {"point": [1.0, 2.0, 3.0]})
        assert body == canonical_json(decode(body))

    def test_validation_messages_flow_verbatim(self, store_app):
        app, db = store_app
        status, _h, body = post(app, "/v1/insert", {"point": [1.0, 2.0]})
        assert status == 400
        message = decode(body)["error"]["message"]
        with pytest.raises(ValidationError) as caught:
            db.insert([1.0, 2.0])
        assert message == str(caught.value)

        status, _h, body = post(app, "/v1/delete", {"pid": 999})
        assert status == 400
        assert "does not exist" in decode(body)["error"]["message"]

    def test_static_database_rejects_mutations(self, small_data):
        app = ServeApp(MatchDatabase(small_data))
        status, _h, body = post(app, "/v1/insert", {"point": [0.0] * 8})
        assert status == 400
        assert "does not support mutations" in decode(body)["error"]["message"]

    def test_dynamic_database_accepts_mutations(self, small_data):
        app = ServeApp(DynamicMatchDatabase(small_data))
        status, _h, body = post(app, "/v1/insert", {"point": [0.5] * 8})
        assert status == 200
        assert decode(body)["pid"] == small_data.shape[0]

    def test_mutation_requires_post(self, store_app):
        app, _db = store_app
        status, _h, _body = app.handle("GET", "/v1/insert", b"")
        assert status == 405


# ----------------------------------------------------------------------
# cache soundness across mutations
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_mutation_invalidates_cached_answers(self, store_app):
        app, _db = store_app
        for value in range(8):
            post(app, "/v1/insert", {"point": [float(value)] * DIMS})
        request = {"query": [0.0, 0.0, 0.0], "k": 2, "n": 2}
        _s, h1, b1 = post(app, "/v1/query", request)
        _s, h2, b2 = post(app, "/v1/query", request)
        assert dict(h1)["X-Repro-Cache"] == "miss"
        assert dict(h2)["X-Repro-Cache"] == "hit"
        assert b1 == b2  # byte-identical replay

        post(app, "/v1/delete", {"pid": 0})
        _s, h3, b3 = post(app, "/v1/query", request)
        assert dict(h3)["X-Repro-Cache"] == "miss"
        assert 0 not in decode(b3)["result"]["ids"]

    def test_queries_match_oracle_after_served_mutations(self, store_app):
        app, db = store_app
        model = {}
        for value in range(20):
            point = [value * 1.0, value * 0.5, (value % 5) * 2.0]
            _s, _h, body = post(app, "/v1/insert", {"point": point})
            model[decode(body)["pid"]] = np.array(point)
        for pid in list(model)[::4]:
            post(app, "/v1/delete", {"pid": pid})
            del model[pid]
        query = np.array([3.0, 1.5, 4.0])
        _s, _h, body = post(
            app, "/v1/query", {"query": query.tolist(), "k": 5, "n": 2}
        )
        scored = sorted(
            (float(np.sort(np.abs(row - query))[1]), pid)
            for pid, row in model.items()
        )
        assert decode(body)["result"]["ids"] == [p for _d, p in scored[:5]]


# ----------------------------------------------------------------------
# observability parity with the query endpoints
# ----------------------------------------------------------------------
class TestMutationObservability:
    def test_metrics_spans_and_access_log(self, tmp_path):
        registry = MetricsRegistry()
        spans = SpanCollector()
        log = io.StringIO()
        db = LsmMatchDatabase(
            tmp_path / "store",
            dimensionality=DIMS,
            auto_compact=False,
            metrics=registry,
            spans=spans,
        )
        app = ServeApp(db, metrics=registry, spans=spans, access_log=log)
        _s, _h, body = post(app, "/v1/insert", {"point": [1.0, 2.0, 3.0]})
        pid = decode(body)["pid"]
        post(app, "/v1/delete", {"pid": pid})

        text = render_prometheus(registry)
        assert 'repro_lsm_mutations_total{op="insert"} 1' in text
        assert 'repro_lsm_mutations_total{op="delete"} 1' in text
        assert 'endpoint="/v1/insert",status="200"' in text
        assert 'endpoint="/v1/delete",status="200"' in text

        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children:
                walk(child)

        for root in spans.traces():
            walk(root)
        assert {"serve_handle", "lsm/insert", "lsm/delete", "wal_append"} <= names

        lines = [json.loads(line) for line in log.getvalue().splitlines()]
        assert [entry["path"] for entry in lines] == [
            "/v1/insert",
            "/v1/delete",
        ]
        assert lines[0]["pid"] == pid and lines[1]["pid"] == pid
        assert lines[1]["generation"] > lines[0]["generation"]
        assert all("trace_id" in entry for entry in lines)
        db.close()

    def test_health_reports_lsm_generation(self, store_app):
        app, db = store_app
        post(app, "/v1/insert", {"point": [1.0, 2.0, 3.0]})
        _s, _h, body = app.handle("GET", "/healthz", b"")
        payload = decode(body)
        assert payload["generation"] == db.generation
