"""Empirical checks of Theorems 3.1-3.3 (correctness and optimality).

The attribute-retrieval lower bound for any correct algorithm is the
number of attributes whose difference to the query (in their own
dimension) is strictly below the final k-n-match difference delta —
Thm 3.2's adversary can relabel any unretrieved attribute below delta to
break the answer.  The AD algorithm consumes attributes in globally
ascending difference order and stops at the pop completing the k-th
answer, so its pop count must land inside [strictly-below-delta + 1,
at-most-delta].  These tests verify that band exactly, on many random
workloads.
"""

import numpy as np
import pytest

from conftest import reference_differences
from repro.core.ad import ADEngine


def attribute_difference_counts(data, query, delta):
    """(#attrs with diff < delta, #attrs with diff <= delta)."""
    diffs = np.abs(np.asarray(data, float) - np.asarray(query, float))
    return int((diffs < delta - 1e-12).sum()), int((diffs <= delta + 1e-12).sum())


@pytest.mark.parametrize("seed", range(8))
def test_pop_count_within_optimal_band(seed):
    rng = np.random.default_rng(seed)
    c, d = int(rng.integers(20, 200)), int(rng.integers(2, 10))
    data = rng.random((c, d))
    query = rng.random(d)
    k = int(rng.integers(1, min(c, 12) + 1))
    n = int(rng.integers(1, d + 1))

    result = ADEngine(data).k_n_match(query, k, n)
    delta = result.match_difference
    below, at_most = attribute_difference_counts(data, query, delta)
    assert below < result.stats.heap_pops <= at_most


@pytest.mark.parametrize("seed", range(8))
def test_frequent_pop_count_within_band_of_n1(seed):
    """Thm 3.3: FKNMatchAD costs exactly a k-n1-match search."""
    rng = np.random.default_rng(100 + seed)
    c, d = int(rng.integers(20, 150)), int(rng.integers(3, 9))
    data = rng.random((c, d))
    query = rng.random(d)
    k = int(rng.integers(1, 10))
    n1 = int(rng.integers(2, d + 1))
    n0 = int(rng.integers(1, n1 + 1))

    result = ADEngine(data).frequent_k_n_match(query, k, (n0, n1))
    delta = float(
        np.sort(reference_differences(data, query, n1))[k - 1]
    )
    below, at_most = attribute_difference_counts(data, query, delta)
    assert below < result.stats.heap_pops <= at_most


def test_retrieval_overhead_bounded_by_frontier(small_data, small_query):
    """retrieved - popped <= 2d: only the frontier fill is 'extra'."""
    for k, n in [(1, 1), (5, 4), (20, 8)]:
        stats = ADEngine(small_data).k_n_match(small_query, k, n).stats
        assert 0 <= stats.attributes_retrieved - stats.heap_pops <= 2 * 8


def test_correctness_thm31_completion_order(small_data, small_query):
    """Thm 3.1: the i-th completion has the i-th smallest difference."""
    result = ADEngine(small_data).k_n_match(small_query, 25, 5)
    expected = np.sort(reference_differences(small_data, small_query, 5))[:25]
    np.testing.assert_allclose(result.differences, expected, atol=1e-12)


def test_ad_beats_naive_on_attributes(small_data, small_query):
    """The whole point: far fewer attributes than the full scan."""
    stats = ADEngine(small_data).k_n_match(small_query, 5, 4).stats
    assert stats.attributes_retrieved < small_data.size / 2
