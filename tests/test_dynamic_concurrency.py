"""DynamicMatchDatabase under threads, plus its observability surface.

The dynamic facade sits behind the threaded HTTP server, so writers
(insert/delete/compact) race readers (k_n_match) from a thread pool
here.  Correctness bar: no exceptions, no torn state, and every answer
is a *valid* k-n-match of some consistent snapshot — which the lock
guarantees by construction (each query runs against exactly one
generation).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.dynamic import DynamicMatchDatabase
from repro.core.naive import NaiveScanEngine
from repro.obs import MetricsRegistry, SpanCollector, registry_to_dict


# ----------------------------------------------------------------------
# generation counter
# ----------------------------------------------------------------------
class TestGeneration:
    def test_starts_at_zero_and_bumps_on_every_mutation(self, small_data):
        db = DynamicMatchDatabase(small_data)
        assert db.generation == 0
        db.insert(np.full(8, 0.5))
        assert db.generation == 1
        db.delete(0)
        assert db.generation == 2
        db.compact()
        assert db.generation == 3

    def test_queries_do_not_bump(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        db.k_n_match(small_query, 3, 4)
        db.frequent_k_n_match(small_query, 3, (2, 4))
        assert db.generation == 0

    def test_insert_many_bumps_per_point(self, small_data, rng):
        db = DynamicMatchDatabase(small_data)
        db.insert_many(rng.random((5, 8)))
        assert db.generation == 5

    def test_auto_compaction_bumps_too(self):
        db = DynamicMatchDatabase(np.zeros((4, 2)), min_buffer=2)
        before = db.generation
        for value in range(5):
            db.insert(np.full(2, float(value)))
        assert db.compactions >= 1
        # 5 inserts plus one bump per compaction
        assert db.generation == before + 5 + db.compactions


# ----------------------------------------------------------------------
# metrics / spans threading (satellite: obs parity with other facades)
# ----------------------------------------------------------------------
class TestDynamicObservability:
    def test_metrics_recorded_under_dynamic_engine(self, small_data, small_query):
        registry = MetricsRegistry()
        db = DynamicMatchDatabase(small_data, metrics=registry)
        db.k_n_match(small_query, 3, 4)
        db.frequent_k_n_match(small_query, 3, (2, 4))
        queries = registry_to_dict(registry)["repro_queries_total"]["series"]
        by_labels = {
            (series["labels"]["engine"], series["labels"]["kind"]): series["value"]
            for series in queries
        }
        assert by_labels[("dynamic", "k_n_match")] == 1
        assert by_labels[("dynamic", "frequent_k_n_match")] == 1

    def test_set_metrics_after_construction(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        registry = MetricsRegistry()
        db.set_metrics(registry)
        assert db.metrics is registry
        db.k_n_match(small_query, 2, 3)
        assert "repro_queries_total" in registry_to_dict(registry)

    def test_spans_tree_has_dynamic_phases(self, small_data, small_query):
        spans = SpanCollector()
        db = DynamicMatchDatabase(small_data, spans=spans)
        db.insert(np.asarray(small_query))  # non-empty buffer
        db.k_n_match(small_query, 3, 4)
        (root,) = spans.traces()
        assert root.name == "dynamic/k_n_match"
        assert root.meta == {"k": 3, "n": 4}
        names = [span.name for span in root.iter_spans()]
        assert "base_search" in names
        assert "buffer_scan" in names
        assert "merge" in names

    def test_frequent_span_root(self, small_data, small_query):
        spans = SpanCollector()
        db = DynamicMatchDatabase(small_data)
        db.set_spans(spans)
        assert db.spans is spans
        db.frequent_k_n_match(small_query, 3, (2, 5))
        (root,) = spans.traces()
        assert root.name == "dynamic/frequent_k_n_match"
        assert root.meta == {"k": 3, "n0": 2, "n1": 5}

    def test_instrumentation_does_not_change_answers(self, small_data, small_query):
        plain = DynamicMatchDatabase(small_data)
        instrumented = DynamicMatchDatabase(
            small_data, metrics=MetricsRegistry(), spans=SpanCollector()
        )
        for db in (plain, instrumented):
            db.insert(np.full(8, 0.25))
            db.delete(7)
        a = plain.k_n_match(small_query, 5, 4)
        b = instrumented.k_n_match(small_query, 5, 4)
        assert a.ids == b.ids
        assert a.differences == b.differences


# ----------------------------------------------------------------------
# writers racing readers
# ----------------------------------------------------------------------
def _stress(db, rounds, readers, writers, dims, seed):
    """Race queries against mutations; returns reader exceptions."""
    errors = []
    stop = threading.Event()
    rng = np.random.default_rng(seed)
    queries = rng.random((readers, dims))

    def read(index):
        try:
            while not stop.is_set():
                result = db.k_n_match(queries[index], 3, max(1, dims // 2))
                assert len(result.ids) == 3
                assert sorted(result.differences) == result.differences
                generation = db.generation
                assert generation >= 0
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def write(index):
        try:
            local = np.random.default_rng(seed + index + 1)
            inserted = []
            for round_index in range(rounds):
                inserted.append(db.insert(local.random(dims)))
                if inserted and round_index % 3 == 2:
                    db.delete(inserted.pop(local.integers(len(inserted))))
                if round_index % 7 == 6:
                    db.compact()
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    with ThreadPoolExecutor(max_workers=readers + writers) as pool:
        reader_futures = [pool.submit(read, i) for i in range(readers)]
        writer_futures = [pool.submit(write, i) for i in range(writers)]
        for future in writer_futures:
            future.result(timeout=120)
        stop.set()
        for future in reader_futures:
            future.result(timeout=120)
    return errors


class TestConcurrentStress:
    def test_quick_stress(self, rng):
        data = rng.random((120, 6))
        db = DynamicMatchDatabase(data, min_buffer=16)
        errors = _stress(db, rounds=30, readers=3, writers=2, dims=6, seed=11)
        assert errors == []
        assert db.compactions >= 1
        # final state answers exactly like a fresh naive engine on its snapshot
        rows, pids = db.snapshot()
        query = rng.random(6)
        result = db.k_n_match(query, 5, 3)
        profiles = np.sort(np.abs(rows - query), axis=1)[:, 2]
        expected = sorted(zip(profiles, pids.tolist()))[:5]
        assert result.ids == [pid for _d, pid in expected]

    def test_concurrent_inserts_assign_unique_ids(self, rng):
        db = DynamicMatchDatabase(dimensionality=4, min_buffer=1000)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(db.insert, rng.random(4).copy()) for _ in range(200)
            ]
            pids = [future.result() for future in futures]
        assert sorted(pids) == list(range(200))
        assert db.cardinality == 200
        assert db.generation == 200

    @pytest.mark.tier2
    def test_heavy_stress(self, rng):
        data = rng.random((600, 8))
        db = DynamicMatchDatabase(data, min_buffer=32)
        errors = _stress(db, rounds=200, readers=6, writers=4, dims=8, seed=23)
        assert errors == []
        # cross-check the final structure against the naive oracle
        rows, pids = db.snapshot()
        query = rng.random(8)
        naive = NaiveScanEngine(rows).k_n_match(query, 10, 4)
        remapped = [int(pids[row]) for row in naive.ids]
        assert db.k_n_match(query, 10, 4).ids == remapped
