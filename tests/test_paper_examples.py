"""The paper's worked examples, reproduced end-to-end.

Every number asserted here appears verbatim in the paper's text:
Figure 1's 6/7/8-match answers, Figure 2's query-type contrast,
Figure 3/5's 2-2-match run of the AD algorithm, and the FA
counterexample of Sec. 3.
"""

import numpy as np
import pytest

from repro import MatchDatabase
from repro.baselines import fa_top_k, skyline
from repro.core.ad import ADEngine


class TestFigure1:
    """10-d example: partial similarity that Euclidean distance misses."""

    QUERY = [1.0] * 10

    def test_euclidean_nn_returns_object_4(self, figure1_database):
        distances = np.linalg.norm(figure1_database - np.array(self.QUERY), axis=1)
        assert int(np.argmin(distances)) == 3  # object 4, 0-indexed

    @pytest.mark.parametrize(
        "n, expected_object, expected_delta",
        [(6, 3, 0.0), (7, 1, 0.2), (8, 2, 0.4)],
    )
    def test_n_match_answers(self, figure1_database, n, expected_object, expected_delta):
        db = MatchDatabase(figure1_database)
        result = db.k_n_match(self.QUERY, k=1, n=n)
        assert result.ids == [expected_object - 1]
        assert result.differences[0] == pytest.approx(expected_delta, abs=1e-9)

    def test_6_match_with_delta_02_adds_object_1(self, figure1_database):
        """Sec. 1: 'If we set delta to 0.2, we would have an additional
        answer, object 1, for the 6-match query.'"""
        db = MatchDatabase(figure1_database)
        result = db.k_n_match(self.QUERY, k=2, n=6)
        assert sorted(result.ids) == [0, 2]  # objects 1 and 3
        assert result.match_difference == pytest.approx(0.2, abs=1e-9)


class TestFigure3And5:
    """The running example of the AD algorithm (Sec. 3.1)."""

    def test_2_2_match_answer(self, figure3_database, figure3_query):
        db = MatchDatabase(figure3_database)
        result = db.k_n_match(figure3_query, k=2, n=2)
        # paper: "The 2-2-match set is {point 2, point 3} and ... the
        # 2-2-match difference, 1.5."
        assert sorted(result.ids) == [1, 2]
        assert result.match_difference == pytest.approx(1.5)

    def test_completion_order_matches_trace(self, figure3_database, figure3_query):
        # The paper's trace: point 3 completes first (via (3,5,1.0)),
        # then point 2 (via (2,2,1.5)).
        db = MatchDatabase(figure3_database)
        result = db.k_n_match(figure3_query, k=2, n=2)
        assert result.ids == [2, 1]
        assert result.differences == pytest.approx([1.0, 1.5])

    def test_sorted_dimensions_match_figure5(self, figure3_database):
        engine = ADEngine(figure3_database)
        columns = engine.columns
        # Figure 5, dimension 1: (1,0.4) (2,2.8) (5,3.5) (3,6.5) (4,9.0)
        np.testing.assert_array_equal(columns.column_ids(0), [0, 1, 4, 2, 3])
        np.testing.assert_allclose(
            columns.column_values(0), [0.4, 2.8, 3.5, 6.5, 9.0]
        )
        # dimension 2: (1,1.0) (5,1.5) (2,5.5) (3,7.8) (4,9.0)
        np.testing.assert_array_equal(columns.column_ids(1), [0, 4, 1, 2, 3])
        # dimension 3: (1,1.0) (2,2.0) (3,5.0) (5,8.0) (4,9.0)
        np.testing.assert_array_equal(columns.column_ids(2), [0, 1, 2, 4, 3])

    def test_1_match_is_point_2(self, figure3_database, figure3_query):
        # "we are looking for the 1-match of the query (3.0, 7.0, 4.0)"
        # -> point 2 with difference 0.2 (dimension 1: |2.8 - 3.0|).
        db = MatchDatabase(figure3_database)
        result = db.k_n_match(figure3_query, k=1, n=1)
        assert result.ids == [1]
        assert result.differences[0] == pytest.approx(0.2)


class TestFAGetsItWrong:
    """Sec. 3: FA assumes monotone aggregation; n-match breaks it."""

    def test_fa_returns_point_1_instead_of_point_2(
        self, figure3_database, figure3_query
    ):
        def one_match(row: np.ndarray) -> float:
            return float(np.min(np.abs(row - figure3_query)))

        run = fa_top_k(figure3_database, one_match, k=1)
        assert run.ids == [0]  # FA's wrong answer: point 1
        assert run.aggregates[0] == pytest.approx(2.6)
        # The correct answer was never even seen by sorted access.
        assert 1 not in run.seen

    def test_fa_correct_for_monotone_aggregate(self, figure3_database):
        # Minimising the raw coordinate sum IS monotone in the sorted
        # lists' order, so FA must agree with brute force.
        def total(row: np.ndarray) -> float:
            return float(row.sum())

        run = fa_top_k(figure3_database, total, k=2)
        brute = np.argsort(figure3_database.sum(axis=1))[:2]
        assert sorted(run.ids) == sorted(int(i) for i in brute)


class TestFigure2Contrast:
    """k-n-match vs skyline on a 2-d layout like the paper's Figure 2."""

    POINTS = {
        "A": [5.05, 9.0],
        "B": [6.0, 6.5],
        "C": [9.5, 5.8],
        "D": [4.7, 1.0],
        "E": [5.4, 0.5],
    }
    QUERY = np.array([5.0, 6.0])

    def _db(self):
        names = list(self.POINTS)
        return names, MatchDatabase(np.array([self.POINTS[n] for n in names]))

    def test_1_match_is_best_single_dimension(self):
        names, db = self._db()
        result = db.k_n_match(self.QUERY, k=1, n=1)
        assert names[result.ids[0]] == "A"  # x within 0.05

    def test_knmatch_depends_on_k_and_n(self):
        names, db = self._db()
        one = {names[i] for i in db.k_n_match(self.QUERY, k=3, n=1).ids}
        two = {names[i] for i in db.k_n_match(self.QUERY, k=2, n=2).ids}
        assert one != two  # different (k, n) -> different answers

    def test_skyline_is_a_fixed_set(self):
        names, db = self._db()
        sky = {names[i] for i in skyline(db.data, query=self.QUERY)}
        assert sky == {"A", "B", "C"}
        # ... and differs from the k-n-match answers above.
        two = {names[i] for i in db.k_n_match(self.QUERY, k=2, n=2).ids}
        assert sky != two
