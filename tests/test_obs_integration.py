"""End-to-end observability: engines, executor, disk, pager, CLI.

The contract under test: with no registry installed nothing is
recorded and answers are what they always were; with a registry
installed the same answers come back and the registry fills with the
cost counters the results themselves report.
"""

import json

import numpy as np
import pytest

from repro import MatchDatabase, MetricsRegistry, save_database
from repro.cli import main as cli_main
from repro.core.engine import ENGINE_NAMES
from repro.disk import DiskADEngine
from repro.obs import QueryTrace
from repro.storage import Pager


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(21).random((400, 8))


class TestEngineMetrics:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_answers_identical_with_and_without_registry(self, data, engine):
        query = data[5]
        plain = MatchDatabase(data).k_n_match(query, 4, 5, engine=engine)
        registry = MetricsRegistry()
        metered_db = MatchDatabase(data, metrics=registry)
        metered = metered_db.k_n_match(query, 4, 5, engine=engine)
        assert metered.ids == plain.ids
        assert metered.differences == plain.differences

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_query_counters_match_result_stats(self, data, engine):
        registry = MetricsRegistry()
        db = MatchDatabase(data, metrics=registry)
        result = db.k_n_match(data[0], 4, 5, engine=engine)
        name = db.engine(engine).name
        labels = dict(engine=name, kind="k_n_match")
        assert registry.get("repro_queries_total").labels(**labels).value == 1
        assert (
            registry.get("repro_attributes_retrieved_total")
            .labels(**labels)
            .value
            == result.stats.attributes_retrieved
        )

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_frequent_counters(self, data, engine):
        registry = MetricsRegistry()
        db = MatchDatabase(data, metrics=registry)
        result = db.frequent_k_n_match(data[1], 3, (2, 6), engine=engine)
        name = db.engine(engine).name
        labels = dict(engine=name, kind="frequent_k_n_match")
        assert registry.get("repro_queries_total").labels(**labels).value == 1
        assert (
            registry.get("repro_attributes_retrieved_total")
            .labels(**labels)
            .value
            == result.stats.attributes_retrieved
        )

    def test_no_registry_records_nothing(self, data):
        db = MatchDatabase(data)
        db.k_n_match(data[0], 3, 4)
        assert db.metrics is None

    def test_set_metrics_reaches_existing_engines(self, data):
        db = MatchDatabase(data)
        db.k_n_match(data[0], 3, 4, engine="block-ad")  # engine built
        registry = MetricsRegistry()
        db.set_metrics(registry)
        db.k_n_match(data[0], 3, 4, engine="block-ad")
        assert (
            registry.get("repro_queries_total")
            .labels(engine="block-ad", kind="k_n_match")
            .value
            == 1
        )
        db.set_metrics(None)
        db.k_n_match(data[0], 3, 4, engine="block-ad")
        assert (
            registry.get("repro_queries_total")
            .labels(engine="block-ad", kind="k_n_match")
            .value
            == 1
        )


class TestTrace:
    def test_trace_attached_on_request(self, data):
        db = MatchDatabase(data)
        result = db.k_n_match(data[0], 3, 4, trace=True)
        trace = result.trace
        assert isinstance(trace, QueryTrace)
        assert trace.engine == "ad"
        assert trace.kind == "k_n_match"
        assert trace.attributes_retrieved == result.stats.attributes_retrieved
        assert trace.wall_time_seconds > 0
        assert "ad/k_n_match" in trace.summary()

    def test_trace_off_by_default(self, data):
        result = MatchDatabase(data).k_n_match(data[0], 3, 4)
        assert result.trace is None

    def test_frequent_trace(self, data):
        db = MatchDatabase(data)
        result = db.frequent_k_n_match(
            data[0], 3, (2, 6), engine="block-ad", trace=True
        )
        assert result.trace.kind == "frequent_k_n_match"
        assert result.trace.n_range == (2, 6)
        assert result.trace.epsilon_rounds >= 0

    def test_trace_needs_no_registry(self, data):
        db = MatchDatabase(data)
        assert db.metrics is None
        assert db.k_n_match(data[0], 3, 4, trace=True).trace is not None


class TestExecutorMetrics:
    def test_shard_histograms_and_worker_gauges(self, data):
        registry = MetricsRegistry()
        db = MatchDatabase(data, metrics=registry)
        queries = data[:24]
        db.k_n_match_batch(queries, 3, 4, engine="block-ad", workers=3)
        labels = dict(engine="block-ad")
        assert (
            registry.get("repro_batch_queries_total").labels(**labels).value
            == 24
        )
        shard_sizes = registry.get("repro_batch_shard_queries").labels(**labels)
        assert shard_sizes.sum == 24
        assert shard_sizes.count >= 3  # at least one shard per worker
        seconds = registry.get("repro_batch_shard_seconds").labels(**labels)
        assert seconds.count == shard_sizes.count
        utilization = registry.get("repro_batch_worker_utilization")
        assert utilization is not None and utilization.children()


class TestDiskMetrics:
    def test_disk_query_reports_page_reads(self, data):
        registry = MetricsRegistry()
        engine = DiskADEngine(data, metrics=registry)
        result = engine.k_n_match(data[0], 4, 5)
        pages = result.stats.sequential_page_reads + result.stats.random_page_reads
        assert pages > 0
        family = registry.get("repro_query_page_reads_total")
        recorded = sum(child.value for child in family.children())
        assert recorded == pages
        pager_reads = registry.get("repro_pager_reads_total")
        assert sum(child.value for child in pager_reads.children()) >= pages

    def test_pager_metrics_standalone(self):
        registry = MetricsRegistry()
        pager = Pager(page_size=64, metrics=registry)
        first = pager.allocate(b"a" * 64)
        second = pager.allocate(b"b" * 64)
        pager.read(first)
        pager.read(second)  # sequential successor
        pager.read(first)  # random jump back
        family = registry.get("repro_pager_reads_total")
        total = sum(child.value for child in family.children())
        assert total == 3

    def test_disk_answers_identical_with_registry(self, data):
        query = data[7]
        plain = DiskADEngine(data).k_n_match(query, 4, 5)
        metered = DiskADEngine(data, metrics=MetricsRegistry()).k_n_match(
            query, 4, 5
        )
        assert metered.ids == plain.ids
        assert metered.differences == plain.differences


class TestCli:
    @pytest.fixture()
    def db_path(self, tmp_path, data):
        path = tmp_path / "db.npz"
        save_database(MatchDatabase(data), str(path))
        return str(path)

    def test_stats_subcommand_prometheus(self, db_path, capsys):
        assert cli_main(["stats", db_path, "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert 'repro_queries_total{engine="ad",kind="k_n_match"} 1' in out
        assert 'repro_queries_total{engine="disk-ad",kind="k_n_match"} 1' in out
        for line in out.splitlines():
            if line.startswith("repro_attributes_retrieved_total{"):
                assert float(line.rsplit(" ", 1)[1]) > 0
        assert "repro_pager_reads_total" in out

    def test_stats_subcommand_json_no_disk(self, db_path, capsys):
        assert (
            cli_main(["stats", db_path, "--format", "json", "--no-disk"]) == 0
        )
        doc = json.loads(capsys.readouterr().out)
        engines = {
            series["labels"]["engine"]
            for series in doc["repro_queries_total"]["series"]
        }
        assert engines == {"ad"}
        assert "repro_pager_reads_total" not in doc

    def test_query_metrics_out(self, db_path, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        code = cli_main(
            [
                "query", db_path, "--k", "3", "--n", "4",
                "--query-row", "0", "--trace", "--metrics-out", str(out_path),
            ]
        )
        assert code == 0
        assert "trace[ad/k_n_match]" in capsys.readouterr().out
        text = out_path.read_text()
        assert "# TYPE repro_queries_total counter" in text

    def test_batch_metrics_out_json(self, db_path, tmp_path):
        out_path = tmp_path / "metrics.json"
        code = cli_main(
            [
                "batch", db_path, "--k", "3", "--n", "4",
                "--query-rows", "0:6", "--workers", "2",
                "--metrics-out", str(out_path),
            ]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        total = sum(
            series["value"]
            for series in doc["repro_batch_queries_total"]["series"]
        )
        assert total == 6


class TestCliStatsEngine:
    @pytest.fixture()
    def db_path(self, tmp_path, data):
        path = tmp_path / "db.npz"
        save_database(MatchDatabase(data), str(path))
        return str(path)

    def test_stats_engine_selects_the_probed_engine(self, db_path, capsys):
        code = cli_main(
            [
                "stats", db_path, "--k", "3",
                "--engine", "block-ad", "--no-disk",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert 'repro_queries_total{engine="block-ad",kind="k_n_match"} 1' in out
        assert 'engine="ad"' not in out

    def test_stats_engine_rejects_unknown_names(self, db_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(["stats", db_path, "--k", "3", "--engine", "nope"])


class TestCliTrace:
    @pytest.fixture()
    def db_path(self, tmp_path, data):
        path = tmp_path / "db.npz"
        save_database(MatchDatabase(data), str(path))
        return str(path)

    def test_trace_knmatch_prints_span_tree(self, db_path, capsys):
        code = cli_main(
            ["trace", db_path, "--k", "3", "--n", "4", "--query-row", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3-4-match answers (id, difference):" in out
        assert "spans (1 trace):" in out
        assert "ad/k_n_match" in out
        assert "cursor_init" in out
        assert "heap_consume" in out

    def test_trace_frequent_block_ad(self, db_path, capsys):
        code = cli_main(
            [
                "trace", db_path, "--k", "3", "--n-range", "2:6",
                "--query-row", "1", "--engine", "block-ad",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent 3-n-match over n in [2, 6]" in out
        assert "block-ad/frequent_k_n_match" in out
        assert "window_grow" in out
        assert "rank" in out

    def test_trace_sharded_fanout(self, db_path, capsys):
        code = cli_main(
            [
                "trace", db_path, "--k", "3", "--n", "4",
                "--query-row", "0", "--shards", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded/k_n_match" in out
        assert "shard_fanout" in out
        assert "merge" in out

    def test_trace_chrome_out_is_valid_trace_event_json(
        self, db_path, tmp_path, capsys
    ):
        out_path = tmp_path / "trace.json"
        code = cli_main(
            [
                "trace", db_path, "--k", "3", "--n", "4",
                "--query-row", "0", "--chrome-out", str(out_path),
            ]
        )
        assert code == 0
        assert f"wrote Chrome trace to {out_path}" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        spans = [event for event in events if event["ph"] == "X"]
        assert {"ad/k_n_match", "cursor_init", "heap_consume"} <= {
            event["name"] for event in spans
        }
        for event in spans:
            assert event["dur"] >= 0.0
            assert {"ph", "name", "cat", "pid", "tid", "ts", "dur", "args"} <= (
                set(event)
            )

    def test_trace_audit_reports_ratio_one_for_ad(self, db_path, capsys):
        code = cli_main(
            [
                "trace", db_path, "--k", "3", "--n", "4",
                "--query-row", "2", "--audit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "audit[ad/k_n_match]" in out
        assert "ratio=1.0000" in out

    def test_trace_slow_log_line(self, db_path, capsys):
        code = cli_main(
            [
                "trace", db_path, "--k", "3", "--n", "4",
                "--query-row", "0", "--slow-ms", "0",
            ]
        )
        assert code == 0
        assert "slow-query log (>= 0ms): 1 trace" in capsys.readouterr().out

    def test_trace_bad_query_row(self, db_path, capsys):
        code = cli_main(
            ["trace", db_path, "--k", "3", "--n", "4", "--query-row", "9999"]
        )
        assert code == 2
        assert "query-row" in capsys.readouterr().err

    def test_trace_requires_one_n_mode(self, db_path):
        with pytest.raises(SystemExit):
            cli_main(["trace", db_path, "--k", "3", "--query-row", "0"])
