"""repro.shard: partitioners, exact scatter-gather merge, io, CLI, obs.

The load-bearing suite here is the bit-identity property block: for the
canonical-tie-break engines (``naive``, ``block-ad``, ``batch-block-ad``)
a sharded database must return *exactly* the answers of an unsharded
one — same ids, same differences, same tie order — across partitioners,
shard counts (including more shards than points) and both the single
and batch query paths, on deliberately tie-heavy data.  The heap ``ad``
engine is only compared on tie-free data, matching the repo-wide
cross-engine convention (its within-tie discovery order is its own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.engine import (
    MatchDatabase,
    validate_engine_choice,
    validate_engine_name,
)
from repro.errors import StorageError, ValidationError
from repro.io import (
    load_any_database,
    load_database,
    load_sharded_database,
    save_database,
    save_sharded_database,
)
from repro.shard import (
    DEFAULT_PARTITIONER,
    Partitioner,
    ScatterGatherCoordinator,
    ShardedMatchDatabase,
    make_partitioner,
    partitioner_names,
    register_partitioner,
    validate_shard_count,
)
from repro.shard.partition import _PARTITIONERS

CANONICAL_ENGINES = ("naive", "block-ad", "batch-block-ad")
ALL_PARTITIONERS = ("round-robin", "hash", "range")


@pytest.fixture
def tie_data(rng) -> np.ndarray:
    """60 x 6 points on a coarse integer grid: ties everywhere."""
    return rng.integers(0, 5, size=(60, 6)).astype(np.float64)


@pytest.fixture
def tie_query() -> np.ndarray:
    return np.full(6, 2.0)


def _flat(data, engine="block-ad"):
    return MatchDatabase(data, default_engine=engine)


def assert_same_match(a, b):
    assert a.ids == b.ids
    assert a.differences == b.differences


def assert_same_frequent(a, b):
    assert a.ids == b.ids
    assert a.frequencies == b.frequencies
    assert a.answer_sets == b.answer_sets


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------


class TestPartitioners:
    def test_registry_lists_builtins(self):
        assert set(ALL_PARTITIONERS) <= set(partitioner_names())
        assert DEFAULT_PARTITIONER in partitioner_names()

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown partitioner"):
            make_partitioner("bogus")

    @pytest.mark.parametrize("name", ALL_PARTITIONERS)
    def test_assignment_is_valid_and_deterministic(self, name, tie_data):
        partitioner = make_partitioner(name)
        first = partitioner.assign(tie_data, 7)
        second = partitioner.assign(tie_data, 7)
        assert first.shape == (60,)
        assert first.min() >= 0 and first.max() < 7
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("name", ("round-robin", "range"))
    def test_count_balanced(self, name, tie_data):
        assignment = make_partitioner(name).assign(tie_data, 7)
        sizes = np.bincount(assignment, minlength=7)
        assert sizes.max() - sizes.min() <= 1

    def test_hash_differs_from_round_robin(self, tie_data):
        hashed = make_partitioner("hash").assign(tie_data, 4)
        rr = make_partitioner("round-robin").assign(tie_data, 4)
        assert not np.array_equal(hashed, rr)

    def test_range_gives_contiguous_value_ranges(self, tie_data):
        partitioner = make_partitioner("range", dimension=3)
        assignment = partitioner.assign(tie_data, 4)
        values = tie_data[:, 3]
        for low in range(3):
            assert values[assignment == low].max() <= (
                values[assignment == low + 1].min()
            )

    def test_range_bad_dimension(self, tie_data):
        with pytest.raises(ValidationError, match="dimension"):
            make_partitioner("range", dimension=9).assign(tie_data, 2)

    def test_validate_shard_count(self):
        assert validate_shard_count(3) == 3
        for bad in (0, -1, 2.5, True, "4"):
            with pytest.raises(ValidationError):
                validate_shard_count(bad)

    def test_custom_partitioner_registration(self, tie_data):
        @register_partitioner
        class EveryoneToShardZero(Partitioner):
            name = "all-zero"

            def assign(self, data, shards):
                return np.zeros(data.shape[0], dtype=np.int64)

        try:
            db = ShardedMatchDatabase(tie_data, shards=3, partitioner="all-zero")
            assert db.shard_sizes == (60, 0, 0)
        finally:
            del _PARTITIONERS["all-zero"]

    def test_malformed_partitioner_rejected(self, tie_data):
        class Bad(Partitioner):
            name = "bad"

            def assign(self, data, shards):
                return np.full(data.shape[0], shards, dtype=np.int64)

        with pytest.raises(ValidationError, match="outside"):
            ShardedMatchDatabase(tie_data, shards=2, partitioner=Bad())

    def test_options_need_a_name(self, tie_data):
        with pytest.raises(ValidationError, match="options"):
            ShardedMatchDatabase(
                tie_data, shards=2, partitioner=make_partitioner("hash"),
                dimension=1,
            )


# ----------------------------------------------------------------------
# bit-identity: sharded answers == unsharded answers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", (1, 2, 7, 200))
@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS)
class TestExactness:
    def test_k_n_match(self, tie_data, tie_query, shards, partitioner):
        flat = _flat(tie_data)
        db = ShardedMatchDatabase(
            tie_data, shards=shards, partitioner=partitioner
        )
        for engine in CANONICAL_ENGINES:
            for k, n in ((1, 1), (5, 3), (17, 6), (60, 2)):
                assert_same_match(
                    db.k_n_match(tie_query, k, n, engine=engine),
                    flat.k_n_match(tie_query, k, n, engine=engine),
                )

    def test_frequent(self, tie_data, tie_query, shards, partitioner):
        flat = _flat(tie_data)
        db = ShardedMatchDatabase(
            tie_data, shards=shards, partitioner=partitioner
        )
        for engine in CANONICAL_ENGINES:
            assert_same_frequent(
                db.frequent_k_n_match(tie_query, 6, (2, 5), engine=engine),
                flat.frequent_k_n_match(tie_query, 6, (2, 5), engine=engine),
            )

    def test_batch_paths(self, tie_data, tie_query, shards, partitioner):
        flat = _flat(tie_data)
        db = ShardedMatchDatabase(
            tie_data, shards=shards, partitioner=partitioner
        )
        queries = np.vstack([tie_query, tie_data[11], tie_data[42] + 0.5])
        for engine in CANONICAL_ENGINES:
            sharded = db.k_n_match_batch(queries, 8, 4, engine=engine)
            serial = flat.k_n_match_batch(queries, 8, 4, engine=engine)
            for a, b in zip(sharded, serial):
                assert_same_match(a, b)
            sharded_f = db.frequent_k_n_match_batch(
                queries, 5, (1, 6), engine=engine, keep_answer_sets=True
            )
            serial_f = flat.frequent_k_n_match_batch(
                queries, 5, (1, 6), engine=engine, keep_answer_sets=True
            )
            for a, b in zip(sharded_f, serial_f):
                assert_same_frequent(a, b)


class TestExactnessTieFree:
    """The heap ``ad`` engine agrees on tie-free data (repo convention)."""

    @pytest.mark.parametrize("shards", (1, 3, 7))
    def test_ad_engine(self, small_data, small_query, shards):
        flat = _flat(small_data, engine="ad")
        db = ShardedMatchDatabase(
            small_data, shards=shards, default_engine="ad"
        )
        for k, n in ((1, 1), (10, 4), (25, 8)):
            assert_same_match(
                db.k_n_match(small_query, k, n),
                flat.k_n_match(small_query, k, n),
            )
        assert_same_frequent(
            db.frequent_k_n_match(small_query, 7, (3, 6)),
            flat.frequent_k_n_match(small_query, 7, (3, 6)),
        )


class TestDegenerateShards:
    def test_more_shards_than_points(self, tie_query):
        data = np.arange(30.0).reshape(5, 6)
        db = ShardedMatchDatabase(data, shards=9, partitioner="round-robin")
        assert db.shard_sizes.count(0) == 4
        flat = _flat(data)
        assert_same_match(
            db.k_n_match(tie_query, 5, 3, engine="block-ad"),
            flat.k_n_match(tie_query, 5, 3, engine="block-ad"),
        )

    def test_shards_smaller_than_k(self, tie_data, tie_query):
        db = ShardedMatchDatabase(tie_data, shards=25)
        assert max(db.shard_sizes) < 50
        flat = _flat(tie_data)
        assert_same_match(
            db.k_n_match(tie_query, 50, 4, engine="block-ad"),
            flat.k_n_match(tie_query, 50, 4, engine="block-ad"),
        )

    def test_single_point(self):
        db = ShardedMatchDatabase(np.ones((1, 3)), shards=4)
        result = db.k_n_match(np.zeros(3), 1, 2)
        assert result.ids == [0]

    def test_empty_batch(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=3)
        assert db.k_n_match_batch(np.empty((0, 6)), 3, 2) == []
        stats = db.last_batch_stats
        assert stats.queries == 0
        with pytest.raises(ValidationError):
            db.k_n_match_batch(np.empty((0, 6)), 0, 2)

    def test_k_capped_per_shard_not_globally(self, tie_data, tie_query):
        # global k close to the cardinality forces every shard to return
        # its entire point set; merge must still be exact.
        db = ShardedMatchDatabase(tie_data, shards=7, partitioner="hash")
        flat = _flat(tie_data)
        assert_same_match(
            db.k_n_match(tie_query, 59, 6, engine="naive"),
            flat.k_n_match(tie_query, 59, 6, engine="naive"),
        )


# ----------------------------------------------------------------------
# shared engine registry
# ----------------------------------------------------------------------


class TestEngineRegistry:
    def test_identical_unknown_engine_errors(self, tie_data):
        # The facades admit "auto" as a default engine, so they share the
        # choice validator's message; the concrete-engine validator keeps
        # its own list without "auto".
        messages = []
        for build in (
            lambda: MatchDatabase(tie_data, default_engine="bogus"),
            lambda: ShardedMatchDatabase(tie_data, default_engine="bogus"),
            lambda: validate_engine_choice("bogus"),
        ):
            with pytest.raises(ValidationError) as excinfo:
                build()
            messages.append(str(excinfo.value))
        assert len(set(messages)) == 1
        with pytest.raises(ValidationError) as concrete:
            validate_engine_name("bogus")
        assert "'auto'" not in str(concrete.value)

    def test_query_time_unknown_engine(self, tie_data, tie_query):
        flat = MatchDatabase(tie_data)
        db = ShardedMatchDatabase(tie_data, shards=2)
        with pytest.raises(ValidationError) as flat_error:
            flat.k_n_match(tie_query, 2, 2, engine="bogus")
        with pytest.raises(ValidationError) as shard_error:
            db.k_n_match(tie_query, 2, 2, engine="bogus")
        assert str(flat_error.value) == str(shard_error.value)


# ----------------------------------------------------------------------
# facade surface: stats, traces, metrics, accessors
# ----------------------------------------------------------------------


class TestFacade:
    def test_merged_stats_use_global_denominator(self, tie_data, tie_query):
        db = ShardedMatchDatabase(tie_data, shards=4)
        result = db.k_n_match(tie_query, 5, 3, engine="block-ad")
        assert result.stats.total_attributes == 60 * 6
        assert result.stats.attributes_retrieved > 0
        # window re-scans can push the fraction past 1 on tiny shards;
        # the point is the denominator is global, not per-shard
        assert result.stats.fraction_retrieved > 0

    def test_trace(self, tie_data, tie_query):
        db = ShardedMatchDatabase(tie_data, shards=4, default_engine="ad")
        result = db.k_n_match(tie_query, 5, 3, trace=True)
        assert result.trace is not None
        assert "sharded[4xad/round-robin]" in result.trace.summary()
        frequent = db.frequent_k_n_match(tie_query, 4, (2, 4), trace=True)
        assert "sharded[4xad/round-robin]" in frequent.trace.summary()

    def test_last_batch_stats(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=4, workers=2)
        assert db.last_batch_stats is None
        db.k_n_match_batch(tie_data[:5], 3, 2, engine="block-ad")
        stats = db.last_batch_stats
        assert stats.queries == 5
        assert stats.shards == 4
        assert stats.workers == 2
        assert stats.total.attributes_retrieved > 0

    def test_accessors(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=7, partitioner="hash")
        assert len(db) == 60
        assert db.shard_count == 7
        assert sum(db.shard_sizes) == 60
        assert db.partitioner.name == "hash"
        reunion = np.concatenate(
            [db.global_ids(s) for s in range(7)]
        )
        assert sorted(reunion.tolist()) == list(range(60))
        for pid in (0, 13, 59):
            assert pid in db.global_ids(db.shard_of(pid)).tolist()
        with pytest.raises(ValidationError):
            db.shard(7)
        with pytest.raises(ValidationError):
            db.shard_of(60)

    def test_shard_metrics_labels(self, tie_data, tie_query):
        from repro.obs import MetricsRegistry, registry_to_dict

        registry = MetricsRegistry()
        db = ShardedMatchDatabase(tie_data, shards=3, metrics=registry)
        db.k_n_match(tie_query, 4, 2, engine="block-ad")
        db.k_n_match_batch(tie_data[:4], 3, 2, engine="block-ad")
        families = registry_to_dict(registry)
        calls = families["repro_shard_calls_total"]["series"]
        shards_seen = {series["labels"]["shard"] for series in calls}
        assert shards_seen == {"0", "1", "2"}
        kinds = {series["labels"]["kind"] for series in calls}
        assert kinds == {"k_n_match", "k_n_match_batch"}
        # 1 (single) + 4 (batch) logical queries scattered to each shard
        per_shard = {}
        for series in families["repro_shard_queries_total"]["series"]:
            shard = series["labels"]["shard"]
            per_shard[shard] = per_shard.get(shard, 0.0) + series["value"]
        assert per_shard == {"0": 5.0, "1": 5.0, "2": 5.0}
        # scatter-level executor metrics ride along under their own label
        engines = {
            series["labels"]["engine"]
            for series in families["repro_batches_total"]["series"]
        }
        assert engines == {"shard-scatter"}
        # per-worker wall time is histogrammed by backend, not by shard
        worker = families["repro_shard_worker_seconds"]["series"]
        backends = {series["labels"]["backend"] for series in worker}
        assert backends == {"thread"}
        assert all("shard" not in series["labels"] for series in worker)
        observed = sum(series["count"] for series in worker)
        # one observation per shard call: 3 shards x 2 logical scatters
        assert observed == 6

    def test_metrics_do_not_change_answers(self, tie_data, tie_query):
        from repro.obs import MetricsRegistry

        bare = ShardedMatchDatabase(tie_data, shards=3)
        metered = ShardedMatchDatabase(
            tie_data, shards=3, metrics=MetricsRegistry()
        )
        assert_same_match(
            bare.k_n_match(tie_query, 6, 3, engine="block-ad"),
            metered.k_n_match(tie_query, 6, 3, engine="block-ad"),
        )

    def test_set_metrics_round_trip(self, tie_data, tie_query):
        from repro.obs import MetricsRegistry, registry_to_dict

        db = ShardedMatchDatabase(tie_data, shards=2)
        registry = MetricsRegistry()
        db.set_metrics(registry)
        db.k_n_match(tie_query, 2, 2, engine="naive")
        assert "repro_shard_calls_total" in registry_to_dict(registry)
        db.set_metrics(None)
        assert db.metrics is None
        db.k_n_match(tie_query, 2, 2, engine="naive")  # still answers

    def test_coordinator_validation(self):
        with pytest.raises(ValidationError, match="at least one shard"):
            ScatterGatherCoordinator([], total_attributes=0)
        data = np.ones((4, 2))
        with pytest.raises(ValidationError, match="workers"):
            ShardedMatchDatabase(data, shards=2, workers=0)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------


class TestShardIO:
    def test_round_trip(self, tmp_path, tie_data, tie_query):
        db = ShardedMatchDatabase(
            tie_data, shards=5, partitioner="hash", default_engine="block-ad"
        )
        path = tmp_path / "sharded.npz"
        save_sharded_database(db, path)
        loaded = load_sharded_database(path)
        assert loaded.shard_sizes == db.shard_sizes
        assert loaded.default_engine == "block-ad"
        assert loaded.partitioner.describe() == "hash"
        np.testing.assert_array_equal(loaded.assignment, db.assignment)
        assert_same_match(
            loaded.k_n_match(tie_query, 7, 3),
            db.k_n_match(tie_query, 7, 3),
        )
        assert_same_frequent(
            loaded.frequent_k_n_match(tie_query, 4, (2, 5)),
            db.frequent_k_n_match(tie_query, 4, (2, 5)),
        )

    def test_round_trip_with_empty_shards(self, tmp_path):
        data = np.arange(12.0).reshape(4, 3)
        db = ShardedMatchDatabase(data, shards=7)
        path = tmp_path / "sparse.npz"
        save_sharded_database(db, path)
        loaded = load_sharded_database(path)
        assert loaded.shard_sizes == db.shard_sizes
        assert_same_match(
            loaded.k_n_match(np.zeros(3), 4, 2),
            db.k_n_match(np.zeros(3), 4, 2),
        )

    def test_load_any_dispatch(self, tmp_path, tie_data):
        flat_path = tmp_path / "flat.npz"
        sharded_path = tmp_path / "sharded.npz"
        save_database(MatchDatabase(tie_data), flat_path)
        save_sharded_database(
            ShardedMatchDatabase(tie_data, shards=3), sharded_path
        )
        assert isinstance(load_any_database(flat_path), MatchDatabase)
        assert isinstance(
            load_any_database(sharded_path), ShardedMatchDatabase
        )

    def test_wrong_loader_fails_loudly(self, tmp_path, tie_data):
        flat_path = tmp_path / "flat.npz"
        sharded_path = tmp_path / "sharded.npz"
        save_database(MatchDatabase(tie_data), flat_path)
        save_sharded_database(
            ShardedMatchDatabase(tie_data, shards=3), sharded_path
        )
        with pytest.raises(StorageError):
            load_database(sharded_path)
        with pytest.raises(StorageError):
            load_sharded_database(flat_path)

    def test_save_type_checks(self, tmp_path, tie_data):
        with pytest.raises(StorageError):
            save_sharded_database(MatchDatabase(tie_data), tmp_path / "x.npz")

    def test_load_any_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, junk=np.ones(3))
        with pytest.raises(StorageError):
            load_any_database(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestShardCLI:
    @pytest.fixture
    def data_file(self, tmp_path, rng):
        path = tmp_path / "data.npy"
        np.save(path, rng.integers(0, 4, size=(80, 5)).astype(np.float64))
        return path

    @pytest.fixture
    def flat_file(self, tmp_path, data_file):
        path = tmp_path / "flat.npz"
        assert main(["build", str(data_file), str(path)]) == 0
        return path

    @pytest.fixture
    def sharded_file(self, tmp_path, data_file):
        path = tmp_path / "sharded.npz"
        status = main(
            [
                "build", str(data_file), str(path),
                "--shards", "4", "--partitioner", "hash",
            ]
        )
        assert status == 0
        return path

    def test_shard_info(self, sharded_file, capsys):
        assert main(["shard-info", str(sharded_file)]) == 0
        out = capsys.readouterr().out
        assert "shards:          4" in out
        assert "partitioner:     hash" in out
        assert "balance" in out

    def test_shard_info_rejects_flat(self, flat_file, capsys):
        assert main(["shard-info", str(flat_file)]) == 2
        assert "flat database" in capsys.readouterr().err

    def test_info_reads_sharded(self, sharded_file, capsys):
        assert main(["info", str(sharded_file)]) == 0
        assert "shards:          4" in capsys.readouterr().out

    def _query_output(self, capsys, *argv):
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_query_identical_across_layouts(
        self, flat_file, sharded_file, capsys
    ):
        # tie-heavy data: pin a canonical-tie-break engine, since the
        # default heap `ad` engine's within-tie order is its own
        base = [
            "--k", "4", "--n", "3", "--query-row", "9",
            "--engine", "block-ad",
        ]
        flat_out = self._query_output(
            capsys, "query", str(flat_file), *base
        )
        stored = self._query_output(
            capsys, "query", str(sharded_file), *base
        )
        resharded = self._query_output(
            capsys, "query", str(flat_file), *base,
            "--shards", "7", "--partitioner", "range",
        )
        assert flat_out == stored == resharded

    def test_batch_identical_across_layouts(
        self, flat_file, sharded_file, capsys
    ):
        base = ["--k", "3", "--n", "2", "--query-rows", "0:12"]
        flat_out = self._query_output(capsys, "batch", str(flat_file), *base)
        stored = self._query_output(capsys, "batch", str(sharded_file), *base)
        resharded = self._query_output(
            capsys, "batch", str(flat_file), *base, "--shards", "3"
        )
        assert flat_out == stored == resharded

    def test_partitioner_requires_shards(self, flat_file, capsys):
        status = main(
            [
                "query", str(flat_file), "--k", "2", "--n", "2",
                "--query-row", "0", "--partitioner", "hash",
            ]
        )
        assert status == 2
        assert "--partitioner requires --shards" in capsys.readouterr().err

    def test_query_metrics_out(self, flat_file, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        status = main(
            [
                "query", str(flat_file), "--k", "3", "--n", "2",
                "--query-row", "1", "--shards", "2",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert status == 0
        import json

        families = json.loads(metrics_path.read_text())
        assert "repro_shard_calls_total" in families


# ----------------------------------------------------------------------
# tier-2: multi-worker x multi-shard exactness sweep
# ----------------------------------------------------------------------


@pytest.mark.tier2
@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("shards", (2, 5, 16))
def test_sweep_workers_shards_exact(rng, workers, shards):
    data = rng.integers(0, 6, size=(400, 10)).astype(np.float64)
    queries = np.vstack(
        [data[3] + 0.25, rng.integers(0, 6, size=(6, 10)).astype(np.float64)]
    )
    flat = MatchDatabase(data)
    for partitioner in ALL_PARTITIONERS:
        db = ShardedMatchDatabase(
            data, shards=shards, partitioner=partitioner, workers=workers
        )
        for engine in CANONICAL_ENGINES:
            sharded = db.k_n_match_batch(queries, 20, 5, engine=engine)
            serial = flat.k_n_match_batch(queries, 20, 5, engine=engine)
            for a, b in zip(sharded, serial):
                assert_same_match(a, b)
        sharded_f = db.frequent_k_n_match_batch(
            queries, 10, (2, 9), engine="block-ad", keep_answer_sets=True
        )
        serial_f = flat.frequent_k_n_match_batch(
            queries, 10, (2, 9), engine="block-ad", keep_answer_sets=True
        )
        for a, b in zip(sharded_f, serial_f):
            assert_same_frequent(a, b)
