"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from conftest import assert_valid_knmatch
from repro.baselines import dominates, skyline
from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.distance import (
    chebyshev_distance,
    dpf_distance,
    match_count_within,
    n_match_difference,
)
from repro.core.naive import NaiveScanEngine
from repro.core.types import rank_by_frequency
from repro.vafile import VAQuantizer

finite = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False, width=32
)


def point_pairs(max_d=10):
    return st.integers(2, max_d).flatmap(
        lambda d: st.tuples(
            arrays(np.float64, d, elements=finite),
            arrays(np.float64, d, elements=finite),
        )
    )


def database_and_query(max_c=60, max_d=6):
    return st.tuples(st.integers(2, max_c), st.integers(1, max_d)).flatmap(
        lambda shape: st.tuples(
            arrays(np.float64, shape, elements=finite),
            arrays(np.float64, shape[1], elements=finite),
        )
    )


class TestNMatchProperties:
    @given(point_pairs())
    def test_monotone_in_n(self, pair):
        p, q = pair
        diffs = [n_match_difference(p, q, n) for n in range(1, len(p) + 1)]
        assert all(a <= b for a, b in zip(diffs, diffs[1:]))

    @given(point_pairs())
    def test_symmetric(self, pair):
        p, q = pair
        for n in (1, len(p)):
            assert n_match_difference(p, q, n) == n_match_difference(q, p, n)

    @given(point_pairs())
    def test_d_match_is_chebyshev(self, pair):
        p, q = pair
        assert n_match_difference(p, q, len(p)) == chebyshev_distance(p, q)

    @given(point_pairs())
    def test_identity(self, pair):
        p, _ = pair
        assert n_match_difference(p, p, len(p)) == 0.0

    @given(point_pairs())
    def test_match_count_duality(self, pair):
        p, q = pair
        for n in range(1, len(p) + 1):
            delta = n_match_difference(p, q, n)
            assert match_count_within(p, q, delta) >= n

    @given(point_pairs())
    def test_dpf_dominates_order_statistic(self, pair):
        """DPF aggregates n diffs, each >= 0 and the largest of them is
        the n-match difference, so DPF(p, q, n) >= n-match difference
        under L1 and bounds it under L2."""
        p, q = pair
        for n in range(1, len(p) + 1):
            assert dpf_distance(p, q, n, p=1.0) >= n_match_difference(p, q, n) - 1e-12


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(database_and_query(), st.integers(1, 8), st.data())
    def test_ad_valid_and_matches_naive_differences(self, workload, k, data):
        database, query = workload
        c, d = database.shape
        k = min(k, c)
        n = data.draw(st.integers(1, d))
        ad = ADEngine(database).k_n_match(query, k, n)
        naive = NaiveScanEngine(database).k_n_match(query, k, n)
        np.testing.assert_allclose(
            sorted(ad.differences), sorted(naive.differences), atol=1e-12
        )
        assert_valid_knmatch(database, query, n, k, ad.ids)

    @settings(max_examples=40, deadline=None)
    @given(database_and_query(), st.integers(1, 8), st.data())
    def test_block_ad_valid(self, workload, k, data):
        database, query = workload
        c, d = database.shape
        k = min(k, c)
        n0 = data.draw(st.integers(1, d))
        n1 = data.draw(st.integers(n0, d))
        result = BlockADEngine(database).frequent_k_n_match(query, k, (n0, n1))
        for n, ids in result.answer_sets.items():
            assert_valid_knmatch(database, query, n, k, ids)

    @settings(max_examples=40, deadline=None)
    @given(database_and_query())
    def test_completion_order_is_sorted(self, workload):
        database, query = workload
        c, d = database.shape
        result = ADEngine(database).k_n_match(query, min(5, c), d)
        assert result.differences == sorted(result.differences)


class TestQuantizerProperties:
    @settings(max_examples=30, deadline=None)
    @given(database_and_query(), st.integers(1, 8))
    def test_bounds_bracket_truth(self, workload, bits):
        database, query = workload
        quantizer = VAQuantizer(database, bits=bits)
        cells = quantizer.encode(database)
        for j in range(database.shape[1]):
            lower, upper = quantizer.difference_bounds(
                j, cells[:, j], float(query[j])
            )
            truth = np.abs(database[:, j] - query[j])
            assert np.all(lower <= truth + 1e-9)
            assert np.all(truth <= upper + 1e-9)


class TestSkylineProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.integers(1, 4)),
            elements=finite,
        )
    )
    def test_skyline_definition(self, database):
        members = set(skyline(database))
        assert members  # never empty
        for i in range(database.shape[0]):
            dominated = any(
                dominates(database[j], database[i])
                for j in range(database.shape[0])
                if j != i
            )
            assert (i in members) == (not dominated)


class TestRankingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.integers(1, 6),
            st.lists(st.integers(0, 20), max_size=8),
            max_size=5,
        ),
        st.integers(1, 10),
    )
    def test_rank_by_frequency_invariants(self, sets, k):
        ids, freqs = rank_by_frequency(sets, k)
        assert len(ids) == len(freqs) <= k
        assert len(set(ids)) == len(ids)
        assert freqs == sorted(freqs, reverse=True)
        # reported frequencies are true counts
        for pid, freq in zip(ids, freqs):
            true = sum(pid in members for members in sets.values())
            assert freq == true
