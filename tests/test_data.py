"""Dataset generators: shapes, ranges, determinism, planted structure."""

import numpy as np
import pytest

from repro.baselines import KnnEngine
from repro.core.engine import MatchDatabase
from repro.data import (
    ASPECTS,
    DATASET_PROFILES,
    PARTIAL_MATCH_IMAGE,
    QUERY_IMAGE,
    SCALED_VARIANT_IMAGE,
    TEXTURE_CARDINALITY,
    TEXTURE_DIMENSIONALITY,
    UCI_SPECS,
    float32_exact,
    gaussian_clusters,
    make_all_standins,
    make_coil_like,
    make_texture_like,
    make_uci_standin,
    normalize_unit,
    perturbed_queries,
    sample_queries,
    skewed_dataset,
    uniform_dataset,
)
from repro.errors import ValidationError


class TestNormalize:
    def test_unit_range(self, rng):
        data = rng.normal(5.0, 3.0, (100, 4))
        normalized = normalize_unit(data)
        assert normalized.min() == pytest.approx(0.0)
        assert normalized.max() == pytest.approx(1.0)

    def test_constant_dimension_maps_to_half(self):
        data = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        normalized = normalize_unit(data)
        assert np.all(normalized[:, 0] == 0.5)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            normalize_unit(np.arange(5.0))

    def test_float32_exact_round_trips(self, rng):
        data = float32_exact(rng.random((50, 3)))
        np.testing.assert_array_equal(
            data, data.astype(np.float32).astype(np.float64)
        )


class TestSynthetic:
    def test_uniform_shape_and_range(self):
        data = uniform_dataset(500, 7, seed=1)
        assert data.shape == (500, 7)
        assert data.min() >= 0 and data.max() <= 1

    def test_uniform_deterministic(self):
        np.testing.assert_array_equal(
            uniform_dataset(100, 4, seed=9), uniform_dataset(100, 4, seed=9)
        )
        assert not np.array_equal(
            uniform_dataset(100, 4, seed=9), uniform_dataset(100, 4, seed=10)
        )

    def test_clusters_labels(self):
        data, labels = gaussian_clusters(300, 5, clusters=4, seed=2)
        assert data.shape == (300, 5)
        assert labels.shape == (300,)
        assert set(labels.tolist()) <= set(range(4))

    def test_skewed_is_skewed(self):
        data = skewed_dataset(5000, 3, seed=3, shape=0.5)
        # heavy right skew after normalisation: mean well below median+
        for j in range(3):
            assert np.mean(data[:, j]) < 0.35

    def test_sample_queries_come_from_data(self):
        data = uniform_dataset(50, 3, seed=4)
        queries = sample_queries(data, 10, seed=5)
        for q in queries:
            assert any(np.array_equal(q, row) for row in data)

    def test_perturbed_queries_stay_in_unit_cube(self):
        data = uniform_dataset(50, 3, seed=6)
        queries = perturbed_queries(data, 10, noise=0.05, seed=7)
        assert queries.min() >= 0 and queries.max() <= 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            uniform_dataset(0, 3)
        with pytest.raises(ValidationError):
            gaussian_clusters(10, 3, clusters=0)
        with pytest.raises(ValidationError):
            skewed_dataset(10, 3, shape=-1)
        with pytest.raises(ValidationError):
            sample_queries(uniform_dataset(5, 2), 0)


class TestUCIStandins:
    def test_specs_respected(self):
        for name, (c, d, classes) in UCI_SPECS.items():
            dataset = make_uci_standin(name)
            assert dataset.cardinality == c
            assert dataset.dimensionality == d
            assert dataset.classes == classes
            assert set(np.unique(dataset.labels)) <= set(range(classes))
            assert dataset.data.min() >= 0 and dataset.data.max() <= 1

    def test_profiles_cover_all_datasets(self):
        assert set(DATASET_PROFILES) == set(UCI_SPECS)

    def test_deterministic_across_processes(self):
        a = make_uci_standin("glass", seed=5)
        b = make_uci_standin("glass", seed=5)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            make_uci_standin("mnist")

    def test_bad_rates_rejected(self):
        with pytest.raises(ValidationError):
            make_uci_standin("iris", corruption_rate=1.0)
        with pytest.raises(ValidationError):
            make_uci_standin("iris", irrelevant_fraction=-0.1)

    def test_make_all(self):
        datasets = make_all_standins()
        assert set(datasets) == set(UCI_SPECS)

    def test_class_structure_learnable(self):
        """Same-class points must be genuinely closer: a 1-NN (excluding
        self) should beat chance comfortably."""
        dataset = make_uci_standin("wdbc")
        rng = np.random.default_rng(0)
        picks = rng.choice(dataset.cardinality, 40, replace=False)
        knn = KnnEngine(dataset.data)
        hits = 0
        for i in picks:
            ids = knn.top_k(dataset.data[i], 2).ids
            neighbour = ids[1] if ids[0] == i else ids[0]
            hits += dataset.labels[neighbour] == dataset.labels[i]
        assert hits / 40 > 0.6


class TestCoilLike:
    def test_shape(self):
        coil = make_coil_like()
        assert coil.data.shape == (100, 54)
        assert coil.cardinality == 100
        assert coil.dimensionality == 54

    def test_aspect_blocks_cover_all_dimensions(self):
        spans = sorted(ASPECTS.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == 54
        for (prev_lo, prev_hi), (lo, hi) in zip(spans, spans[1:]):
            assert prev_hi == lo

    def test_partial_match_planted(self):
        coil = make_coil_like()
        query = coil.query()
        lo, hi = ASPECTS["texture"]
        assert np.abs(coil.data[PARTIAL_MATCH_IMAGE, lo:hi] - query[lo:hi]).max() < 0.01
        lo, hi = ASPECTS["color"]
        assert np.abs(coil.data[PARTIAL_MATCH_IMAGE, lo:hi] - query[lo:hi]).mean() > 0.3

    def test_partial_match_invisible_to_knn(self):
        coil = make_coil_like()
        knn = KnnEngine(coil.data).top_k(coil.query(), 20)
        assert PARTIAL_MATCH_IMAGE not in knn.ids

    def test_partial_match_found_by_knmatch(self):
        coil = make_coil_like()
        db = MatchDatabase(coil.data)
        hits = sum(
            PARTIAL_MATCH_IMAGE in db.k_n_match(coil.query(), 4, n).ids
            for n in range(5, 40, 5)
        )
        assert hits >= 5

    def test_scaled_variant_appears_sometimes(self):
        coil = make_coil_like()
        db = MatchDatabase(coil.data)
        hits = sum(
            SCALED_VARIANT_IMAGE in db.k_n_match(coil.query(), 4, n).ids
            for n in range(5, 55, 5)
        )
        assert 1 <= hits <= 8

    def test_query_is_image_42(self):
        coil = make_coil_like()
        np.testing.assert_array_equal(coil.query(), coil.data[QUERY_IMAGE])


class TestTextureLike:
    def test_default_shape_constants(self):
        assert TEXTURE_CARDINALITY == 68040
        assert TEXTURE_DIMENSIONALITY == 16

    def test_small_instance(self):
        data = make_texture_like(cardinality=2000, seed=1)
        assert data.shape == (2000, 16)
        assert data.min() >= 0 and data.max() <= 1

    def test_heavily_skewed(self):
        data = make_texture_like(cardinality=5000, seed=2)
        from scipy import stats as scipy_stats

        skews = scipy_stats.skew(data, axis=0)
        assert np.all(skews > 0.5)  # strong right skew in every dimension

    def test_correlated_dimensions(self):
        data = make_texture_like(cardinality=5000, seed=3)
        corr = np.corrcoef(data.T)
        off_diagonal = corr[np.triu_indices(16, 1)]
        assert off_diagonal.mean() > 0.3

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_texture_like(cardinality=0)
        with pytest.raises(ValidationError):
            make_texture_like(cardinality=10, latent_factors=0)
        with pytest.raises(ValidationError):
            make_texture_like(cardinality=10, noise_weight=-0.5)
