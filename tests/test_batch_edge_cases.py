"""Degenerate batch shapes: 0, 1, and fewer-queries-than-workers.

Regression tests for the batch sweep: every engine, on every dispatch
path (in-line, native lock-step, thread pool), must handle empty and
tiny batches and still validate k/n exactly like a non-empty batch
would.
"""

import numpy as np
import pytest

from repro.core.engine import ENGINE_NAMES, MatchDatabase
from repro.errors import ValidationError
from repro.parallel import ParallelBatchExecutor

WORKERS = 4


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(11)
    return MatchDatabase(rng.random((300, 6)))


def _batches(db, count):
    return db.data[:count].copy()


class TestEmptyBatch:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("parallel", [False, True])
    def test_k_n_match_empty(self, db, engine, parallel):
        results = db.k_n_match_batch(
            _batches(db, 0), 3, 4, engine=engine, parallel=parallel,
            workers=WORKERS if parallel else None,
        )
        assert results == []

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("parallel", [False, True])
    def test_frequent_empty(self, db, engine, parallel):
        results = db.frequent_k_n_match_batch(
            _batches(db, 0), 3, (2, 5), engine=engine, parallel=parallel,
            workers=WORKERS if parallel else None,
        )
        assert results == []

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_empty_batch_still_validates_k(self, db, engine):
        """An empty batch with bad k/n must raise, not silently return [].

        Before the sweep, engines without a native batch path skipped
        validation entirely when the per-query loop had zero iterations.
        """
        empty = _batches(db, 0)
        with pytest.raises(ValidationError):
            db.k_n_match_batch(empty, 0, 4, engine=engine)
        with pytest.raises(ValidationError):
            db.k_n_match_batch(empty, 3, 99, engine=engine)
        with pytest.raises(ValidationError):
            db.frequent_k_n_match_batch(empty, 0, (2, 5), engine=engine)
        with pytest.raises(ValidationError):
            db.frequent_k_n_match_batch(empty, 3, (5, 2), engine=engine)

    def test_empty_batch_wrong_width_raises(self, db):
        with pytest.raises(ValidationError):
            db.k_n_match_batch(np.empty((0, 99)), 3, 4)


class TestTinyBatches:
    """1-query and (workers-1)-query batches agree with the serial oracle."""

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("count", [1, WORKERS - 1])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_k_n_match_matches_single_calls(self, db, engine, count, parallel):
        queries = _batches(db, count)
        results = db.k_n_match_batch(
            queries, 3, 4, engine=engine, parallel=parallel,
            workers=WORKERS if parallel else None,
        )
        assert len(results) == count
        for query, result in zip(queries, results):
            reference = db.k_n_match(query, 3, 4, engine="ad")
            assert result.ids == reference.ids
            assert result.differences == pytest.approx(reference.differences)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("count", [1, WORKERS - 1])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_frequent_matches_single_calls(self, db, engine, count, parallel):
        queries = _batches(db, count)
        results = db.frequent_k_n_match_batch(
            queries, 3, (2, 5), engine=engine, parallel=parallel,
            workers=WORKERS if parallel else None,
        )
        assert len(results) == count
        for query, result in zip(queries, results):
            reference = db.frequent_k_n_match(query, 3, (2, 5), engine="ad")
            assert result.ids == reference.ids
            assert result.frequencies == reference.frequencies


class TestExecutorDirectly:
    """The executor itself (not via the facade) on degenerate input."""

    def test_empty_batch(self, db):
        executor = ParallelBatchExecutor(db.engine("block-ad"), workers=3)
        assert executor.k_n_match_batch(_batches(db, 0), 2, 3) == []

    def test_empty_batch_bad_k_raises(self, db):
        executor = ParallelBatchExecutor(db.engine("block-ad"), workers=3)
        with pytest.raises(ValidationError):
            executor.k_n_match_batch(_batches(db, 0), 0, 3)

    def test_more_workers_than_queries(self, db):
        executor = ParallelBatchExecutor(db.engine("block-ad"), workers=8)
        queries = _batches(db, 2)
        results = executor.k_n_match_batch(queries, 2, 3)
        assert len(results) == 2
        for query, result in zip(queries, results):
            assert result.ids == db.k_n_match(query, 2, 3).ids
