"""Batch query APIs on MatchDatabase."""

import numpy as np
import pytest

from repro import MatchDatabase
from repro.errors import ValidationError


@pytest.fixture
def db(small_data):
    return MatchDatabase(small_data)


@pytest.fixture
def queries(small_data):
    return small_data[:6] + 1e-3


class TestKNMatchBatch:
    def test_matches_individual_queries(self, db, queries):
        batch = db.k_n_match_batch(queries, 4, 5)
        assert len(batch) == 6
        for query, result in zip(queries, batch):
            single = db.k_n_match(query, 4, 5)
            assert result.ids == single.ids
            assert result.differences == single.differences

    def test_engine_override(self, db, queries):
        batch = db.k_n_match_batch(queries, 3, 2, engine="naive")
        reference = db.k_n_match_batch(queries, 3, 2, engine="block-ad")
        for a, b in zip(batch, reference):
            assert a.ids == b.ids

    def test_rejects_1d_queries(self, db):
        with pytest.raises(ValidationError):
            db.k_n_match_batch(np.zeros(8), 1, 1)

    def test_empty_batch(self, db):
        assert db.k_n_match_batch(np.empty((0, 8)), 1, 1) == []


class TestFrequentBatch:
    def test_matches_individual_queries(self, db, queries):
        batch = db.frequent_k_n_match_batch(queries, 5, (2, 6))
        for query, result in zip(queries, batch):
            single = db.frequent_k_n_match(query, 5, (2, 6))
            assert result.ids == single.ids
            assert result.frequencies == single.frequencies

    def test_default_range_is_full(self, db, queries):
        batch = db.frequent_k_n_match_batch(queries[:2], 3)
        assert all(result.n_range == (1, 8) for result in batch)

    def test_answer_sets_dropped_by_default(self, db, queries):
        batch = db.frequent_k_n_match_batch(queries[:2], 3, (2, 4))
        assert all(result.answer_sets is None for result in batch)
        kept = db.frequent_k_n_match_batch(
            queries[:2], 3, (2, 4), keep_answer_sets=True
        )
        assert all(result.answer_sets is not None for result in kept)

    def test_rejects_1d_queries(self, db):
        with pytest.raises(ValidationError):
            db.frequent_k_n_match_batch(np.zeros(8), 1)
