"""repro.approx: engines, certificates, facade wiring, anytime engine.

The load-bearing invariants: certificates are *sound* (measured recall
is never below ``certified_recall``, tie-aware), an unbudgeted or
fully-budgeted approx query is **byte-identical** to exact ``block-ad``
(the canonical-tie-break engine — the heap ``ad`` engine's within-tie
order is its own), and every validation error carries the canonical
message from :mod:`repro.approx.params` unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import reference_differences
from repro.approx import (
    APPROX_ENGINE_NAMES,
    DEFAULT_APPROX_ENGINE,
    ApproxResult,
    BudgetADEngine,
    PivotSketchEngine,
    multiplier_from_target_recall,
    validate_approx_params,
)
from repro.core.engine import MatchDatabase
from repro.errors import ValidationError
from repro.eval import certificate_holds, tie_aware_match_recall
from repro.shard import ShardedMatchDatabase


@pytest.fixture
def tie_data(rng) -> np.ndarray:
    """120 x 6 points on a coarse grid — ties everywhere by design."""
    return rng.integers(0, 4, size=(120, 6)).astype(np.float64)


def exact_answer(data, query, k, n):
    return MatchDatabase(data).k_n_match(query, k, n, engine="block-ad")


def assert_certificate_sound(data, query, n, result: ApproxResult):
    """Measured (tie-aware) recall must dominate the certificate."""
    exact = exact_answer(data, query, result.k, n)
    assert certificate_holds(
        result.certified_recall, result.differences, exact.differences
    )
    # and the differences the engine reports are the true ones
    truth = reference_differences(data, query, n)
    for pid, diff in result:
        assert diff == pytest.approx(truth[pid], abs=1e-12)


# ----------------------------------------------------------------------
# parameter validation (canonical messages)
# ----------------------------------------------------------------------
class TestParams:
    def test_unknown_mode(self):
        with pytest.raises(ValidationError, match="unknown mode 'fast'"):
            validate_approx_params("fast", None, None, None)

    def test_extras_require_approx(self):
        with pytest.raises(
            ValidationError, match="require mode='approx'"
        ):
            validate_approx_params(None, 100, None, None)
        with pytest.raises(
            ValidationError, match="require mode='approx'"
        ):
            validate_approx_params("exact", None, 0.9, None)

    def test_budget_and_target_conflict(self):
        with pytest.raises(
            ValidationError, match="mutually exclusive; pass one"
        ):
            validate_approx_params("approx", 100, 0.9, None)

    def test_ranges(self):
        with pytest.raises(ValidationError, match="budget must be >= 0"):
            validate_approx_params("approx", -1, None, None)
        with pytest.raises(ValidationError, match=r"within \[0.0, 1.0\]"):
            validate_approx_params("approx", None, 1.5, None)
        with pytest.raises(ValidationError, match="must be >= 1"):
            validate_approx_params("approx", None, None, 0)

    def test_multiplier_mapping_monotone(self):
        targets = [0.0, 0.5, 0.8, 0.9, 0.95, 0.99]
        mults = [multiplier_from_target_recall(t) for t in targets]
        assert mults == sorted(mults)
        assert mults[0] == 4 and mults[-1] == 64
        assert multiplier_from_target_recall(1.0) == 0  # exact sentinel


# ----------------------------------------------------------------------
# budget-ad engine
# ----------------------------------------------------------------------
class TestBudgetAD:
    def test_unbudgeted_is_exact_block_ad(self, small_data, small_query):
        engine = BudgetADEngine(small_data)
        result = engine.k_n_match(small_query, 10, 5)
        exact = exact_answer(small_data, small_query, 10, 5)
        assert result.exact
        assert result.certified_recall == 1.0
        assert result.certified_count == 10
        assert result.ids == exact.ids
        assert result.differences == exact.differences

    def test_full_budget_delegates(self, small_data, small_query):
        engine = BudgetADEngine(small_data)
        total = 300 * 8
        result = engine.k_n_match(small_query, 10, 5, budget=total)
        assert result.exact and result.budget == total

    def test_target_recall_one_is_exact(self, small_data, small_query):
        engine = BudgetADEngine(small_data)
        result = engine.k_n_match(small_query, 6, 4, target_recall=1.0)
        exact = exact_answer(small_data, small_query, 6, 4)
        assert result.exact
        assert result.ids == exact.ids

    def test_zero_budget(self, small_data, small_query):
        result = BudgetADEngine(small_data).k_n_match(
            small_query, 5, 3, budget=0
        )
        assert result.certified_recall == 0.0
        assert result.certified_count == 0
        assert not result.exact

    def test_certificate_sound_across_budgets(self, tie_data, rng):
        engine = BudgetADEngine(tie_data)
        for budget in (0, 13, 60, 200, 500, 719):
            for row in (0, 17, 55):
                query = tie_data[row]
                result = engine.k_n_match(query, 8, 4, budget=budget)
                assert_certificate_sound(tie_data, query, 4, result)
                assert len(result.ids) == len(set(result.ids))

    def test_certified_ids_truly_in_exact_answer(self, tie_data):
        """Every id the certificate covers belongs to a tie-aware top-k."""
        query = tie_data[3]
        result = BudgetADEngine(tie_data).k_n_match(query, 8, 4, budget=150)
        exact = exact_answer(tie_data, query, 8, 4)
        threshold = max(exact.differences)
        certified = sorted(zip(result.differences, result.ids))[
            : result.certified_count
        ]
        for diff, _pid in certified:
            assert diff <= threshold + 1e-12

    def test_budget_and_target_conflict(self, small_data, small_query):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            BudgetADEngine(small_data).k_n_match(
                small_query, 5, 3, budget=10, target_recall=0.5
            )

    def test_differences_ascending_canonical(self, tie_data):
        result = BudgetADEngine(tie_data).k_n_match(
            tie_data[0], 10, 3, budget=200
        )
        pairs = list(zip(result.differences, result.ids))
        assert pairs == sorted(pairs)


# ----------------------------------------------------------------------
# pivot-sketch engine
# ----------------------------------------------------------------------
class TestPivotSketch:
    def test_returns_exact_differences(self, small_data, small_query):
        engine = PivotSketchEngine(small_data)
        result = engine.k_n_match(small_query, 10, 5, candidate_multiplier=8)
        assert len(result.ids) == 10
        truth = reference_differences(small_data, small_query, 5)
        for pid, diff in result:
            assert diff == pytest.approx(truth[pid], abs=1e-12)

    def test_certificate_is_conservative(self, small_data, small_query):
        """The sketch cannot certify short of a full re-rank."""
        result = PivotSketchEngine(small_data).k_n_match(
            small_query, 10, 5, candidate_multiplier=4
        )
        assert not result.exact
        assert result.certified_recall == 0.0
        assert_certificate_sound(small_data, small_query, 5, result)

    def test_target_recall_one_is_exact(self, small_data, small_query):
        result = PivotSketchEngine(small_data).k_n_match(
            small_query, 10, 5, target_recall=1.0
        )
        exact = exact_answer(small_data, small_query, 10, 5)
        assert result.exact
        assert result.ids == exact.ids
        assert result.differences == exact.differences

    def test_more_candidates_no_worse(self, small_data, small_query):
        engine = PivotSketchEngine(small_data)
        exact = exact_answer(small_data, small_query, 10, 5)
        recalls = []
        for multiplier in (2, 8, 29):
            result = engine.k_n_match(
                small_query, 10, 5, candidate_multiplier=multiplier
            )
            recalls.append(
                tie_aware_match_recall(result.differences, exact.differences)
            )
        assert recalls == sorted(recalls)
        assert recalls[-1] >= 0.9  # 29k candidates out of 300: near-exact

    def test_index_reused_and_sized(self, small_data, small_query):
        engine = PivotSketchEngine(small_data)
        first = engine.index
        engine.k_n_match(small_query, 5, 4)
        assert engine.index is first
        assert first.nbytes > 0
        assert first.pivot_count > 0

    def test_sketch_compresses_wide_data(self, rng):
        """On wide rows the rank matrix undercuts the raw float64 data."""
        wide = rng.random((200, 64))
        index = PivotSketchEngine(wide).index
        assert index.nbytes < wide.nbytes


# ----------------------------------------------------------------------
# flat facade wiring
# ----------------------------------------------------------------------
class TestFacade:
    def test_mode_approx_default_engine(self, small_data, small_query):
        db = MatchDatabase(small_data)
        result = db.k_n_match(small_query, 8, 5, mode="approx")
        assert isinstance(result, ApproxResult)
        assert result.engine == DEFAULT_APPROX_ENGINE
        assert_certificate_sound(small_data, small_query, 5, result)

    @pytest.mark.parametrize("name", APPROX_ENGINE_NAMES)
    def test_named_engines(self, small_data, small_query, name):
        db = MatchDatabase(small_data)
        result = db.k_n_match(
            small_query, 8, 5, mode="approx", engine=name, target_recall=0.8
        )
        assert result.engine == name
        assert_certificate_sound(small_data, small_query, 5, result)

    def test_exact_mode_unchanged(self, small_data, small_query):
        db = MatchDatabase(small_data)
        plain = db.k_n_match(small_query, 8, 5, engine="block-ad")
        explicit = db.k_n_match(
            small_query, 8, 5, engine="block-ad", mode="exact"
        )
        assert plain.ids == explicit.ids
        assert plain.differences == explicit.differences
        assert not isinstance(explicit, ApproxResult)

    def test_unbudgeted_approx_matches_block_ad(self, tie_data):
        db = MatchDatabase(tie_data)
        query = tie_data[7]
        exact = db.k_n_match(query, 9, 4, engine="block-ad")
        approx = db.k_n_match(query, 9, 4, mode="approx", target_recall=1.0)
        assert approx.exact
        assert approx.ids == exact.ids
        assert approx.differences == exact.differences

    def test_extras_without_mode_rejected(self, small_data, small_query):
        db = MatchDatabase(small_data)
        with pytest.raises(ValidationError, match="require mode='approx'"):
            db.k_n_match(small_query, 5, 3, budget=10)
        with pytest.raises(ValidationError, match="mutually exclusive"):
            db.k_n_match(
                small_query, 5, 3, mode="approx", budget=10, target_recall=0.5
            )

    def test_frequent_rejects_approx(self, small_data, small_query):
        db = MatchDatabase(small_data)
        with pytest.raises(
            ValidationError, match="does not support frequent_k_n_match"
        ):
            db.frequent_k_n_match(small_query, 5, (1, 4), mode="approx")
        # mode="exact" is accepted (and means what it always meant)
        result = db.frequent_k_n_match(small_query, 5, (1, 4), mode="exact")
        assert len(result.ids) == 5

    def test_batch_approx(self, small_data):
        db = MatchDatabase(small_data)
        queries = small_data[:6]
        results = db.k_n_match_batch(
            queries, 5, 4, mode="approx", target_recall=0.9
        )
        assert len(results) == 6
        for query, result in zip(queries, results):
            assert isinstance(result, ApproxResult)
            assert_certificate_sound(small_data, query, 4, result)

    def test_metrics_observe_certified_recall(self, small_data, small_query):
        from repro.obs import MetricsRegistry, render_prometheus

        db = MatchDatabase(small_data, metrics=MetricsRegistry())
        db.k_n_match(small_query, 5, 4, mode="approx", budget=300)
        text = render_prometheus(db.metrics)
        assert "repro_approx_certified_recall" in text

    def test_spans_record_phases(self, small_data, small_query):
        from repro.obs import SpanCollector

        collector = SpanCollector()
        db = MatchDatabase(small_data, spans=collector)
        db.k_n_match(small_query, 5, 4, mode="approx", budget=300)

        def walk(span):
            yield span.name
            for child in span.children:
                yield from walk(child)

        names = [
            name for root in collector.traces() for name in walk(root)
        ]
        assert "approx_filter" in names


# ----------------------------------------------------------------------
# anytime engine through the facade (satellite: engine="anytime")
# ----------------------------------------------------------------------
class TestAnytimeFacade:
    def test_prefix_of_exact_ad(self, small_data, small_query):
        db = MatchDatabase(small_data)
        exact = db.k_n_match(small_query, 12, 5, engine="ad")
        partial = db.k_n_match(
            small_query, 12, 5, engine="anytime", attribute_budget=400
        )
        assert not partial.exact
        assert partial.ids == list(exact.ids)[: len(partial.ids)]

    def test_budget_implies_anytime(self, small_data, small_query):
        db = MatchDatabase(small_data)
        result = db.k_n_match(small_query, 5, 3, attribute_budget=0)
        assert result.ids == []
        assert result.unseen_lower_bound is not None

    def test_unbudgeted_anytime_is_exact(self, small_data, small_query):
        db = MatchDatabase(small_data)
        exact = db.k_n_match(small_query, 7, 5, engine="ad")
        full = db.k_n_match(small_query, 7, 5, engine="anytime")
        assert full.exact
        assert full.ids == list(exact.ids)

    def test_anytime_rejects_approx_knobs(self, small_data, small_query):
        db = MatchDatabase(small_data)
        with pytest.raises(ValidationError, match="takes attribute_budget="):
            db.k_n_match(
                small_query, 5, 3, engine="anytime", mode="approx"
            )
        with pytest.raises(
            ValidationError, match="requires engine='anytime'"
        ):
            db.k_n_match(
                small_query, 5, 3, engine="block-ad", attribute_budget=10
            )

    def test_anytime_frequent_rejected(self, small_data, small_query):
        db = MatchDatabase(small_data)
        with pytest.raises(
            ValidationError, match="supports k_n_match only"
        ):
            db.frequent_k_n_match(small_query, 5, (1, 4), engine="anytime")


# ----------------------------------------------------------------------
# sharded facade
# ----------------------------------------------------------------------
class TestSharded:
    @pytest.mark.parametrize("shards", [2, 5])
    def test_certificate_sound(self, tie_data, shards):
        db = ShardedMatchDatabase(tie_data, shards=shards)
        try:
            for budget in (0, 40, 200, 700, None):
                for row in (0, 33):
                    query = tie_data[row]
                    kwargs = (
                        {"budget": budget}
                        if budget is not None
                        else {"target_recall": 1.0}
                    )
                    result = db.k_n_match(
                        query, 8, 4, mode="approx", **kwargs
                    )
                    assert_certificate_sound(tie_data, query, 4, result)
        finally:
            db.close()

    def test_unbudgeted_matches_block_ad(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=3)
        try:
            query = tie_data[11]
            exact = MatchDatabase(tie_data).k_n_match(
                query, 10, 3, engine="block-ad"
            )
            approx = db.k_n_match(query, 10, 3, mode="approx", target_recall=1.0)
            assert approx.exact
            assert approx.ids == exact.ids
            assert approx.differences == exact.differences
        finally:
            db.close()

    def test_budget_split_sums_to_budget(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=4)
        try:
            for budget in (0, 1, 7, 100, 719):
                shares = db._approx_shard_budgets(budget)
                assert sum(shares) == budget
                assert all(share >= 0 for share in shares)
        finally:
            db.close()

    def test_merged_certificate_is_weakest(self, tie_data):
        """The merged bound cannot certify more than the weakest shard
        allows: certified ids all sit at or below the global bound."""
        db = ShardedMatchDatabase(tie_data, shards=3)
        try:
            result = db.k_n_match(tie_data[0], 8, 4, mode="approx", budget=120)
            if result.unseen_lower_bound is not None:
                certified = sorted(result.differences)[: result.certified_count]
                for diff in certified:
                    assert diff <= result.unseen_lower_bound + 1e-12
        finally:
            db.close()

    def test_batch_approx(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=3)
        try:
            queries = tie_data[:4]
            results = db.k_n_match_batch(
                queries, 6, 4, mode="approx", budget=240
            )
            assert len(results) == 4
            for query, result in zip(queries, results):
                assert_certificate_sound(tie_data, query, 4, result)
        finally:
            db.close()

    def test_frequent_rejects_approx(self, tie_data):
        db = ShardedMatchDatabase(tie_data, shards=2)
        try:
            with pytest.raises(
                ValidationError, match="does not support frequent_k_n_match"
            ):
                db.frequent_k_n_match(tie_data[0], 5, (1, 4), mode="approx")
        finally:
            db.close()


# ----------------------------------------------------------------------
# dynamic facade has no approximate path
# ----------------------------------------------------------------------
class TestDynamicUnsupported:
    def test_no_mode_parameter(self, small_data):
        import inspect

        from repro.core.dynamic import DynamicMatchDatabase

        db = DynamicMatchDatabase(small_data)
        assert "mode" not in inspect.signature(db.k_n_match).parameters
