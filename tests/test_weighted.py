"""Weighted k-n-match: scaling equivalence and validation."""

import numpy as np
import pytest

from repro import MatchDatabase, WeightedMatchDatabase
from repro.errors import ValidationError


class TestConstruction:
    def test_basic(self, small_data):
        db = WeightedMatchDatabase(small_data, np.ones(8))
        assert db.cardinality == 300
        assert db.dimensionality == 8
        assert len(db) == 300
        np.testing.assert_array_equal(db.data, small_data)

    def test_weight_validation(self, small_data):
        with pytest.raises(ValidationError):
            WeightedMatchDatabase(small_data, np.ones(7))
        with pytest.raises(ValidationError):
            WeightedMatchDatabase(small_data, np.zeros(8))
        with pytest.raises(ValidationError):
            WeightedMatchDatabase(small_data, -np.ones(8))
        with pytest.raises(ValidationError):
            WeightedMatchDatabase(small_data, np.full(8, np.inf))
        with pytest.raises(ValidationError):
            WeightedMatchDatabase(small_data, np.ones((8, 1)))


class TestEquivalence:
    def test_unit_weights_match_plain_database(self, small_data, small_query):
        weighted = WeightedMatchDatabase(small_data, np.ones(8))
        plain = MatchDatabase(small_data)
        w = weighted.k_n_match(small_query, 7, 4)
        p = plain.k_n_match(small_query, 7, 4)
        assert w.ids == p.ids
        np.testing.assert_allclose(w.differences, p.differences, atol=1e-12)

    def test_uniform_scaling_preserves_answers(self, small_data, small_query):
        """Scaling every weight by the same factor cannot change ids."""
        base = WeightedMatchDatabase(small_data, np.full(8, 1.0))
        scaled = WeightedMatchDatabase(small_data, np.full(8, 3.5))
        b = base.frequent_k_n_match(small_query, 6, (2, 6))
        s = scaled.frequent_k_n_match(small_query, 6, (2, 6))
        assert b.ids == s.ids

    def test_matches_manual_weighted_oracle(self, small_data, small_query, rng):
        weights = rng.uniform(0.5, 3.0, 8)
        db = WeightedMatchDatabase(small_data, weights)
        result = db.k_n_match(small_query, 9, 5)
        deltas = np.abs(small_data - small_query) * weights
        expected_diffs = np.partition(deltas, 4, axis=1)[:, 4]
        order = np.lexsort((np.arange(300), expected_diffs))[:9]
        assert sorted(result.ids) == sorted(int(i) for i in order)
        np.testing.assert_allclose(
            sorted(result.differences), sorted(expected_diffs[order]), atol=1e-12
        )

    def test_all_engines_agree(self, small_data, small_query, rng):
        weights = rng.uniform(0.5, 2.0, 8)
        db = WeightedMatchDatabase(small_data, weights)
        results = [
            db.k_n_match(small_query, 5, 3, engine=name)
            for name in ("ad", "block-ad", "naive")
        ]
        assert results[0].ids == results[1].ids == results[2].ids


class TestSemantics:
    def test_heavy_weight_dominates_full_match(self):
        """With n = d the max weighted difference governs, so a huge
        weight on dimension 0 makes the ranking follow dimension 0."""
        data = np.array([[0.10, 0.9], [0.20, 0.5], [0.11, 0.0]])
        query = np.array([0.10, 0.45])
        db = WeightedMatchDatabase(data, [1000.0, 1.0])
        result = db.k_n_match(query, k=3, n=2)
        assert result.ids == [0, 2, 1]  # ordered purely by dim 0

    def test_downweighting_mutes_noisy_dimension(self):
        """Down-weighting the paper's '100' outlier dimension makes even
        plain d-match sensible."""
        data = np.array(
            [
                [1.1, 100.0, 1.2],
                [20.0, 20.0, 20.0],
            ]
        )
        query = np.array([1.0, 1.0, 1.0])
        fair = WeightedMatchDatabase(data, [1.0, 1.0, 1.0])
        muted = WeightedMatchDatabase(data, [1.0, 0.001, 1.0])
        assert fair.k_n_match(query, 1, 3).ids == [1]  # outlier dominates
        assert muted.k_n_match(query, 1, 3).ids == [0]  # real match wins
