"""Unit tests for the repro.obs metrics layer.

Covers the registry arithmetic, histogram bucket-edge semantics, the
fail-fast registration rules, both exporters (against a golden output),
and — as a tier-2 test — exact counter totals under a threaded
executor.
"""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import (
    DEFAULT_COST_BUCKETS,
    MetricsRegistry,
    registry_to_dict,
    render_json,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total").labels()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total").labels()
        with pytest.raises(ValidationError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        family = MetricsRegistry().counter("c_total")
        family.labels(engine="ad").inc(5)
        family.labels(engine="naive-scan").inc(7)
        assert family.labels(engine="ad").value == 5
        assert family.labels(engine="naive-scan").value == 7

    def test_label_order_is_irrelevant(self):
        family = MetricsRegistry().counter("c_total")
        family.labels(a="1", b="2").inc()
        family.labels(b="2", a="1").inc()
        assert family.labels(a="1", b="2").value == 2

    def test_rejects_bad_label_names_and_values(self):
        family = MetricsRegistry().counter("c_total")
        with pytest.raises(ValidationError):
            family.labels(**{"bad-name": "x"})
        with pytest.raises(ValidationError):
            family.labels(engine=3)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g").labels()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_bucket_edges_use_le_semantics(self):
        histogram = (
            MetricsRegistry()
            .histogram("h", buckets=(1.0, 10.0))
            .labels()
        )
        # exactly on a bound -> that bucket (le semantics), just above
        # -> the next, above the last finite bound -> +Inf only
        histogram.observe(1.0)
        histogram.observe(1.0000001)
        histogram.observe(10.0)
        histogram.observe(11.0)
        assert histogram.cumulative_counts() == [1, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(23.0000001)

    def test_observation_below_first_bound(self):
        histogram = MetricsRegistry().histogram("h", buckets=(5.0,)).labels()
        histogram.observe(0.0)
        histogram.observe(-3.0)
        assert histogram.cumulative_counts() == [2, 2]

    def test_rejects_nan(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,)).labels()
        with pytest.raises(ValidationError):
            histogram.observe(float("nan"))

    def test_inf_lands_in_overflow(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,)).labels()
        histogram.observe(float("inf"))
        assert histogram.cumulative_counts() == [0, 1]

    def test_default_cost_buckets_cover_powers_of_four(self):
        histogram = (
            MetricsRegistry()
            .histogram("h", buckets=DEFAULT_COST_BUCKETS)
            .labels()
        )
        for value in DEFAULT_COST_BUCKETS:
            histogram.observe(value)
        counts = histogram.cumulative_counts()
        # each bound catches exactly one observation, cumulatively
        assert counts == list(range(1, len(DEFAULT_COST_BUCKETS) + 1)) + [
            len(DEFAULT_COST_BUCKETS)
        ]

    def test_rejects_bad_bucket_layouts(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValidationError):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ValidationError):
            registry.histogram("h3", buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_same_kind_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "other help is tolerated")
        assert first is second

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        with pytest.raises(ValidationError):
            registry.gauge("c_total")
        with pytest.raises(ValidationError):
            registry.histogram("c_total", buckets=(1.0,))

    def test_bucket_clash_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValidationError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_rejects_invalid_names(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("")
        with pytest.raises(ValidationError):
            registry.counter("bad name")

    def test_collect_is_sorted_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.collect()] == ["a_total", "z_total"]
        assert "a_total" in registry
        assert "missing" not in registry
        assert len(registry) == 2


GOLDEN_PROMETHEUS = """\
# HELP demo_latency_seconds request latency
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{engine="ad",le="0.5"} 1
demo_latency_seconds_bucket{engine="ad",le="1"} 2
demo_latency_seconds_bucket{engine="ad",le="+Inf"} 3
demo_latency_seconds_sum{engine="ad"} 3.6
demo_latency_seconds_count{engine="ad"} 3
# HELP demo_queries_total queries served
# TYPE demo_queries_total counter
demo_queries_total{engine="ad",kind="k_n_match"} 3
demo_queries_total{engine="naive-scan",kind="k_n_match"} 1.5
# TYPE demo_utilization gauge
demo_utilization{worker="0"} 0.25
"""


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    queries = registry.counter("demo_queries_total", "queries served")
    queries.labels(engine="ad", kind="k_n_match").inc(3)
    queries.labels(kind="k_n_match", engine="naive-scan").inc(1.5)
    registry.gauge("demo_utilization").labels(worker="0").set(0.25)
    latency = registry.histogram(
        "demo_latency_seconds", "request latency", buckets=(0.5, 1.0)
    ).labels(engine="ad")
    latency.observe(0.1)
    latency.observe(1.0)
    latency.observe(2.5)
    return registry


class TestExporters:
    def test_prometheus_golden(self):
        assert render_prometheus(_golden_registry()) == GOLDEN_PROMETHEUS

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert registry_to_dict(MetricsRegistry()) == {}

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total").labels(path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_json_round_trips(self):
        doc = json.loads(render_json(_golden_registry()))
        assert doc["demo_queries_total"]["type"] == "counter"
        series = doc["demo_queries_total"]["series"]
        assert {
            "labels": {"engine": "ad", "kind": "k_n_match"},
            "value": 3.0,
        } in series
        histogram = doc["demo_latency_seconds"]["series"][0]
        assert histogram["cumulative_counts"] == [1, 2, 3]
        assert histogram["sum"] == pytest.approx(3.6)

    def test_dict_matches_live_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total").labels(a="x").inc(4)
        doc = registry_to_dict(registry)
        assert doc["c_total"]["series"] == [
            {"labels": {"a": "x"}, "value": 4.0}
        ]


@pytest.mark.tier2
class TestConcurrency:
    def test_exact_totals_under_threaded_executor(self):
        """8 workers hammering one registry must lose no increments."""
        from repro.core.ad_block import BlockADEngine
        from repro.parallel import ParallelBatchExecutor

        rng = np.random.default_rng(3)
        data = rng.random((1_000, 6))
        queries = rng.random((96, 6))

        registry = MetricsRegistry()
        engine = BlockADEngine(data, metrics=registry)
        executor = ParallelBatchExecutor(engine, workers=8, metrics=registry)
        results = executor.k_n_match_batch(queries, 4, 3)

        counted = registry.get("repro_queries_total").labels(
            engine="block-ad", kind="k_n_match"
        )
        assert counted.value == len(queries) == 96
        attrs = registry.get("repro_attributes_retrieved_total").labels(
            engine="block-ad", kind="k_n_match"
        )
        assert attrs.value == sum(r.stats.attributes_retrieved for r in results)
        batches = registry.get("repro_batches_total").labels(engine="block-ad")
        assert batches.value == 1
        batch_queries = registry.get("repro_batch_queries_total").labels(
            engine="block-ad"
        )
        assert batch_queries.value == 96

    def test_raw_counter_contention(self):
        """Pure counter arithmetic is exact across threads."""
        from concurrent.futures import ThreadPoolExecutor

        counter = MetricsRegistry().counter("c_total").labels()

        def spin(_):
            for _ in range(10_000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(spin, range(8)))
        assert counter.value == 80_000

    def test_exporters_are_deterministic_after_concurrent_writes(self):
        """Concurrent registration order must not leak into the output.

        Eight threads create labelled children of one registry in eight
        different interleavings; the rendered output must have exact
        totals and be byte-identical to a serially-built registry —
        stable family and label-set ordering regardless of which thread
        touched a series first.
        """
        from concurrent.futures import ThreadPoolExecutor

        hammered = MetricsRegistry()

        def spin(worker):
            family = hammered.counter("c_total")
            gauge = hammered.gauge("g")
            # Each worker walks the label space in its own rotation, so
            # first-registration order differs run to run and thread to
            # thread.
            for step in range(1_000):
                engine = f"e{(worker + step) % 4}"
                family.labels(engine=engine, kind="k_n_match").inc()
                gauge.labels(engine=engine).set(7)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(spin, range(8)))

        serial = MetricsRegistry()
        for engine in ("e0", "e1", "e2", "e3"):
            serial.counter("c_total").labels(
                engine=engine, kind="k_n_match"
            ).inc(2_000)
        for engine in ("e3", "e2", "e1", "e0"):  # reverse on purpose
            serial.gauge("g").labels(engine=engine).set(7)

        text = render_prometheus(hammered)
        assert text == render_prometheus(serial)
        assert render_json(hammered) == render_json(serial)
        assert registry_to_dict(hammered) == registry_to_dict(serial)
