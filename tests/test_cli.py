"""The command-line interface, end to end on temp files."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def data_file(tmp_path, rng):
    path = tmp_path / "data.npy"
    np.save(path, rng.random((200, 6)).astype(np.float32).astype(np.float64))
    return path


@pytest.fixture
def db_file(tmp_path, data_file):
    path = tmp_path / "db.npz"
    assert main(["build", str(data_file), str(path)]) == 0
    return path


class TestGenerate:
    @pytest.mark.parametrize("kind", ["uniform", "clustered", "skewed"])
    def test_generates_each_kind(self, tmp_path, kind, capsys):
        out = tmp_path / f"{kind}.npy"
        status = main(
            [
                "generate",
                str(out),
                "--kind",
                kind,
                "--cardinality",
                "50",
                "--dimensionality",
                "4",
            ]
        )
        assert status == 0
        data = np.load(out)
        assert data.shape == (50, 4)
        assert kind in capsys.readouterr().out


class TestBuildAndInfo:
    def test_build_writes_database(self, db_file):
        assert db_file.exists()

    def test_build_missing_input(self, tmp_path, capsys):
        status = main(
            ["build", str(tmp_path / "missing.npy"), str(tmp_path / "o.npz")]
        )
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_info(self, db_file, capsys):
        assert main(["info", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "cardinality:     200" in out
        assert "dimensionality:  6" in out

    def test_info_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"junk")
        assert main(["info", str(bad)]) == 2


class TestQuery:
    def test_knmatch_with_inline_query(self, db_file, capsys):
        status = main(
            [
                "query",
                str(db_file),
                "--k",
                "3",
                "--n",
                "4",
                "--query",
                "0.5,0.5,0.5,0.5,0.5,0.5",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "3-4-match answers" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 answers

    def test_frequent_with_query_row(self, db_file, capsys):
        status = main(
            [
                "query",
                str(db_file),
                "--k",
                "5",
                "--n-range",
                "2:5",
                "--query-row",
                "7",
                "--stats",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "frequent 5-n-match" in out
        assert "stats:" in out
        # row 7 matches itself in every n -> appears with max count
        assert "       7  4" in out

    def test_query_row_out_of_range(self, db_file, capsys):
        status = main(
            ["query", str(db_file), "--k", "1", "--n", "1", "--query-row", "999"]
        )
        assert status == 2
        assert "out of range" in capsys.readouterr().err

    def test_bad_query_vector(self, db_file, capsys):
        status = main(
            ["query", str(db_file), "--k", "1", "--n", "1", "--query", "a,b,c"]
        )
        assert status == 2

    def test_bad_n_range(self, db_file, capsys):
        status = main(
            [
                "query",
                str(db_file),
                "--k",
                "1",
                "--n-range",
                "4-8",
                "--query-row",
                "0",
            ]
        )
        assert status == 2
        assert "n0:n1" in capsys.readouterr().err

    def test_validation_error_is_reported(self, db_file, capsys):
        status = main(
            ["query", str(db_file), "--k", "999", "--n", "1", "--query-row", "0"]
        )
        assert status == 2

    def test_engine_override(self, db_file, capsys):
        status = main(
            [
                "query",
                str(db_file),
                "--k",
                "2",
                "--n",
                "3",
                "--query-row",
                "0",
                "--engine",
                "naive",
            ]
        )
        assert status == 0


class TestBatch:
    def test_query_rows(self, db_file, capsys):
        status = main(
            ["batch", str(db_file), "--k", "3", "--n", "4", "--query-rows", "0:5"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "3-4-match over 5 queries" in out

    def test_queries_file_with_stats(self, tmp_path, data_file, db_file, capsys):
        queries = tmp_path / "q.npy"
        np.save(queries, np.load(data_file)[:4])
        status = main(
            [
                "batch",
                str(db_file),
                "--k",
                "2",
                "--n-range",
                "2:5",
                "--queries",
                str(queries),
                "--stats",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "frequent 2-n-match over n in [2, 5], 4 queries" in out
        assert "stats: attributes=" in out

    def test_engines_print_identical_answers(self, db_file, capsys):
        outputs = set()
        for extra in ([], ["--engine", "block-ad"], ["--workers", "2"]):
            status = main(
                ["batch", str(db_file), "--k", "3", "--n", "4", "--query-rows", "0:6"]
                + extra
            )
            assert status == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_workers_implies_parallel(self, db_file, monkeypatch):
        from repro.parallel import executor as executor_module

        ran = []
        original = executor_module.ParallelBatchExecutor._run

        def spy(self, *args, **kwargs):
            ran.append(True)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(executor_module.ParallelBatchExecutor, "_run", spy)
        status = main(
            [
                "batch",
                str(db_file),
                "--k",
                "3",
                "--n",
                "4",
                "--query-rows",
                "0:5",
                "--workers",
                "2",
            ]
        )
        assert status == 0
        assert ran

    def test_workers_zero_rejected(self, db_file, capsys):
        status = main(
            [
                "batch",
                str(db_file),
                "--k",
                "3",
                "--n",
                "4",
                "--query-rows",
                "0:5",
                "--workers",
                "0",
            ]
        )
        assert status == 2
        assert "workers" in capsys.readouterr().err

    def test_wrong_width_queries_file(self, tmp_path, db_file, capsys):
        queries = tmp_path / "bad.npy"
        np.save(queries, np.zeros((3, 2)))
        status = main(
            [
                "batch",
                str(db_file),
                "--k",
                "1",
                "--n",
                "2",
                "--queries",
                str(queries),
            ]
        )
        assert status == 2
        assert "dimensions" in capsys.readouterr().err

    def test_requires_exactly_one_query_source(self, db_file):
        with pytest.raises(SystemExit):
            main(["batch", str(db_file), "--k", "1", "--n", "2"])


class TestAdvise:
    def test_advise(self, db_file, capsys):
        status = main(
            ["advise", str(db_file), "--k", "5", "--n-range", "2:4"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "recommended engine:" in out
        assert "reason:" in out

    def test_advise_attributes_mode(self, db_file, capsys):
        status = main(
            [
                "advise",
                str(db_file),
                "--k",
                "5",
                "--n-range",
                "2:4",
                "--minimize",
                "attributes",
            ]
        )
        assert status == 0
        assert "recommended engine: ad" in capsys.readouterr().out


class TestServe:
    def test_serve_roundtrip_on_ephemeral_port(self, db_file, data_file):
        """End to end: spawn `repro serve --port 0`, query it, SIGTERM it."""
        import os
        import re
        import signal
        import subprocess
        import sys

        from repro.io import load_database
        from repro.serve import ServeClient

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(db_file),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            startup = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", startup)
            assert match, f"no port in startup line: {startup!r}"
            client = ServeClient("127.0.0.1", int(match.group(1)))
            db = load_database(str(db_file))
            query = np.load(data_file)[3] + 0.25
            direct = db.k_n_match(query, 4, 3)
            remote = client.query(list(query), 4, 3)
            assert remote.ids == direct.ids
            assert remote.differences == direct.differences
            assert client.health()["status"] == "ok"
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "server drained and stopped" in out

    def test_partitioner_requires_shards(self, db_file, capsys):
        status = main(
            ["serve", str(db_file), "--port", "0", "--partitioner", "hash"]
        )
        assert status == 2
        assert "--shards" in capsys.readouterr().err


class TestLsmCli:
    @pytest.fixture
    def store_dir(self, tmp_path):
        from repro.lsm import LsmMatchDatabase

        path = tmp_path / "store"
        with LsmMatchDatabase(
            path,
            dimensionality=4,
            memtable_flush_rows=8,
            level_fanout=2,
            auto_compact=False,
        ) as db:
            for pid in range(40):
                db.insert([float(pid), pid * 0.5, pid % 7, 1.0])
            for pid in range(0, 40, 5):
                db.delete(pid)
        return path

    def test_lsm_info_round_trip(self, store_dir, capsys):
        assert main(["lsm-info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "cardinality:      32 live points" in out
        assert "dimensionality:   4" in out
        assert "level 0:" in out
        assert "wal:" in out
        assert "generation:" in out

    def test_lsm_info_json(self, store_dir, capsys):
        import json

        assert main(["lsm-info", str(store_dir), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["cardinality"] == 32
        assert info["tombstones"] == 8
        assert info["generation"] > 0

    def test_lsm_info_rejects_non_store(self, tmp_path, capsys):
        assert main(["lsm-info", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wal_info(self, store_dir, capsys):
        assert main(["wal-info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "torn tail:       no" in out

    def test_compact_then_info_shows_last_compaction(self, store_dir, capsys):
        assert main(["compact", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments: 5 -> 1" in out
        assert "tombstones: 8 -> 0" in out
        capsys.readouterr()
        assert main(["lsm-info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert ", 0 tombstones" in out
        assert "last compaction:  level" in out

    def test_serve_store_requires_no_database(self, store_dir, capsys):
        status = main(["serve", "--port", "0"])
        assert status == 2
        assert "--store" in capsys.readouterr().err

    def test_serve_store_mutation_round_trip(self, store_dir):
        """End to end: serve --store, insert + delete via ServeClient."""
        import os
        import re
        import signal
        import subprocess
        import sys

        from repro.serve import ServeClient

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--store",
                str(store_dir),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            startup = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", startup)
            assert match, f"no port in startup line: {startup!r}"
            client = ServeClient("127.0.0.1", int(match.group(1)))
            pid = client.insert([100.0, 100.0, 100.0, 100.0])
            assert pid == 40
            first_generation = client.last_generation
            assert first_generation is not None
            result = client.query([100.0, 100.0, 100.0, 100.0], 1, 4)
            assert result.ids == [pid]
            client.delete(pid)
            assert client.last_generation > first_generation
            result = client.query([100.0, 100.0, 100.0, 100.0], 1, 4)
            assert result.ids != [pid]
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "server drained and stopped" in out

    def test_mutations_survive_serve_restart(self, store_dir):
        from repro.lsm import LsmMatchDatabase

        with LsmMatchDatabase.recover(store_dir, auto_compact=False) as db:
            pid = db.insert([7.0, 7.0, 7.0, 7.0])
        with LsmMatchDatabase.recover(store_dir, auto_compact=False) as db:
            assert pid in db


class TestParser:
    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert out.startswith("repro ")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_query_requires_exactly_one_n_form(self, db_file):
        with pytest.raises(SystemExit):
            main(["query", str(db_file), "--k", "1", "--query-row", "0"])
