"""Baselines: kNN, skyline, Fagin's FA, DPF."""

import numpy as np
import pytest

from repro.baselines import DPFEngine, KnnEngine, dominates, fa_top_k, skyline
from repro.errors import ValidationError


class TestKnn:
    def test_matches_brute_force(self, small_data, small_query):
        result = KnnEngine(small_data).top_k(small_query, 7)
        distances = np.linalg.norm(small_data - small_query, axis=1)
        expected = np.lexsort((np.arange(300), distances))[:7]
        assert result.ids == [int(i) for i in expected]
        assert result.distances == sorted(result.distances)

    def test_manhattan(self, small_data, small_query):
        result = KnnEngine(small_data, p=1.0).top_k(small_query, 3)
        distances = np.abs(small_data - small_query).sum(axis=1)
        assert result.ids[0] == int(np.argmin(distances))

    def test_chebyshev(self, small_data, small_query):
        result = KnnEngine(small_data, p=float("inf")).top_k(small_query, 3)
        distances = np.abs(small_data - small_query).max(axis=1)
        assert result.ids[0] == int(np.argmin(distances))

    def test_self_query_returns_self_first(self, small_data):
        result = KnnEngine(small_data).top_k(small_data[42], 1)
        assert result.ids == [42]
        assert result.distances[0] == 0.0

    def test_invalid_p(self, small_data):
        with pytest.raises(ValueError):
            KnnEngine(small_data, p=-2.0)

    def test_stats(self, small_data, small_query):
        stats = KnnEngine(small_data).top_k(small_query, 2).stats
        assert stats.attributes_retrieved == small_data.size
        assert stats.points_scanned == 300

    def test_iteration(self, small_data, small_query):
        result = KnnEngine(small_data).top_k(small_query, 4)
        assert len(list(result)) == len(result) == 4


class TestSkyline:
    def test_dominates(self):
        assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert dominates(np.array([1.0, 2.0]), np.array([2.0, 2.0]))
        assert not dominates(np.array([1.0, 3.0]), np.array([2.0, 2.0]))
        assert not dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_skyline_definition(self, rng):
        """No member dominated; every non-member dominated by someone."""
        data = rng.random((120, 3))
        members = set(skyline(data))
        for i in range(120):
            dominated = any(
                dominates(data[j], data[i]) for j in range(120) if j != i
            )
            assert (i in members) == (not dominated)

    def test_query_relative(self):
        data = np.array([[0.0, 0.0], [2.0, 2.0], [3.0, 3.0]])
        # relative to query (2,2): point 1 is a perfect match
        assert skyline(data, query=np.array([2.0, 2.0])) == [1]

    def test_duplicates_all_kept(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline(data) == [0, 1]

    def test_single_point(self):
        assert skyline([[5.0, 5.0]]) == [0]


class TestFaginFA:
    def test_correct_for_monotone_sum(self, rng):
        data = rng.random((60, 4))
        run = fa_top_k(data, lambda row: float(row.sum()), k=5)
        expected = np.argsort(data.sum(axis=1))[:5]
        assert sorted(run.ids) == sorted(int(i) for i in expected)

    def test_correct_for_monotone_max(self, rng):
        data = rng.random((60, 4))
        run = fa_top_k(data, lambda row: float(row.max()), k=3)
        expected = np.argsort(data.max(axis=1))[:3]
        assert sorted(run.ids) == sorted(int(i) for i in expected)

    def test_access_accounting(self, rng):
        data = rng.random((50, 3))
        run = fa_top_k(data, lambda row: float(row.sum()), k=2)
        assert run.sorted_accesses > 0
        assert run.sorted_accesses <= 150
        assert run.random_accesses >= 0

    def test_stops_early(self, rng):
        """FA should not do a full scan when k objects surface quickly."""
        data = np.sort(rng.random((100, 3)), axis=0)  # perfectly correlated
        run = fa_top_k(data, lambda row: float(row.sum()), k=1)
        assert run.sorted_accesses == 3  # first row already complete

    def test_key_transform_shape_enforced(self, rng):
        data = rng.random((10, 3))
        with pytest.raises(ValidationError):
            fa_top_k(data, lambda row: 0.0, k=1, key=lambda row: row[:2])

    def test_k_validated(self, rng):
        with pytest.raises(ValidationError):
            fa_top_k(rng.random((5, 2)), lambda row: 0.0, k=6)


class TestDPF:
    def test_matches_brute_force(self, small_data, small_query):
        from repro.core.distance import dpf_distances

        result = DPFEngine(small_data).top_k(small_query, 6, 4)
        distances = dpf_distances(small_data, small_query, 4)
        expected = np.lexsort((np.arange(300), distances))[:6]
        assert result.ids == [int(i) for i in expected]

    def test_n_equals_d_is_plain_knn(self, small_data, small_query):
        dpf = DPFEngine(small_data).top_k(small_query, 5, 8)
        knn = KnnEngine(small_data).top_k(small_query, 5)
        assert dpf.ids == knn.ids

    def test_validation(self, small_data, small_query):
        with pytest.raises(ValueError):
            DPFEngine(small_data, p=0.0)
        with pytest.raises(ValidationError):
            DPFEngine(small_data).top_k(small_query, 5, 9)
