"""DynamicMatchDatabase: exact answers under inserts and deletes."""

import numpy as np
import pytest

from repro import DynamicMatchDatabase
from repro.core.naive import NaiveScanEngine
from repro.errors import EmptyDatabaseError, ValidationError


def oracle_frequent(db: DynamicMatchDatabase, query, k, n_range):
    """Ground truth: naive engine on a live snapshot, ids remapped."""
    rows, pids = db.snapshot()
    result = NaiveScanEngine(rows).frequent_k_n_match(query, k, n_range)
    mapping = {int(i): int(pid) for i, pid in enumerate(pids)}
    # remap by recomputing: naive's tie-break uses row index, ours uses
    # global pid — recompute deterministically on (diff, pid)
    profiles = np.sort(np.abs(rows - np.asarray(query, float)), axis=1)
    sets = {}
    for n in range(n_range[0], n_range[1] + 1):
        order = sorted(range(rows.shape[0]), key=lambda i: (profiles[i, n - 1], mapping[i]))
        sets[n] = [mapping[i] for i in order[:k]]
    return sets


class TestConstruction:
    def test_from_data(self, small_data):
        db = DynamicMatchDatabase(small_data)
        assert db.cardinality == 300
        assert db.dimensionality == 8
        assert len(db) == 300

    def test_empty_with_dimensionality(self):
        db = DynamicMatchDatabase(dimensionality=5)
        assert db.cardinality == 0
        with pytest.raises(EmptyDatabaseError):
            db.k_n_match(np.zeros(5), 1, 1)

    def test_requires_something(self):
        with pytest.raises(ValidationError):
            DynamicMatchDatabase()

    def test_dimensionality_mismatch_rejected(self, small_data):
        with pytest.raises(ValidationError):
            DynamicMatchDatabase(small_data, dimensionality=9)

    def test_invalid_threshold(self, small_data):
        with pytest.raises(ValidationError):
            DynamicMatchDatabase(small_data, compaction_threshold=0.0)
        with pytest.raises(ValidationError):
            DynamicMatchDatabase(small_data, min_buffer=0)


class TestUpdates:
    def test_insert_assigns_sequential_ids(self, small_data):
        db = DynamicMatchDatabase(small_data)
        pid = db.insert(np.full(8, 0.5))
        assert pid == 300
        assert db.insert(np.full(8, 0.6)) == 301
        assert db.cardinality == 302

    def test_insert_many(self, small_data, rng):
        db = DynamicMatchDatabase(small_data)
        pids = db.insert_many(rng.random((5, 8)))
        assert pids == [300, 301, 302, 303, 304]

    def test_insert_many_dimension_check(self, small_data, rng):
        db = DynamicMatchDatabase(small_data)
        with pytest.raises(ValidationError):
            db.insert_many(rng.random((5, 7)))

    def test_delete(self, small_data):
        db = DynamicMatchDatabase(small_data)
        db.delete(42)
        assert db.cardinality == 299
        assert 42 not in db

    def test_double_delete_rejected(self, small_data):
        db = DynamicMatchDatabase(small_data)
        db.delete(42)
        with pytest.raises(ValidationError):
            db.delete(42)

    def test_delete_unknown_rejected(self, small_data):
        db = DynamicMatchDatabase(small_data)
        with pytest.raises(ValidationError):
            db.delete(999)

    def test_delete_buffered_point(self, small_data):
        db = DynamicMatchDatabase(small_data)
        pid = db.insert(np.full(8, 0.5))
        db.delete(pid)
        assert pid not in db
        assert db.cardinality == 300

    def test_get_point(self, small_data):
        db = DynamicMatchDatabase(small_data)
        np.testing.assert_array_equal(db.get_point(7), small_data[7])
        pid = db.insert(np.full(8, 0.123))
        np.testing.assert_array_equal(db.get_point(pid), np.full(8, 0.123))
        db.delete(7)
        with pytest.raises(ValidationError):
            db.get_point(7)

    def test_contains(self, small_data):
        db = DynamicMatchDatabase(small_data)
        assert 0 in db
        assert 300 not in db
        pid = db.insert(np.zeros(8))
        assert pid in db


class TestCompaction:
    def test_manual_compact_preserves_answers(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        db.insert(small_query)
        db.delete(3)
        before = db.k_n_match(small_query, 5, 4)
        db.compact()
        after = db.k_n_match(small_query, 5, 4)
        assert before.ids == after.ids
        assert db.buffer_size == 0
        assert db.tombstone_count == 0
        assert db.compactions == 1

    def test_auto_compaction_triggers(self, small_data, rng):
        db = DynamicMatchDatabase(small_data, min_buffer=8, compaction_threshold=0.02)
        for row in rng.random((20, 8)):
            db.insert(row)
        assert db.compactions >= 1
        assert db.cardinality == 320

    def test_ids_stable_across_compaction(self, small_data):
        db = DynamicMatchDatabase(small_data)
        pid = db.insert(np.full(8, 0.42))
        db.delete(10)
        db.compact()
        np.testing.assert_array_equal(db.get_point(pid), np.full(8, 0.42))
        assert 10 not in db


class TestQueries:
    def test_fresh_db_matches_static(self, small_data, small_query):
        from repro import MatchDatabase

        dynamic = DynamicMatchDatabase(small_data)
        static = MatchDatabase(small_data)
        dyn = dynamic.k_n_match(small_query, 9, 5)
        stat = static.k_n_match(small_query, 9, 5, engine="naive")
        assert dyn.ids == stat.ids
        np.testing.assert_allclose(dyn.differences, stat.differences, atol=1e-12)

    def test_inserted_duplicate_of_query_ranks_first(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        pid = db.insert(small_query)
        result = db.k_n_match(small_query, 1, 8)
        assert result.ids == [pid]
        assert result.differences[0] == 0.0

    def test_deleted_point_never_returned(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        winner = db.k_n_match(small_query, 1, 8).ids[0]
        db.delete(winner)
        result = db.k_n_match(small_query, 10, 8)
        assert winner not in result.ids

    def test_frequent_after_updates_matches_oracle(self, small_data, small_query, rng):
        db = DynamicMatchDatabase(small_data)
        for row in rng.random((7, 8)):
            db.insert(row)
        for pid in (5, 100, 301):
            db.delete(pid)
        result = db.frequent_k_n_match(small_query, 8, (3, 7))
        expected = oracle_frequent(db, small_query, 8, (3, 7))
        assert result.answer_sets == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_random_operation_sequences(self, seed):
        rng = np.random.default_rng(seed)
        db = DynamicMatchDatabase(
            rng.random((60, 4)), min_buffer=6, compaction_threshold=0.1
        )
        live = set(range(60))
        for _ in range(80):
            op = rng.random()
            if op < 0.5 or not live:
                pid = db.insert(rng.random(4))
                live.add(pid)
            elif op < 0.8:
                victim = int(rng.choice(sorted(live)))
                db.delete(victim)
                live.discard(victim)
            else:
                query = rng.random(4)
                k = int(rng.integers(1, min(len(live), 6) + 1))
                n = int(rng.integers(1, 5))
                result = db.k_n_match(query, k, n)
                expected = oracle_frequent(db, query, k, (n, n))[n]
                assert result.ids == expected, (seed, k, n)
        assert db.cardinality == len(live)

    def test_query_validation(self, small_data, small_query):
        db = DynamicMatchDatabase(small_data)
        with pytest.raises(ValidationError):
            db.k_n_match(small_query, 0, 1)
        with pytest.raises(ValidationError):
            db.k_n_match(small_query, 1, 9)
        with pytest.raises(ValidationError):
            db.frequent_k_n_match(small_query, 1, (3, 2))

    def test_k_bounded_by_live_count(self, rng):
        db = DynamicMatchDatabase(rng.random((5, 3)))
        db.delete(0)
        with pytest.raises(ValidationError):
            db.k_n_match(np.zeros(3), 5, 1)
        result = db.k_n_match(np.zeros(3), 4, 1)
        assert len(result.ids) == 4
