"""ASCII chart rendering."""

import pytest

from repro.errors import ValidationError
from repro.eval.ascii_plot import MARKERS, ascii_chart
from repro.experiments.common import ExperimentResult


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            {"up": {0: 0.0, 1: 1.0}, "down": {0: 1.0, 1: 0.0}},
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "o = up" in lines[-1]
        assert "x = down" in lines[-1]
        # markers land in the grid
        grid = "\n".join(lines[1:-3])
        assert "o" in grid and "x" in grid

    def test_axis_labels(self):
        text = ascii_chart({"s": {2: 5.0, 10: 9.0}}, x_label="k", y_label="t")
        assert "2" in text and "10" in text  # x extremes
        assert "9" in text and "5" in text  # y extremes

    def test_constant_series_does_not_crash(self):
        text = ascii_chart({"flat": {0: 3.0, 5: 3.0, 10: 3.0}})
        assert "o" in text

    def test_single_point(self):
        text = ascii_chart({"dot": {1: 1.0}})
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_chart({})
        with pytest.raises(ValidationError):
            ascii_chart({"empty": {}})
        with pytest.raises(ValidationError):
            ascii_chart({"s": {0: 1}}, width=4)
        too_many = {f"s{i}": {0: float(i)} for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValidationError):
            ascii_chart(too_many)

    def test_relative_ordering_preserved(self):
        """The higher-valued series must render above the lower one."""
        text = ascii_chart(
            {"low": {0: 1.0, 1: 1.0}, "high": {0: 9.0, 1: 9.0}},
            height=8,
        )
        rows = [line for line in text.splitlines() if "|" in line]
        high_row = next(i for i, row in enumerate(rows) if "x" in row)
        low_row = next(i for i, row in enumerate(rows) if "o" in row)
        assert high_row < low_row  # screen-top is larger y


class TestExperimentChart:
    WIDE = ExperimentResult(
        "Figure 13(a)",
        "demo",
        ["k", "scan", "AD"],
        [[10, 1.0, 0.3], [20, 1.0, 0.4], [30, 1.1, 0.5]],
    )
    LONG = ExperimentResult(
        "Figure 8(b)",
        "demo",
        ["data set", "n1", "accuracy"],
        [["a", 1, 0.5], ["a", 2, 0.9], ["b", 1, 0.4], ["b", 2, 0.7]],
    )

    def test_wide_layout(self):
        text = self.WIDE.chart("k", ["scan", "AD"])
        assert "o = scan" in text
        assert "x = AD" in text
        assert "Figure 13(a)" in text

    def test_long_layout(self):
        text = self.LONG.chart("n1", "accuracy", series="data set")
        assert "o = a" in text
        assert "x = b" in text

    def test_none_cells_skipped(self):
        result = ExperimentResult(
            "F", "d", ["x", "y"], [[1, 0.5], [2, None], [3, 0.7]]
        )
        text = result.chart("x", "y")
        assert "o" in text

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            self.WIDE.chart("nope", "scan")
