"""Failure injection: engines must surface storage faults, not mask them."""

import numpy as np
import pytest

from repro.data import correlated_dataset, float32_exact
from repro.disk import DiskADEngine, DiskScanEngine
from repro.errors import StorageError, ValidationError
from repro.storage import FaultyPager


@pytest.fixture
def data(rng):
    return float32_exact(rng.random((400, 6)))


class TestFaultyPager:
    def test_behaves_normally_without_faults(self):
        pager = FaultyPager(page_size=16)
        pid = pager.allocate(b"payload")
        assert pager.read(pid).startswith(b"payload")
        assert pager.faults_fired == 0
        assert pager.reads_attempted == 1
        assert pager.reads_served == 1
        assert pager.corruptions_served == 0

    def test_fail_page_raises(self):
        pager = FaultyPager(page_size=16, fail_pages={0})
        pager.allocate(b"x")
        with pytest.raises(StorageError, match="injected fault"):
            pager.read(0)
        assert pager.faults_fired == 1
        # A hard failure is attempted but never served.
        assert pager.reads_attempted == 1
        assert pager.reads_served == 0

    def test_corrupt_page_flips_bit(self):
        pager = FaultyPager(page_size=16, corrupt_pages={0})
        pager.allocate(b"\x00garbage")
        payload = pager.read(0)
        assert payload[0] == 0x01

    def test_corruption_is_served_and_counted(self):
        pager = FaultyPager(page_size=16, corrupt_pages={0})
        pager.allocate(b"\x00x")
        pager.allocate(b"\x00y")
        pager.read(0)
        pager.read(1)
        # A corruption IS a served read (the caller got bytes back),
        # distinct from a hard failure.
        assert pager.reads_attempted == 2
        assert pager.reads_served == 2
        assert pager.corruptions_served == 1
        assert pager.faults_fired == 1

    def test_fail_after_reads(self):
        pager = FaultyPager(page_size=16, fail_after_reads=2)
        for _ in range(3):
            pager.allocate(b"x")
        pager.read(0)
        pager.read(1)
        with pytest.raises(StorageError, match="device failed"):
            pager.read(2)
        assert pager.reads_attempted == 3
        assert pager.reads_served == 2

    def test_fail_after_reads_counts_attempts_not_successes(self):
        """A fail_pages hit must not postpone the device failure.

        fail_after_reads indexes read *attempts*: with fail_after_reads=2
        and the first attempt failing hard on a bad page, the device
        still dies on attempt 3 (not attempt 4, as the old served-reads
        accounting had it).
        """
        pager = FaultyPager(page_size=16, fail_pages={0}, fail_after_reads=2)
        for _ in range(3):
            pager.allocate(b"x")
        with pytest.raises(StorageError, match="unreadable page"):
            pager.read(0)  # attempt 1: bad page, not served
        pager.read(1)  # attempt 2: fine
        with pytest.raises(StorageError, match="device failed"):
            pager.read(2)  # attempt 3: device dead
        assert pager.reads_attempted == 3
        assert pager.reads_served == 1
        assert pager.faults_fired == 2

    def test_device_failure_preempts_page_faults(self):
        """Once the device is dead, every read dies, even good pages."""
        pager = FaultyPager(page_size=16, fail_after_reads=0)
        pager.allocate(b"x")
        with pytest.raises(StorageError, match="device failed"):
            pager.read(0)
        assert pager.reads_served == 0


class TestEnginePropagation:
    def test_disk_ad_surfaces_unreadable_page(self, data, rng):
        pager = FaultyPager(page_size=256)
        engine = DiskADEngine(data, pager=pager)
        # fail a page in the middle of the first column
        victim = data.shape[0] // pager.page_size * 0 + 2
        pager.fail_pages.add(engine.store.column(0).first_page + 1)
        query = float32_exact(rng.random(6))
        with pytest.raises(StorageError, match="injected fault"):
            # n = d forces deep walks that must cross the bad page
            engine.frequent_k_n_match(query, 50, (1, 6))

    def test_disk_scan_surfaces_unreadable_page(self, data, rng):
        pager = FaultyPager(page_size=256)
        engine = DiskScanEngine(data, pager=pager)
        pager.fail_pages.add(engine.heap_file.page_of_point(100))
        with pytest.raises(StorageError, match="injected fault"):
            engine.k_n_match(float32_exact(rng.random(6)), 5, 3)

    def test_device_death_mid_query(self, data, rng):
        pager = FaultyPager(page_size=256)
        engine = DiskScanEngine(data, pager=pager)
        pager.fail_after_reads = 3
        with pytest.raises(StorageError, match="device failed"):
            engine.k_n_match(float32_exact(rng.random(6)), 5, 3)

    def test_engine_usable_after_fault_cleared(self, data, rng):
        """A transient fault must not wedge the engine."""
        pager = FaultyPager(page_size=256)
        engine = DiskScanEngine(data, pager=pager)
        bad = engine.heap_file.page_of_point(0)
        pager.fail_pages.add(bad)
        query = float32_exact(rng.random(6))
        with pytest.raises(StorageError):
            engine.k_n_match(query, 5, 3)
        pager.fail_pages.clear()
        result = engine.k_n_match(query, 5, 3)
        assert len(result.ids) == 5


class TestCorrelatedGenerator:
    def test_shape_and_range(self):
        data = correlated_dataset(500, 6, correlation=0.5, seed=1)
        assert data.shape == (500, 6)
        assert data.min() >= 0 and data.max() <= 1

    def test_marginals_roughly_uniform(self):
        data = correlated_dataset(20000, 2, correlation=0.7, seed=2)
        for j in range(2):
            hist, _ = np.histogram(data[:, j], bins=10, range=(0, 1))
            assert hist.min() > 20000 / 10 * 0.8
            assert hist.max() < 20000 / 10 * 1.2

    def test_correlation_parameter_works(self):
        low = correlated_dataset(5000, 4, correlation=0.05, seed=3)
        high = correlated_dataset(5000, 4, correlation=0.9, seed=3)

        def mean_corr(data):
            corr = np.corrcoef(data.T)
            return corr[np.triu_indices(4, 1)].mean()

        assert mean_corr(low) < 0.15
        assert mean_corr(high) > 0.7

    def test_zero_correlation_is_independent_uniforms(self):
        data = correlated_dataset(5000, 3, correlation=0.0, seed=4)
        corr = np.corrcoef(data.T)
        assert abs(corr[np.triu_indices(3, 1)]).max() < 0.06

    def test_validation(self):
        with pytest.raises(ValidationError):
            correlated_dataset(10, 2, correlation=1.0)
        with pytest.raises(ValidationError):
            correlated_dataset(10, 2, correlation=-0.1)

    def test_ad_benefits_from_correlation(self, rng):
        """The ablation's premise: AD retrieves fewer attributes on
        correlated data (appearance counts concentrate)."""
        from repro.core.ad import ADEngine

        fractions = {}
        for rho in (0.0, 0.8):
            data = correlated_dataset(4000, 8, correlation=rho, seed=5)
            engine = ADEngine(data)
            query = data[10]
            stats = engine.frequent_k_n_match(
                query, 10, (4, 8), keep_answer_sets=False
            ).stats
            fractions[rho] = stats.fraction_retrieved
        assert fractions[0.8] < fractions[0.0]


class TestAnticorrelatedGenerator:
    def test_shape_and_range(self):
        from repro.data import anticorrelated_dataset

        data = anticorrelated_dataset(500, 5, seed=1)
        assert data.shape == (500, 5)
        assert data.min() >= 0 and data.max() <= 1

    def test_negative_pairwise_correlation(self):
        from repro.data import anticorrelated_dataset

        data = anticorrelated_dataset(5000, 4, seed=2)
        corr = np.corrcoef(data.T)
        off_diagonal = corr[np.triu_indices(4, 1)]
        assert off_diagonal.mean() < -0.1

    def test_skyline_explodes_vs_correlated(self):
        """The classic contrast: anti-correlated data has a huge skyline,
        correlated data a tiny one."""
        from repro.baselines import skyline
        from repro.data import anticorrelated_dataset, correlated_dataset

        anti = anticorrelated_dataset(400, 3, seed=3)
        corr = correlated_dataset(400, 3, correlation=0.9, seed=3)
        assert len(skyline(anti)) > 3 * len(skyline(corr))

    def test_validation(self):
        from repro.data import anticorrelated_dataset

        with pytest.raises(ValidationError):
            anticorrelated_dataset(10, 2, spread=0.0)
