"""Persistence round-trips and corruption handling."""

import json

import numpy as np
import pytest

from repro import MatchDatabase, load_database, save_database
from repro.errors import StorageError
from repro.io import FORMAT_VERSION, _MAGIC


@pytest.fixture
def saved(tmp_path, small_data):
    db = MatchDatabase(small_data, default_engine="block-ad")
    path = tmp_path / "db.npz"
    save_database(db, path)
    return db, path


class TestRoundTrip:
    def test_data_survives(self, saved):
        db, path = saved
        loaded = load_database(path)
        np.testing.assert_array_equal(loaded.data, db.data)
        assert loaded.cardinality == db.cardinality
        assert loaded.dimensionality == db.dimensionality
        assert loaded.default_engine == "block-ad"

    def test_answers_identical(self, saved, small_query):
        db, path = saved
        loaded = load_database(path)
        original = db.frequent_k_n_match(small_query, 7, (3, 6))
        restored = loaded.frequent_k_n_match(small_query, 7, (3, 6))
        assert original.ids == restored.ids
        assert original.answer_sets == restored.answer_sets

    def test_columns_not_resorted(self, saved):
        _db, path = saved
        loaded = load_database(path)
        for j in (0, 7):
            values = loaded.columns.column_values(j)
            assert np.all(np.diff(values) >= 0)

    def test_save_requires_match_database(self, tmp_path):
        with pytest.raises(StorageError):
            save_database("not a db", tmp_path / "x.npz")


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path / "absent.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(StorageError):
            load_database(path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(10))
        with pytest.raises(StorageError, match="not a repro database"):
            load_database(path)

    def test_wrong_magic(self, tmp_path, saved):
        _db, path = saved
        archive = dict(np.load(path))
        header = json.loads(bytes(archive["header"]).decode())
        header["magic"] = "evil"
        archive["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        bad = tmp_path / "bad_magic.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="not a repro database"):
            load_database(bad)

    def test_wrong_version(self, tmp_path, saved):
        _db, path = saved
        archive = dict(np.load(path))
        header = json.loads(bytes(archive["header"]).decode())
        header["version"] = FORMAT_VERSION + 1
        archive["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        bad = tmp_path / "bad_version.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="format version"):
            load_database(bad)

    def test_corrupt_header_json(self, tmp_path, saved):
        _db, path = saved
        archive = dict(np.load(path))
        archive["header"] = np.frombuffer(b"{not json", dtype=np.uint8)
        bad = tmp_path / "bad_header.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="corrupt header"):
            load_database(bad)

    def test_tampered_sorted_values(self, tmp_path, saved):
        """Failure injection: shuffle one column's values."""
        _db, path = saved
        archive = dict(np.load(path))
        values = archive["sorted_values"].copy()
        values[0, 0], values[0, -1] = values[0, -1], values[0, 0]
        archive["sorted_values"] = values
        bad = tmp_path / "unsorted.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="not sorted"):
            load_database(bad)

    def test_tampered_ids(self, tmp_path, saved):
        """Failure injection: duplicate an id in one permutation."""
        _db, path = saved
        archive = dict(np.load(path))
        ids = archive["sorted_ids"].copy()
        ids[0, 0] = ids[0, 1]
        archive["sorted_ids"] = ids
        bad = tmp_path / "dup_ids.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="permutation"):
            load_database(bad)

    def test_shape_mismatch(self, tmp_path, saved):
        _db, path = saved
        archive = dict(np.load(path))
        archive["data"] = archive["data"][:-1]
        bad = tmp_path / "short.npz"
        np.savez(bad, **archive)
        with pytest.raises(StorageError, match="shape"):
            load_database(bad)

    def test_magic_constant_stable(self):
        # the on-disk contract: changing this breaks every saved file
        assert _MAGIC == "repro-knmatch"
        assert FORMAT_VERSION == 1
