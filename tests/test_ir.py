"""The multiple-system retrieval model: systems and middleware."""

import numpy as np
import pytest

from conftest import assert_valid_knmatch
from repro.core.naive import NaiveScanEngine
from repro.errors import ValidationError
from repro.ir import MatchMiddleware, ScoreSystem


@pytest.fixture
def score_matrix(rng):
    return rng.random((200, 5))


@pytest.fixture
def systems(score_matrix):
    return [
        ScoreSystem(f"system-{j}", score_matrix[:, j])
        for j in range(score_matrix.shape[1])
    ]


class TestScoreSystem:
    def test_sorted_entries_ascend(self, systems):
        system = systems[0]
        scores = [system.sorted_entry(rank)[1] for rank in range(system.size)]
        assert scores == sorted(scores)

    def test_sorted_access_counted(self, systems):
        system = systems[0]
        system.sorted_entry(0)
        system.sorted_entry(1)
        assert system.sorted_accesses == 2
        system.reset_counters()
        assert system.sorted_accesses == 0

    def test_random_access(self, score_matrix, systems):
        system = systems[2]
        assert system.random_access(17) == pytest.approx(score_matrix[17, 2])
        assert system.random_accesses == 1

    def test_locate(self, systems):
        system = systems[0]
        rank = system.locate(0.5)
        if rank < system.size:
            assert system.sorted_entry(rank)[1] >= 0.5
        if rank > 0:
            assert system.sorted_entry(rank - 1)[1] < 0.5

    def test_bounds(self, systems):
        with pytest.raises(ValidationError):
            systems[0].sorted_entry(systems[0].size)
        with pytest.raises(ValidationError):
            systems[0].random_access(-1)

    def test_rejects_bad_scores(self):
        with pytest.raises(ValidationError):
            ScoreSystem("bad", [])
        with pytest.raises(ValidationError):
            ScoreSystem("bad", [1.0, float("nan")])


class TestMiddleware:
    def test_matches_naive_over_stacked_scores(self, score_matrix, systems):
        middleware = MatchMiddleware(systems)
        target = score_matrix[33] * 1.01
        result = middleware.k_n_match(target, k=6, n=3)
        naive = NaiveScanEngine(score_matrix).k_n_match(target, 6, 3)
        np.testing.assert_allclose(
            sorted(result.differences), sorted(naive.differences), atol=1e-12
        )
        assert_valid_knmatch(score_matrix, target, 3, 6, result.ids)

    def test_frequent_matches_naive(self, score_matrix, systems):
        middleware = MatchMiddleware(systems)
        target = score_matrix[10]
        result = middleware.frequent_k_n_match(target, k=4, n_range=(2, 4))
        naive = NaiveScanEngine(score_matrix).frequent_k_n_match(
            target, 4, (2, 4)
        )
        assert result.ids == naive.ids

    def test_access_bill_equals_stats(self, score_matrix, systems):
        middleware = MatchMiddleware(systems)
        result = middleware.k_n_match(score_matrix[5], k=3, n=2)
        bill = middleware.access_bill()
        assert set(bill) == {f"system-{j}" for j in range(5)}
        assert sum(bill.values()) == result.stats.attributes_retrieved

    def test_bill_is_partial_not_full(self, score_matrix, systems):
        middleware = MatchMiddleware(systems)
        middleware.k_n_match(score_matrix[5], k=1, n=1)
        assert sum(middleware.access_bill().values()) < score_matrix.size / 2

    def test_reset_counters(self, score_matrix, systems):
        middleware = MatchMiddleware(systems)
        middleware.k_n_match(score_matrix[5], k=1, n=1)
        middleware.reset_counters()
        assert sum(middleware.access_bill().values()) == 0

    def test_size_mismatch_rejected(self):
        a = ScoreSystem("a", [1.0, 2.0])
        b = ScoreSystem("b", [1.0, 2.0, 3.0])
        with pytest.raises(ValidationError):
            MatchMiddleware([a, b])

    def test_duplicate_names_rejected(self):
        a = ScoreSystem("same", [1.0, 2.0])
        b = ScoreSystem("same", [3.0, 4.0])
        with pytest.raises(ValidationError):
            MatchMiddleware([a, b])

    def test_empty_systems_rejected(self):
        with pytest.raises(ValidationError):
            MatchMiddleware([])

    def test_n_bounded_by_system_count(self, systems, score_matrix):
        middleware = MatchMiddleware(systems)
        with pytest.raises(ValidationError):
            middleware.k_n_match(score_matrix[0], k=1, n=6)
