"""End-to-end request tracing: trace context, flight recorder, stitching.

The acceptance bar of the tracing PR: a trace id minted (or accepted)
per request follows the query through admission, cache, plan, scatter
and — for ``backend="process"`` — into the worker processes, whose span
trees come back stitched under their ``shard_call`` parents; slow, shed
and failed requests land in a bounded flight recorder retrievable by
trace id; and none of it changes a single response byte.
"""

import io
import json
import threading

import pytest

from repro.core.engine import MatchDatabase
from repro.errors import ValidationError
from repro.obs import (
    FLIGHT_REASONS,
    FlightRecorder,
    SpanCollector,
    TraceContext,
    TraceIdGenerator,
    format_trace_header,
    parse_trace_header,
    span_from_dict,
    span_to_dict,
    stitch_worker_spans,
)
from repro.serve import ServeApp, canonical_json
from repro.shard import ShardedMatchDatabase

TRACE_HEADER = "X-Repro-Trace"


def post(app, path, payload, headers=None):
    return app.handle("POST", path, canonical_json(payload), headers)


# ----------------------------------------------------------------------
# trace context: parse / format / deterministic minting
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_mint_shape_and_determinism(self):
        first = TraceIdGenerator(seed=7)
        second = TraceIdGenerator(seed=7)
        a, b = first.mint(), first.mint()
        assert len(a.trace_id) == 32 and len(a.parent_span_id) == 16
        assert a != b  # stream advances
        assert second.mint() == a  # same seed, same stream
        assert TraceIdGenerator(seed=8).mint() != a

    def test_header_roundtrip(self):
        context = TraceIdGenerator().mint()
        parsed = parse_trace_header(format_trace_header(context))
        assert parsed == context

    def test_bare_trace_id_accepted(self):
        parsed = parse_trace_header("ab" * 16)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16
        assert parsed.parent_span_id == "0" * 16

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "nope",
            "00-short-0000000000000000-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
            "zz-" + "a" * 32 + "-" + "1" * 16 + "-01",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",
        ],
    )
    def test_malformed_header_rejected(self, value):
        assert parse_trace_header(value) is None

    def test_header_value_is_traceparent_layout(self):
        context = TraceContext("a" * 32, "b" * 16)
        assert context.header_value() == f"00-{'a' * 32}-{'b' * 16}-01"


# ----------------------------------------------------------------------
# flight recorder: ring semantics, also under concurrency
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def record(self, recorder, trace_id, reason="slow"):
        return recorder.record(
            trace_id=trace_id, reason=reason, method="POST",
            path="/v1/query", status=200, queue_ms=0.0, handle_ms=1.0,
        )

    def test_ring_keeps_latest_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            self.record(recorder, f"t{index}")
        assert [r.trace_id for r in recorder.snapshot()] == ["t2", "t3", "t4"]
        assert recorder.dropped == 2
        assert recorder.recorded == 5
        assert recorder.find("t4").seq == 4
        assert recorder.find("t0") is None  # evicted

    def test_capacity_zero_disables(self):
        recorder = FlightRecorder(capacity=0)
        assert not recorder.enabled
        assert self.record(recorder, "t") is None
        assert recorder.snapshot() == [] and recorder.recorded == 0

    def test_bad_reason_and_capacity_rejected(self):
        with pytest.raises(ValidationError, match="reason"):
            self.record(FlightRecorder(), "t", reason="meh")
        with pytest.raises(ValidationError, match="capacity"):
            FlightRecorder(capacity=-1)
        assert set(FLIGHT_REASONS) == {"slow", "error", "shed"}

    def test_concurrent_records_keep_seq_total_order(self):
        """16 threads race; the retained window is seq-contiguous."""
        recorder = FlightRecorder(capacity=8)
        barrier = threading.Barrier(16)

        def hammer(worker):
            barrier.wait()
            for index in range(25):
                self.record(recorder, f"w{worker}.{index}")

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = recorder.snapshot()
        total = 16 * 25
        assert recorder.recorded == total
        assert recorder.dropped == total - 8
        # deterministic export order: the last 8 seqs, ascending
        assert [r.seq for r in records] == list(range(total - 8, total))

    def test_record_to_dict_sorts_detail(self):
        recorder = FlightRecorder()
        record = recorder.record(
            trace_id="t", reason="error", method="POST", path="/v1/query",
            status=400, queue_ms=0.5, handle_ms=2.0,
            detail={"engine": "ad", "cache": "miss"},
        )
        payload = record.to_dict()
        assert list(payload["detail"]) == ["cache", "engine"]
        assert payload["span"] is None
        assert payload["reason"] == "error"


# ----------------------------------------------------------------------
# span serialisation + cross-process stitching (pure, no pool)
# ----------------------------------------------------------------------
class TestStitching:
    def test_span_dict_roundtrip(self):
        spans = SpanCollector()
        with spans.span("root", engine="ad") as root:
            with spans.span("child", shard=1):
                pass
        clone = span_from_dict(span_to_dict(root))
        assert clone.name == "root" and clone.meta["engine"] == "ad"
        assert [c.name for c in clone.children] == ["child"]
        assert clone.start == root.start and clone.end == root.end

    def test_stitch_rebases_worker_clock(self):
        """Worker trees on an alien clock land inside the parent span."""
        spans = SpanCollector()
        with spans.span("shard_call", shard=0) as parent:
            pass
        worker = SpanCollector()
        with worker.span("ad/k_n_match") as tree:
            with worker.span("heap_consume"):
                pass
        duration = tree.end - tree.start
        stitch_worker_spans(parent, [tree], thread_id=4242)
        stitched = parent.children[-1]
        assert stitched.start == parent.start  # rebased, not worker clock
        assert stitched.end - stitched.start == pytest.approx(duration)
        assert stitched.thread_id == 4242
        assert parent.end >= stitched.end  # parent stretched to cover


# ----------------------------------------------------------------------
# serve integration: trace round-trip, debug endpoints, access log
# ----------------------------------------------------------------------
class TestServeTracing:
    @pytest.fixture
    def app(self, small_data):
        return ServeApp(
            MatchDatabase(small_data),
            spans=SpanCollector(),
            slow_threshold_seconds=0.0,  # record every query
        )

    def payload(self, small_query, k=3, n=4):
        return {"query": list(small_query), "k": k, "n": n}

    def trace_of(self, headers):
        value = dict(headers).get(TRACE_HEADER)
        assert value is not None
        parsed = parse_trace_header(value)
        assert parsed is not None
        return parsed

    def test_server_mints_and_echoes_trace(self, app, small_query):
        _, headers1, _ = post(app, "/v1/query", self.payload(small_query))
        _, headers2, _ = post(app, "/v1/query", self.payload(small_query))
        first, second = self.trace_of(headers1), self.trace_of(headers2)
        assert first.trace_id != second.trace_id
        # deterministic: a twin app with the same seed mints the same ids
        twin = ServeApp(MatchDatabase(app.db.data), spans=SpanCollector())
        _, twin_headers, _ = post(
            twin, "/v1/query", self.payload(small_query)
        )
        assert self.trace_of(twin_headers).trace_id == first.trace_id

    def test_client_supplied_trace_adopted(self, app, small_query):
        supplied = TraceContext("c0ffee" + "0" * 26, "deadbeef00000000")
        _, headers, _ = post(
            app, "/v1/query", self.payload(small_query),
            {"x-repro-trace": supplied.header_value()},  # any header case
        )
        assert self.trace_of(headers).trace_id == supplied.trace_id

    def test_malformed_trace_header_minted_fresh(self, app, small_query):
        _, headers, _ = post(
            app, "/v1/query", self.payload(small_query),
            {TRACE_HEADER: "not-a-trace"},
        )
        assert len(self.trace_of(headers).trace_id) == 32

    def test_responses_byte_identical_with_tracing_off(
        self, small_data, small_query
    ):
        bare = ServeApp(MatchDatabase(small_data))
        body = canonical_json(self.payload(small_query))
        traced = ServeApp(
            MatchDatabase(small_data),
            spans=SpanCollector(),
            slow_threshold_seconds=0.0,
        )
        status1, _, body1 = bare.handle("POST", "/v1/query", body)
        status2, _, body2 = traced.handle("POST", "/v1/query", body)
        assert (status1, status2) == (200, 200)
        assert body1 == body2

    def test_trace_id_lands_in_flight_and_debug_endpoints(
        self, app, small_query
    ):
        _, headers, _ = post(app, "/v1/query", self.payload(small_query))
        trace_id = self.trace_of(headers).trace_id
        status, _, body = app.handle("GET", "/v1/debug/flight", b"")
        payload = json.loads(body)
        assert status == 200
        assert payload["recorded"] == 1 and payload["dropped"] == 0
        assert payload["records"][0]["trace_id"] == trace_id
        assert payload["records"][0]["reason"] == "slow"
        assert payload["records"][0]["detail"]["kind"] == "k_n_match"
        status, _, body = app.handle(
            "GET", f"/v1/debug/trace/{trace_id}", b""
        )
        record = json.loads(body)["record"]
        assert status == 200
        assert record["span"]["name"] == "serve_handle"
        assert record["span"]["meta"]["trace_id"] == trace_id

    def test_debug_trace_unknown_id_404(self, app):
        status, _, body = app.handle(
            "GET", "/v1/debug/trace/" + "0" * 32, b""
        )
        assert status == 404
        assert json.loads(body)["error"]["type"] == "not_found"

    def test_debug_trace_chrome_format(self, app, small_query):
        _, headers, _ = post(app, "/v1/query", self.payload(small_query))
        trace_id = self.trace_of(headers).trace_id
        status, _, body = app.handle(
            "GET", f"/v1/debug/trace/{trace_id}?format=chrome", b""
        )
        chrome = json.loads(body)
        assert status == 200
        names = {event["name"] for event in chrome["traceEvents"]}
        assert "serve_handle" in names

    def test_error_requests_recorded_with_reason_error(
        self, app, small_query
    ):
        status, headers, _ = post(
            app, "/v1/query", {"query": list(small_query), "k": 0, "n": 4}
        )
        assert status == 400
        trace_id = self.trace_of(headers).trace_id
        record = app.flight.find(trace_id)
        assert record is not None and record.reason == "error"
        assert record.status == 400

    def test_flight_capacity_zero_keeps_endpoint_alive(
        self, small_data, small_query
    ):
        app = ServeApp(
            MatchDatabase(small_data),
            spans=SpanCollector(),
            slow_threshold_seconds=0.0,
            flight_capacity=0,
        )
        post(app, "/v1/query", self.payload(small_query))
        status, _, body = app.handle("GET", "/v1/debug/flight", b"")
        payload = json.loads(body)
        assert status == 200
        assert payload["capacity"] == 0 and payload["records"] == []

    def test_access_log_one_json_line_per_request(
        self, small_data, small_query
    ):
        sink = io.StringIO()
        app = ServeApp(
            MatchDatabase(small_data),
            spans=SpanCollector(),
            access_log=sink,
        )
        _, headers, _ = post(app, "/v1/query", self.payload(small_query))
        post(app, "/v1/query", self.payload(small_query))  # cache hit
        app.handle("GET", "/healthz", b"")
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert len(lines) == 3
        assert lines[0]["trace_id"] == self.trace_of(headers).trace_id
        assert lines[0]["path"] == "/v1/query" and lines[0]["status"] == 200
        assert lines[0]["cache"] == "miss" and lines[1]["cache"] == "hit"
        assert lines[2]["method"] == "GET" and lines[2]["path"] == "/healthz"
        for line in lines:
            assert line["queue_ms"] >= 0.0 and line["handle_ms"] >= 0.0

    def test_query_trace_carries_trace_id(self, small_data, small_query):
        """QueryTrace.trace_id reflects the enclosing request context."""
        spans = SpanCollector()
        db = MatchDatabase(small_data, spans=spans)
        with spans.span("serve_handle", trace_id="f" * 32):
            inside = db.k_n_match(small_query, 3, 4, trace=True)
        outside = db.k_n_match(small_query, 3, 4, trace=True)
        assert inside.trace.trace_id == "f" * 32
        assert "f" * 32 in inside.trace.summary()
        assert outside.trace.trace_id is None


# ----------------------------------------------------------------------
# the acceptance bar: worker spans from the process backend, stitched
# ----------------------------------------------------------------------
class TestProcessBackendStitching:
    @pytest.mark.slow
    def test_served_process_query_yields_stitched_worker_tree(
        self, small_data, small_query
    ):
        db = ShardedMatchDatabase(small_data, shards=2, backend="process")
        try:
            spans = SpanCollector()
            app = ServeApp(db, spans=spans, slow_threshold_seconds=0.0)
            flat = MatchDatabase(small_data).k_n_match(small_query, 5, 4)
            status, headers, body = post(
                app, "/v1/query",
                {"query": list(small_query), "k": 5, "n": 4},
            )
            assert status == 200
            answer = json.loads(body)["result"]
            assert answer["ids"] == list(flat.ids)  # still exact
            trace_id = parse_trace_header(
                dict(headers)[TRACE_HEADER]
            ).trace_id
            status, _, body = app.handle(
                "GET", f"/v1/debug/trace/{trace_id}", b""
            )
            assert status == 200
            span = json.loads(body)["record"]["span"]
            assert span["name"] == "serve_handle"

            def walk(node):
                yield node
                for child in node["children"]:
                    yield from walk(child)

            nodes = list(walk(span))
            calls = [n for n in nodes if n["name"] == "shard_call"]
            assert len(calls) == 2
            worker_phases = set()
            for call in calls:
                assert call["meta"]["backend"] == "process"
                assert call["meta"]["trace_id"] == trace_id
                assert call["children"], "no worker spans stitched"
                worker_root = call["children"][0]
                # worker rows keyed by the worker's pid, not our tid
                assert worker_root["thread_id"] == call["meta"]["worker_pid"]
                for node in walk(worker_root):
                    worker_phases.add(node["name"])
            # real engine phases crossed the process boundary
            assert worker_phases & {
                "window_grow", "heap_consume", "cursor_init"
            }
            # and the whole thing exports as a Chrome trace
            status, _, body = app.handle(
                "GET", f"/v1/debug/trace/{trace_id}?format=chrome", b""
            )
            names = {
                event["name"]
                for event in json.loads(body)["traceEvents"]
            }
            assert "shard_call" in names
            assert names & {"window_grow", "heap_consume", "cursor_init"}
        finally:
            db.close()
