"""The LSM store: WAL, segments, recovery, compaction, fault injection.

The acceptance bar everywhere is the repo-wide exactness contract: at
every instant — mid-flush, mid-compaction, after a crash at any injected
point, after a torn WAL tail — queries are **bit-identical** to the
naive oracle over the live point set, and ``generation`` is strictly
monotonic across restarts (the serve cache's soundness condition).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.errors import EmptyDatabaseError, StorageError, ValidationError
from repro.lsm import (
    LsmMatchDatabase,
    Memtable,
    Segment,
    WalWriter,
    read_wal,
    truncate_wal,
    wal_info,
)
from repro.lsm.wal import OP_DELETE, OP_INSERT, encode_record
from repro.storage.fault import FaultSchedule, InjectedCrashError

DIMS = 4


def oracle_knmatch(model, query, k, n):
    """Naive k-n-match over a ``{pid: coords}`` model (Definitions 1-3)."""
    query = np.asarray(query, dtype=np.float64)
    scored = sorted(
        (float(np.sort(np.abs(row - query))[n - 1]), pid)
        for pid, row in model.items()
    )
    return scored[: min(k, len(scored))]


def assert_oracle_identical(db, model, query, k, n):
    expected = oracle_knmatch(model, query, k, n)
    result = db.k_n_match(query, min(k, len(model)), n)
    assert result.ids == [pid for _d, pid in expected]
    assert result.differences == [d for d, _pid in expected]


def row(pid):
    """A deterministic, distinct point per pid."""
    return np.array(
        [pid * 1.0, pid * 0.5 + 0.25, (pid % 7) * 2.0, pid * 0.125],
        dtype=np.float64,
    )


def populated_store(path, count=40, delete_every=5, **kwargs):
    """A small store plus its oracle model, with flushes along the way."""
    kwargs.setdefault("memtable_flush_rows", 8)
    kwargs.setdefault("level_fanout", 2)
    kwargs.setdefault("auto_compact", False)
    db = LsmMatchDatabase(path, dimensionality=DIMS, **kwargs)
    model = {}
    for i in range(count):
        pid = db.insert(row(i))
        model[pid] = row(i)
    for pid in list(model)[::delete_every]:
        db.delete(pid)
        del model[pid]
    return db, model


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path) as wal:
            wal.append(OP_INSERT, 1, 0, np.array([1.0, 2.0, 3.0]))
            wal.append(OP_DELETE, 2, 0)
            wal.append(OP_INSERT, 3, 1, np.array([0.5, 0.25, 0.125]))
            wal.sync()
        scan = read_wal(path)
        assert not scan.torn
        assert [(r.op, r.generation, r.pid) for r in scan.records] == [
            (OP_INSERT, 1, 0),
            (OP_DELETE, 2, 0),
            (OP_INSERT, 3, 1),
        ]
        np.testing.assert_array_equal(
            scan.records[0].coords, [1.0, 2.0, 3.0]
        )
        assert scan.records[1].coords is None
        assert scan.valid_bytes == scan.total_bytes

    def test_torn_tail_stops_at_valid_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path) as wal:
            wal.append(OP_INSERT, 1, 0, np.array([1.0]))
            wal.sync()
        frame = encode_record(OP_INSERT, 2, 1, np.array([2.0]))
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        scan = read_wal(path)
        assert scan.torn and scan.reason
        assert len(scan.records) == 1
        assert scan.valid_bytes < scan.total_bytes
        truncate_wal(path, scan.valid_bytes)
        again = read_wal(path)
        assert not again.torn
        assert len(again.records) == 1

    def test_corrupt_byte_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path) as wal:
            wal.append(OP_INSERT, 1, 0, np.array([1.0]))
            wal.append(OP_INSERT, 2, 1, np.array([2.0]))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte of the last record
        path.write_bytes(bytes(blob))
        scan = read_wal(path)
        assert scan.torn and "CRC" in scan.reason
        assert len(scan.records) == 1

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a wal at all")
        with pytest.raises(StorageError, match="not a repro WAL"):
            read_wal(path)

    def test_wal_info_summary(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path) as wal:
            wal.append(OP_INSERT, 5, 0, np.array([1.0]))
            wal.append(OP_DELETE, 6, 0)
        info = wal_info(path)
        assert info["records"] == 2
        assert info["inserts"] == 1 and info["deletes"] == 1
        assert (info["min_generation"], info["max_generation"]) == (5, 6)
        assert not info["torn"]


# ----------------------------------------------------------------------
# segments and memtable
# ----------------------------------------------------------------------
class TestSegment:
    def test_save_load_roundtrip(self, tmp_path):
        rows = np.vstack([row(i) for i in range(6)])
        pids = np.arange(0, 12, 2, dtype=np.int64)
        segment = Segment(3, 1, rows, pids)
        segment.save(tmp_path)
        loaded = Segment.load(tmp_path / segment.filename)
        assert loaded.segment_id == 3 and loaded.level == 1
        np.testing.assert_array_equal(loaded.rows, rows)
        np.testing.assert_array_equal(loaded.pids, pids)

    def test_pids_must_ascend(self):
        rows = np.vstack([row(0), row(1)])
        with pytest.raises(StorageError, match="ascending"):
            Segment(0, 0, rows, np.array([5, 5], dtype=np.int64))

    def test_memtable_preserves_insertion_order(self):
        table = Memtable(DIMS)
        table.add(row(4), 4)
        table.add(row(9), 9)
        rows, pids = table.live_arrays(set())
        np.testing.assert_array_equal(pids, [4, 9])
        rows, pids = table.live_arrays({4})
        np.testing.assert_array_equal(pids, [9])


# ----------------------------------------------------------------------
# the store: CRUD, flush, compaction, oracle identity
# ----------------------------------------------------------------------
class TestStore:
    def test_queries_match_oracle_through_churn(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        assert db.segment_count > 1  # flushes actually happened
        query = np.array([3.3, 1.1, 4.4, 0.9])
        for n in range(1, DIMS + 1):
            assert_oracle_identical(db, model, query, 5, n)
        db.close()

    def test_frequent_matches_oracle(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        query = row(17) + 0.3
        result = db.frequent_k_n_match(query, 4, (1, DIMS))
        for n, ids in result.answer_sets.items():
            expected = [pid for _d, pid in oracle_knmatch(model, query, 4, n)]
            assert ids == expected
        db.close()

    def test_compaction_preserves_answers(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        query = np.array([9.0, 2.0, 6.0, 1.0])
        before = db.k_n_match(query, 6, 2)
        rounds = db.compact()
        assert rounds >= 1
        after = db.k_n_match(query, 6, 2)
        assert before.ids == after.ids
        assert before.differences == after.differences
        assert db.tombstone_count == 0  # fully reclaimed
        assert_oracle_identical(db, model, query, 6, 2)
        db.close()

    def test_cardinality_and_membership(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        assert db.cardinality == len(model) == len(db)
        for pid in list(model)[:5]:
            assert pid in db
            np.testing.assert_array_equal(db.get_point(pid), model[pid])
        gone = next(iter(set(range(40)) - set(model)))
        assert gone not in db
        with pytest.raises(ValidationError):
            db.get_point(gone)
        db.close()

    def test_delete_validation(self, tmp_path):
        db = LsmMatchDatabase(
            tmp_path / "store", dimensionality=DIMS, auto_compact=False
        )
        with pytest.raises(ValidationError, match="does not exist"):
            db.delete(0)
        pid = db.insert(row(0))
        db.delete(pid)
        with pytest.raises(ValidationError, match="does not exist"):
            db.delete(pid)
        db.close()

    def test_empty_store_rejects_queries(self, tmp_path):
        db = LsmMatchDatabase(
            tmp_path / "store", dimensionality=DIMS, auto_compact=False
        )
        with pytest.raises(EmptyDatabaseError):
            db.k_n_match(row(0), 1, 1)
        db.close()

    def test_snapshot_is_pid_sorted_and_live(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        rows, pids = db.snapshot()
        assert list(pids) == sorted(model)
        for coords, pid in zip(rows, pids):
            np.testing.assert_array_equal(coords, model[pid])
        db.close()


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_clean_restart_is_identical_and_monotonic(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        generation = db.generation
        query = np.array([2.0, 7.0, 1.0, 3.0])
        expected = db.k_n_match(query, 5, 2)
        db.close()

        recovered = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert recovered.generation > generation
        assert recovered.cardinality == len(model)
        result = recovered.k_n_match(query, 5, 2)
        assert result.ids == expected.ids
        assert result.differences == expected.differences
        # ids never reused: the next insert continues past every old pid
        new_pid = recovered.insert(row(99))
        assert new_pid == 40
        recovered.close()

    def test_abandoned_process_recovers_from_wal(self, tmp_path):
        # No close(): the WAL (unbuffered) is the only durable record of
        # the memtable's tail.  Recovery must replay it exactly.
        db, model = populated_store(tmp_path / "store")
        db._wal._handle.close()  # simulate sudden process death
        recovered = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert recovered.cardinality == len(model)
        assert_oracle_identical(
            recovered, model, np.array([1.0, 1.0, 1.0, 1.0]), 5, 2
        )
        recovered.close()

    def test_torn_wal_tail_is_truncated(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        db._wal._handle.close()
        wal_path = os.path.join(db.directory, "wal.log")
        with open(wal_path, "ab") as handle:
            handle.write(b"\x07garbage-tail\xff\xff")
        recovered = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert recovered.recovered_torn_wal
        assert recovered.cardinality == len(model)
        assert_oracle_identical(
            recovered, model, np.array([5.0, 0.5, 2.0, 4.0]), 6, 3
        )
        recovered.close()

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(StorageError, match="no manifest"):
            LsmMatchDatabase.recover(tmp_path / "nothing")

    def test_dimensionality_mismatch_rejected(self, tmp_path):
        db = LsmMatchDatabase(
            tmp_path / "store", dimensionality=DIMS, auto_compact=False
        )
        db.close()
        with pytest.raises(ValidationError, match="does not match"):
            LsmMatchDatabase(
                tmp_path / "store",
                dimensionality=DIMS + 1,
                auto_compact=False,
            )


# ----------------------------------------------------------------------
# injected crashes: every scheduled point must recover exactly
# ----------------------------------------------------------------------
class TestCrashPoints:
    def run_to_crash(self, tmp_path, fault):
        """Drive a store until ``fault`` fires; returns the oracle model.

        Every crash point fires *after* the mutation's WAL record is
        durable, so an in-flight mutation that raised is still applied
        by recovery — the model is updated before the call for exactly
        that reason (a crashed-but-logged mutation is a committed one).
        """
        db = LsmMatchDatabase(
            tmp_path / "store",
            dimensionality=DIMS,
            memtable_flush_rows=4,
            level_fanout=2,
            auto_compact=False,
            fault=fault,
        )
        model = {}
        crashed = False
        try:
            for i in range(30):
                model[i] = row(i)  # WAL-first: durable even if this raises
                db.insert(row(i))
                if i % 3 == 2:
                    del model[i]
                    db.delete(i)
        except InjectedCrashError:
            crashed = True
        if not crashed:
            try:
                db.compact()  # some points only fire during compaction
            except InjectedCrashError:
                crashed = True
        assert crashed and fault.fired, "the scheduled fault never fired"
        return model

    def recover_and_check(self, tmp_path, model):
        db = LsmMatchDatabase.recover(tmp_path / "store", auto_compact=False)
        live = set(int(p) for p in db.snapshot()[1])
        assert live == set(model)
        assert_oracle_identical(
            db, model, np.array([4.0, 4.0, 4.0, 4.0]), 5, 2
        )
        db.close()

    @pytest.mark.parametrize(
        "point",
        [
            "mutate:after-wal",
            "flush:before-segment",
            "flush:before-manifest",
            "flush:before-wal-reset",
            "compact:after-segment",
            "compact:before-manifest",
        ],
    )
    def test_every_crash_point_recovers_exactly(self, tmp_path, point):
        # Flush/compact never change the live set, and a mutation whose
        # WAL record landed is committed; either way recovery must serve
        # exactly the logged live set.
        model = self.run_to_crash(
            tmp_path, FaultSchedule(crash_points=(point,))
        )
        self.recover_and_check(tmp_path, model)

    def test_torn_write_loses_only_the_torn_record(self, tmp_path):
        db = LsmMatchDatabase(
            tmp_path / "store",
            dimensionality=DIMS,
            memtable_flush_rows=100,
            auto_compact=False,
        )
        model = {}
        for i in range(5):
            pid = db.insert(row(i))
            model[pid] = row(i)
        # Cut the power mid-append of the next record.
        db._fault = FaultSchedule(wal_torn_after_bytes=10)
        db._wal._fault = db._fault
        with pytest.raises(InjectedCrashError, match="torn WAL write"):
            db.insert(row(5))
        recovered = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert recovered.recovered_torn_wal
        assert set(recovered.snapshot()[1]) == set(model)
        assert_oracle_identical(
            recovered, model, np.array([2.0, 1.0, 2.0, 1.0]), 4, 2
        )
        recovered.close()

    def test_generation_survives_every_crash_point(self, tmp_path):
        fault = FaultSchedule(crash_points=("flush:before-wal-reset",))
        self.run_to_crash(tmp_path, fault)
        first = LsmMatchDatabase.recover(tmp_path / "store", auto_compact=False)
        g1 = first.generation
        first.insert(row(50))
        g2 = first.generation
        assert g2 > g1
        first._wal._handle.close()  # die again, unsynced
        second = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert second.generation > g2
        second.close()


# ----------------------------------------------------------------------
# concurrency: readers never blocked beyond the swap
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_query_racing_compaction_is_exact(self, tmp_path, monkeypatch):
        db, model = populated_store(tmp_path / "store", count=60)
        query = np.array([7.0, 3.0, 5.0, 2.0])
        expected = oracle_knmatch(model, query, 6, 2)

        real_merge = db._merge_level
        entered = threading.Event()

        def slow_merge(*args, **kwargs):
            entered.set()
            time.sleep(0.25)  # hold the merge window open, lock NOT held
            return real_merge(*args, **kwargs)

        monkeypatch.setattr(db, "_merge_level", slow_merge)
        worker = threading.Thread(target=db.compact_once)
        worker.start()
        assert entered.wait(timeout=5.0)
        # Queries land inside the merge window; the live set is stable
        # (no writers), so every answer must be bit-identical.
        inside = 0
        while worker.is_alive():
            result = db.k_n_match(query, 6, 2)
            assert result.ids == [pid for _d, pid in expected]
            inside += 1
        worker.join()
        assert inside > 0
        after = db.k_n_match(query, 6, 2)
        assert after.ids == [pid for _d, pid in expected]
        db.close()

    def test_writer_reader_compactor_stress(self, tmp_path):
        db = LsmMatchDatabase(
            tmp_path / "store",
            dimensionality=DIMS,
            memtable_flush_rows=8,
            level_fanout=2,
            auto_compact=True,  # background compactor thread lives
        )
        model_lock = threading.Lock()
        model = {}
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(150):
                    pid = db.insert(row(i))
                    with model_lock:
                        model[pid] = row(i)
                    if i % 4 == 3:
                        with model_lock:
                            victim = next(iter(model))
                            del model[victim]
                        db.delete(victim)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)
            finally:
                stop.set()

        def reader():
            query = np.array([10.0, 5.0, 5.0, 2.0])
            try:
                while not stop.is_set():
                    try:
                        result = db.k_n_match(query, 3, 2)
                    except EmptyDatabaseError:
                        continue
                    assert len(set(result.ids)) == len(result.ids)
                    assert result.differences == sorted(result.differences)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert db._compactor.check() is None  # compactor thread healthy
        # Quiescent: the final state must match the model exactly.
        assert_oracle_identical(
            db, model, np.array([10.0, 5.0, 5.0, 2.0]), 5, 2
        )
        db.close()
        # ... and survive a restart bit-identically.
        recovered = LsmMatchDatabase.recover(
            tmp_path / "store", auto_compact=False
        )
        assert_oracle_identical(
            recovered, model, np.array([10.0, 5.0, 5.0, 2.0]), 5, 2
        )
        recovered.close()


# ----------------------------------------------------------------------
# observability and accounting
# ----------------------------------------------------------------------
class TestObservability:
    def test_metrics_and_spans(self, tmp_path):
        from repro.obs import MetricsRegistry, SpanCollector, render_prometheus

        registry = MetricsRegistry()
        spans = SpanCollector()
        db = LsmMatchDatabase(
            tmp_path / "store",
            dimensionality=DIMS,
            memtable_flush_rows=4,
            level_fanout=2,
            auto_compact=False,
            metrics=registry,
            spans=spans,
        )
        for i in range(12):
            db.insert(row(i))
        db.delete(3)
        db.k_n_match(row(5), 3, 2)
        db.compact()
        text = render_prometheus(registry)
        for name in (
            "repro_lsm_mutations_total",
            "repro_lsm_wal_bytes_total",
            "repro_lsm_flushes_total",
            "repro_lsm_compactions_total",
            "repro_lsm_segments",
            "repro_lsm_live_points",
            "repro_lsm_write_amplification",
        ):
            assert name in text, name
        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children:
                walk(child)

        for root in spans.traces():
            walk(root)
        assert {"lsm/insert", "lsm/delete", "lsm/k_n_match"} <= names
        assert {"wal_append", "memtable_scan", "merge"} <= names
        assert "segment_search" in names
        db.close()

    def test_zero_cost_without_registry(self, tmp_path):
        db, model = populated_store(tmp_path / "store")
        assert db.metrics is None and db.spans is None
        assert_oracle_identical(
            db, model, np.array([1.0, 2.0, 3.0, 4.0]), 4, 2
        )
        db.close()

    def test_write_amplification_accounting(self, tmp_path):
        db, _model = populated_store(tmp_path / "store")
        assert db.write_amplification > 1.0  # flushed more than once
        layout = db.level_layout()
        assert sum(level["rows"] for level in layout) == sum(
            s.cardinality for s in db._segments
        )
        db.close()


class TestInfo:
    def test_info_is_json_friendly(self, tmp_path):
        import json

        db, model = populated_store(tmp_path / "store")
        db.compact()
        status = db.info()
        json.dumps(status)  # must serialise
        assert status["cardinality"] == len(model)
        assert status["last_compaction"]["segments_merged"] >= 2
        db.close()
