"""Hypothesis stateful testing of DynamicMatchDatabase.

The state machine mirrors every operation against a plain Python model
(a dict of live points) and, after each step, checks a randomly
parameterised query against a from-scratch oracle.  This hunts for the
bugs example-based tests miss: interactions between buffered inserts,
tombstones on base vs buffer points, auto-compaction timing and query
over-fetching.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DynamicMatchDatabase

DIMS = 3

coords = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    min_size=DIMS,
    max_size=DIMS,
)


class DynamicDatabaseMachine(RuleBasedStateMachine):
    @initialize(rows=st.lists(coords, min_size=1, max_size=8))
    def setup(self, rows):
        data = np.asarray(rows, dtype=np.float64)
        # tiny thresholds so compactions happen *during* the run
        self.db = DynamicMatchDatabase(
            data, min_buffer=3, compaction_threshold=0.2
        )
        self.model = {pid: data[pid].copy() for pid in range(data.shape[0])}

    @rule(point=coords)
    def insert(self, point):
        pid = self.db.insert(np.asarray(point))
        assert pid not in self.model  # ids never reused
        self.model[pid] = np.asarray(point, dtype=np.float64)

    @precondition(lambda self: len(self.model) > 1)
    @rule(which=st.integers(0, 10**6))
    def delete(self, which):
        victims = sorted(self.model)
        victim = victims[which % len(victims)]
        self.db.delete(victim)
        del self.model[victim]

    @rule()
    def compact(self):
        self.db.compact()

    @rule(query=coords, k_seed=st.integers(1, 5), n=st.integers(1, DIMS))
    def query_matches_oracle(self, query, k_seed, n):
        k = min(k_seed, len(self.model))
        query = np.asarray(query, dtype=np.float64)
        result = self.db.k_n_match(query, k, n)
        # oracle: exact per-pid n-match differences from the model
        scored = sorted(
            (float(np.sort(np.abs(row - query))[n - 1]), pid)
            for pid, row in self.model.items()
        )
        expected = [pid for _diff, pid in scored[:k]]
        assert result.ids == expected

    @invariant()
    def cardinality_matches_model(self):
        if hasattr(self, "db"):
            assert self.db.cardinality == len(self.model)

    @invariant()
    def membership_matches_model(self):
        if hasattr(self, "db"):
            for pid in list(self.model)[:5]:
                assert pid in self.db


DynamicDatabaseMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDynamicDatabaseStateful = DynamicDatabaseMachine.TestCase
