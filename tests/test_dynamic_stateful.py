"""Hypothesis stateful testing of the mutable stores, crashes included.

The state machines mirror every operation against a plain Python model
(a dict of live points) and, after each step, check a randomly
parameterised query against a from-scratch oracle.  This hunts for the
bugs example-based tests miss: interactions between buffered inserts,
tombstones on base vs buffer points, auto-compaction timing and query
over-fetching — and, for both :class:`DynamicMatchDatabase` and
:class:`LsmMatchDatabase`, ``crash()``/``recover()`` interleaved with
the mutations: after any such interleaving the recovered store must
answer bit-identically to the oracle, with a strictly larger
``generation`` than any it handed out before the crash.
"""

import shutil
import tempfile

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DynamicMatchDatabase
from repro.lsm import LsmMatchDatabase

DIMS = 3

coords = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    min_size=DIMS,
    max_size=DIMS,
)


class DynamicDatabaseMachine(RuleBasedStateMachine):
    @initialize(rows=st.lists(coords, min_size=1, max_size=8))
    def setup(self, rows):
        data = np.asarray(rows, dtype=np.float64)
        # tiny thresholds so compactions happen *during* the run
        self.db = DynamicMatchDatabase(
            data, min_buffer=3, compaction_threshold=0.2
        )
        self.model = {pid: data[pid].copy() for pid in range(data.shape[0])}

    @rule(point=coords)
    def insert(self, point):
        pid = self.db.insert(np.asarray(point))
        assert pid not in self.model  # ids never reused
        self.model[pid] = np.asarray(point, dtype=np.float64)

    @precondition(lambda self: len(self.model) > 1)
    @rule(which=st.integers(0, 10**6))
    def delete(self, which):
        victims = sorted(self.model)
        victim = victims[which % len(victims)]
        self.db.delete(victim)
        del self.model[victim]

    @rule()
    def compact(self):
        self.db.compact()

    @rule(query=coords, k_seed=st.integers(1, 5), n=st.integers(1, DIMS))
    def query_matches_oracle(self, query, k_seed, n):
        k = min(k_seed, len(self.model))
        query = np.asarray(query, dtype=np.float64)
        result = self.db.k_n_match(query, k, n)
        # oracle: exact per-pid n-match differences from the model
        scored = sorted(
            (float(np.sort(np.abs(row - query))[n - 1]), pid)
            for pid, row in self.model.items()
        )
        expected = [pid for _diff, pid in scored[:k]]
        assert result.ids == expected

    @invariant()
    def cardinality_matches_model(self):
        if hasattr(self, "db"):
            assert self.db.cardinality == len(self.model)

    @invariant()
    def membership_matches_model(self):
        if hasattr(self, "db"):
            for pid in list(self.model)[:5]:
                assert pid in self.db


class DynamicCrashRecoverMachine(DynamicDatabaseMachine):
    """The dynamic machine plus snapshot-based crash/recover.

    A "crash" of the in-memory store is losing the object; durability is
    whatever the caller snapshotted.  ``from_snapshot`` must rebuild the
    exact live set and resume the generation strictly past the
    snapshot's, so a serve cache keyed on (generation, query) can never
    alias a pre-crash entry.
    """

    @initialize(rows=st.lists(coords, min_size=1, max_size=8))
    def setup(self, rows):
        super().setup(rows)
        self.crashed_state = None

    @precondition(lambda self: getattr(self, "crashed_state", None) is None)
    @rule()
    def crash(self):
        rows, pids = self.db.snapshot()
        self.crashed_state = (rows, pids, self.db.generation)
        self.db = None

    @precondition(lambda self: getattr(self, "crashed_state", None) is not None)
    @rule()
    def recover(self):
        rows, pids, generation = self.crashed_state
        self.db = DynamicMatchDatabase.from_snapshot(
            rows, pids, generation=generation,
            min_buffer=3, compaction_threshold=0.2,
        )
        self.crashed_state = None
        assert self.db.generation > generation
        assert self.db.cardinality == len(self.model)
        assert set(int(p) for p in self.db.snapshot()[1]) == set(self.model)

    # While crashed there is no database to poke: gate every inherited
    # operation (and invariant) on being alive.
    def _alive(self):
        return getattr(self, "crashed_state", None) is None

    insert = precondition(_alive)(DynamicDatabaseMachine.insert)
    delete = precondition(_alive)(DynamicDatabaseMachine.delete)
    compact = precondition(_alive)(DynamicDatabaseMachine.compact)
    query_matches_oracle = precondition(_alive)(
        DynamicDatabaseMachine.query_matches_oracle
    )

    @invariant()
    def cardinality_matches_model(self):
        if hasattr(self, "db") and self.db is not None:
            assert self.db.cardinality == len(self.model)

    @invariant()
    def membership_matches_model(self):
        if hasattr(self, "db") and self.db is not None:
            for pid in list(self.model)[:5]:
                assert pid in self.db


class LsmCrashRecoverMachine(RuleBasedStateMachine):
    """insert/delete/query/flush/compact/crash/recover against the oracle.

    A crash abandons the store object without closing it (the WAL is
    unbuffered, so everything a returned mutation logged is durable);
    recovery replays the log and must serve the exact live set with a
    strictly larger generation.
    """

    def __init__(self):
        super().__init__()
        self.directory = tempfile.mkdtemp(prefix="lsm-stateful-")
        self.db = None

    def teardown(self):
        if self.db is not None:
            self.db.close()
        shutil.rmtree(self.directory, ignore_errors=True)

    @initialize()
    def setup(self):
        # Tiny thresholds so flushes and compactions happen mid-run.
        self.db = LsmMatchDatabase(
            self.directory,
            dimensionality=DIMS,
            memtable_flush_rows=3,
            level_fanout=2,
            generation_reserve=4,
            auto_compact=False,
        )
        self.model = {}
        self.max_generation = self.db.generation

    def _alive(self):
        return self.db is not None

    def _bump(self):
        assert self.db.generation > self.max_generation
        self.max_generation = self.db.generation

    @precondition(_alive)
    @rule(point=coords)
    def insert(self, point):
        pid = self.db.insert(np.asarray(point))
        assert pid not in self.model  # ids never reused
        self.model[pid] = np.asarray(point, dtype=np.float64)
        self._bump()

    @precondition(lambda self: self._alive() and self.model)
    @rule(which=st.integers(0, 10**6))
    def delete(self, which):
        victims = sorted(self.model)
        victim = victims[which % len(victims)]
        self.db.delete(victim)
        del self.model[victim]
        self._bump()

    @precondition(_alive)
    @rule()
    def flush(self):
        self.db.flush()

    @precondition(_alive)
    @rule()
    def compact(self):
        self.db.compact()

    @precondition(_alive)
    @rule()
    def crash(self):
        # Sudden death: no close(), no final sync.  Being in-process,
        # every write() already reached the OS (the WAL is unbuffered).
        self.db._wal._handle.close()
        self.db = None

    @precondition(lambda self: self.db is None)
    @rule()
    def recover(self):
        self.db = LsmMatchDatabase.recover(self.directory, auto_compact=False)
        # Strictly monotonic across the crash: no generation the dead
        # store handed out may ever be reused.
        assert self.db.generation > self.max_generation
        self.max_generation = self.db.generation
        assert set(int(p) for p in self.db.snapshot()[1]) == set(self.model)

    @precondition(lambda self: self._alive() and self.model)
    @rule(query=coords, k_seed=st.integers(1, 5), n=st.integers(1, DIMS))
    def query_matches_oracle(self, query, k_seed, n):
        k = min(k_seed, len(self.model))
        query = np.asarray(query, dtype=np.float64)
        result = self.db.k_n_match(query, k, n)
        scored = sorted(
            (float(np.sort(np.abs(row - query))[n - 1]), pid)
            for pid, row in self.model.items()
        )
        assert result.ids == [pid for _diff, pid in scored[:k]]
        assert result.differences == [diff for diff, _pid in scored[:k]]

    @invariant()
    def cardinality_matches_model(self):
        if self.db is not None:
            assert self.db.cardinality == len(self.model)


DynamicDatabaseMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDynamicDatabaseStateful = DynamicDatabaseMachine.TestCase

DynamicCrashRecoverMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestDynamicCrashRecoverStateful = DynamicCrashRecoverMachine.TestCase

LsmCrashRecoverMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestLsmCrashRecoverStateful = LsmCrashRecoverMachine.TestCase
