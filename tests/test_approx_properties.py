"""Property-based soundness of the approximate tier (hypothesis).

The one invariant everything else hangs on: **measured recall >=
certified recall on every query** — flat and sharded facades, both
engines, tie-heavy data, every budget including the degenerate ends
(``budget=0`` certifies nothing; an unbounded budget is bit-identical
to exact ``block-ad``).  Plus the anytime satellite: a budgeted prefix
is always a prefix of the exact AD answer, ties and all.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.approx import APPROX_ENGINE_NAMES
from repro.core.engine import MatchDatabase
from repro.eval import certificate_holds, tie_aware_match_recall
from repro.shard import ShardedMatchDatabase

# Coarse grids make ties the common case, not the corner case: a
# (30 x 4) draw from 5 levels collides constantly, which is exactly
# where naive certificates break.
tie_values = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


def tie_workloads(max_c=40, max_d=5):
    return st.tuples(st.integers(4, max_c), st.integers(2, max_d)).flatmap(
        lambda shape: st.tuples(
            arrays(np.float64, shape, elements=tie_values),
            arrays(np.float64, shape[1], elements=tie_values),
        )
    )


def exact_block_ad(database, query, k, n):
    return MatchDatabase(database).k_n_match(query, k, n, engine="block-ad")


class TestCertificateSoundness:
    @settings(max_examples=50, deadline=None)
    @given(tie_workloads(), st.data())
    def test_flat_measured_recall_dominates_certified(self, workload, data):
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(8, c)))
        n = data.draw(st.integers(1, d))
        budget = data.draw(
            st.one_of(st.just(0), st.integers(1, c * d), st.none())
        )
        engine = data.draw(st.sampled_from(APPROX_ENGINE_NAMES))
        db = MatchDatabase(database)
        result = db.k_n_match(
            query, k, n, mode="approx", engine=engine, budget=budget
        )
        exact = exact_block_ad(database, query, k, n)
        assert certificate_holds(
            result.certified_recall, result.differences, exact.differences
        )
        assert 0.0 <= result.certified_recall <= 1.0
        assert result.certified_count <= len(result.ids)
        # reported differences are exact (approximation never lies)
        truth = np.sort(np.abs(database - query), axis=1)[:, n - 1]
        for pid, diff in result:
            assert abs(diff - truth[pid]) <= 1e-12

    @settings(max_examples=25, deadline=None)
    @given(tie_workloads(), st.data())
    def test_sharded_measured_recall_dominates_certified(self, workload, data):
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(8, c)))
        n = data.draw(st.integers(1, d))
        shards = data.draw(st.integers(2, 4))
        budget = data.draw(
            st.one_of(st.just(0), st.integers(1, c * d), st.none())
        )
        db = ShardedMatchDatabase(database, shards=shards)
        try:
            result = db.k_n_match(query, k, n, mode="approx", budget=budget)
        finally:
            db.close()
        exact = exact_block_ad(database, query, k, n)
        assert certificate_holds(
            result.certified_recall, result.differences, exact.differences
        )

    @settings(max_examples=25, deadline=None)
    @given(tie_workloads(), st.data())
    def test_zero_budget_certifies_nothing(self, workload, data):
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(6, c)))
        n = data.draw(st.integers(1, d))
        db = MatchDatabase(database)
        result = db.k_n_match(query, k, n, mode="approx", budget=0)
        assert result.certified_recall == 0.0
        assert not result.exact


class TestExactnessEnds:
    @settings(max_examples=30, deadline=None)
    @given(tie_workloads(), st.data())
    def test_unbounded_budget_is_bit_identical(self, workload, data):
        """budget >= total (and target_recall=1.0) reproduce block-ad
        byte for byte: same ids, same differences, same tie order."""
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(8, c)))
        n = data.draw(st.integers(1, d))
        exact = exact_block_ad(database, query, k, n)
        db = MatchDatabase(database)
        for kwargs in ({"budget": c * d}, {"target_recall": 1.0}):
            result = db.k_n_match(query, k, n, mode="approx", **kwargs)
            assert result.exact
            assert result.certified_recall == 1.0
            assert result.ids == exact.ids
            assert result.differences == exact.differences

    @settings(max_examples=15, deadline=None)
    @given(tie_workloads(), st.data())
    def test_sharded_unbounded_budget_is_bit_identical(self, workload, data):
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(8, c)))
        n = data.draw(st.integers(1, d))
        shards = data.draw(st.integers(2, 4))
        exact = exact_block_ad(database, query, k, n)
        db = ShardedMatchDatabase(database, shards=shards)
        try:
            result = db.k_n_match(
                query, k, n, mode="approx", target_recall=1.0
            )
        finally:
            db.close()
        assert result.exact
        assert result.ids == exact.ids
        assert result.differences == exact.differences

    @settings(max_examples=30, deadline=None)
    @given(tie_workloads(), st.data())
    def test_recall_monotone_in_budget(self, workload, data):
        """More budget never certifies less (budget-ad)."""
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(6, c)))
        n = data.draw(st.integers(1, d))
        db = MatchDatabase(database)
        budgets = sorted(
            data.draw(
                st.lists(
                    st.integers(0, c * d), min_size=2, max_size=4, unique=True
                )
            )
        )
        certified = [
            db.k_n_match(
                query, k, n, mode="approx", budget=budget
            ).certified_recall
            for budget in budgets
        ]
        assert certified == sorted(certified)


class TestAnytimePrefixProperty:
    @settings(max_examples=40, deadline=None)
    @given(tie_workloads(), st.data())
    def test_budgeted_prefix_of_exact_ad_under_ties(self, workload, data):
        """Satellite invariant: the anytime engine's verified prefix is
        a *prefix* of the exact AD answer — identical ids in identical
        order — on deliberately tie-heavy data, for every budget."""
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(10, c)))
        n = data.draw(st.integers(1, d))
        budget = data.draw(st.integers(0, c * d + 5))
        db = MatchDatabase(database)
        exact = db.k_n_match(query, k, n, engine="ad")
        partial = db.k_n_match(
            query, k, n, engine="anytime", attribute_budget=budget
        )
        assert partial.ids == list(exact.ids)[: len(partial.ids)]
        np.testing.assert_allclose(
            partial.differences,
            list(exact.differences)[: len(partial.ids)],
            atol=1e-12,
        )
        if partial.exact:
            assert len(partial.ids) == min(k, c)

    @settings(max_examples=20, deadline=None)
    @given(tie_workloads(), st.data())
    def test_unseen_bound_sound(self, workload, data):
        database, query = workload
        c, d = database.shape
        k = data.draw(st.integers(1, min(10, c)))
        n = data.draw(st.integers(1, d))
        budget = data.draw(st.integers(0, c * d))
        db = MatchDatabase(database)
        partial = db.k_n_match(
            query, k, n, engine="anytime", attribute_budget=budget
        )
        if partial.unseen_lower_bound is None:
            return
        truth = np.sort(np.abs(database - query), axis=1)[:, n - 1]
        returned = set(partial.ids)
        for pid in range(c):
            if pid not in returned:
                assert truth[pid] >= partial.unseen_lower_bound - 1e-12


class TestEvalHelpers:
    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(0, 1, allow_nan=False, width=32),
        )
    )
    def test_recall_of_exact_answer_is_one(self, diffs):
        ordered = np.sort(diffs)
        assert tie_aware_match_recall(ordered, ordered) == 1.0

    def test_tie_blindness_scored_as_hit(self):
        # a different-but-equidistant id must not count as a miss
        assert tie_aware_match_recall([0.5], [0.5]) == 1.0
        assert tie_aware_match_recall([0.7], [0.5]) == 0.0
        assert tie_aware_match_recall([], [0.5]) == 0.0
        assert tie_aware_match_recall([0.1], []) == 1.0
