"""Planning the approximate tier (``mode="approx"``).

The planner's approx track must (a) only ever pick approx engines, and
only when the caller declared ``mode="approx"``; (b) cache approx and
exact decisions under distinct keys; (c) drop candidates whose observed
certified recall falls short of the target; and (d) fall back to the
certified default engine — never an exact engine — when nothing can be
priced.  Executed approx queries feed their certificates back into the
cost curves (:meth:`PlanModel.observe_recall`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MatchDatabase
from repro.approx import (
    APPROX_ENGINE_NAMES,
    APPROX_FREQUENT_MESSAGE,
    DEFAULT_APPROX_ENGINE,
    ApproxResult,
)
from repro.errors import ValidationError
from repro.plan import CostCurve, PlanModel, QueryPlanner
from repro.shard import ShardedMatchDatabase


@pytest.fixture
def db(rng):
    return MatchDatabase(rng.random((200, 6)))


def approx_model(budget_recall=None, sketch_recall=None):
    """Curves that make pivot-sketch the predictable cheap choice."""
    model = PlanModel(
        {
            "budget-ad": CostCurve(
                "budget-ad", 1e-6, source="bench",
                mean_recall=budget_recall,
                recall_samples=0 if budget_recall is None else 5,
            ),
            "pivot-sketch": CostCurve(
                "pivot-sketch", 1e-8, source="bench",
                mean_recall=sketch_recall,
                recall_samples=0 if sketch_recall is None else 5,
            ),
        }
    )
    return model


class TestPlanApprox:
    def test_only_approx_engines_eligible(self, db):
        db.set_plan_model(approx_model())
        plan = db.plan_query("k_n_match", 5, (3, 3), mode="approx")
        assert plan.mode == "approx"
        assert plan.engine in APPROX_ENGINE_NAMES
        assert set(plan.candidates) <= set(APPROX_ENGINE_NAMES)

    def test_exact_plan_never_picks_approx(self, db):
        plan = db.plan_query("k_n_match", 5, (3, 3))
        assert plan.mode == "exact"
        assert plan.engine not in APPROX_ENGINE_NAMES

    def test_cache_keys_distinct(self, db):
        db.set_plan_model(approx_model())
        exact = db.plan_query("k_n_match", 5, (3, 3))
        approx = db.plan_query("k_n_match", 5, (3, 3), mode="approx")
        again = db.plan_query("k_n_match", 5, (3, 3), mode="approx")
        assert exact is not approx
        assert approx is again  # cached decision object
        other_target = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.5
        )
        assert other_target is not approx

    def test_low_recall_candidate_dropped(self, db):
        """pivot-sketch is cheapest but has observed recall below the
        target; the planner must prefer the engine that delivers."""
        db.set_plan_model(
            approx_model(budget_recall=0.95, sketch_recall=0.3)
        )
        plan = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.9
        )
        assert plan.engine == "budget-ad"
        relaxed = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.2
        )
        assert relaxed.engine == "pivot-sketch"

    def test_unknown_recall_passes_filter(self, db):
        db.set_plan_model(approx_model())
        plan = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.99
        )
        assert plan.engine == "pivot-sketch"  # cheapest, recall unknown

    def test_all_below_target_still_approx(self, db):
        db.set_plan_model(
            approx_model(budget_recall=0.1, sketch_recall=0.1)
        )
        plan = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.9
        )
        assert plan.engine in APPROX_ENGINE_NAMES  # never exact

    def test_frequent_rejected(self, db):
        with pytest.raises(ValidationError) as info:
            db.plan_query("frequent_k_n_match", 5, (1, 4), mode="approx")
        assert str(info.value) == APPROX_FREQUENT_MESSAGE

    def test_probing_fits_curves(self, db):
        """With no curves at all, planning probes real queries and fits
        both cost and recall tracks."""
        plan = db.plan_query(
            "k_n_match", 5, (3, 3), mode="approx", target_recall=0.8
        )
        assert plan.engine in APPROX_ENGINE_NAMES
        assert not plan.fallback
        model = db.planner.model
        assert all(model.has_curve(name) for name in APPROX_ENGINE_NAMES)


class TestAutoEngineApprox:
    def test_engine_auto_under_mode_approx(self, db, rng):
        db.set_plan_model(approx_model())
        query = rng.random(6)
        result = db.k_n_match(
            query, 5, 3, mode="approx", engine="auto", target_recall=0.9
        )
        assert isinstance(result, ApproxResult)
        assert result.engine in APPROX_ENGINE_NAMES

    def test_sharded_auto(self, rng):
        data = rng.random((150, 5))
        db = ShardedMatchDatabase(data, shards=3)
        try:
            result = db.k_n_match(
                data[0], 5, 3, mode="approx", engine="auto", budget=200
            )
            assert isinstance(result, ApproxResult)
        finally:
            db.close()

    def test_executed_queries_feed_recall_back(self, db, rng):
        db.set_plan_model(approx_model())
        query = rng.random(6)
        db.k_n_match(query, 5, 3, mode="approx", engine="auto", budget=500)
        model = db.planner.model
        observed = [
            model.predict_recall(name)
            for name in APPROX_ENGINE_NAMES
            if model.predict_recall(name) is not None
        ]
        assert observed  # at least the executed engine recorded one


class TestRecallModel:
    def test_observe_recall_windowed_mean(self):
        model = approx_model()
        for value in (0.5, 1.0):
            model.observe_recall("budget-ad", value)
        mean = model.predict_recall("budget-ad")
        assert 0.5 < mean <= 1.0
        model.observe_recall("nonexistent", 0.9)  # ignored, no curve
        assert model.predict_recall("nonexistent") is None

    def test_recall_clamped(self):
        model = approx_model()
        model.observe_recall("budget-ad", 7.0)
        assert model.predict_recall("budget-ad") == 1.0

    def test_sidecar_roundtrip_keeps_recall(self, tmp_path):
        from repro.plan import load_plan_model, save_plan_model

        model = approx_model(budget_recall=0.75, sketch_recall=0.5)
        base = tmp_path / "db.npz"
        save_plan_model(model, base)
        back = load_plan_model(base)
        assert back.predict_recall("budget-ad") == 0.75
        assert back.predict_recall("pivot-sketch") == 0.5

    def test_old_sidecar_without_recall_fields(self, tmp_path):
        """Pre-approx sidecars (no recall fields) still load."""
        import json

        from repro.plan import load_plan_model
        from repro.plan.model import PLAN_MODEL_VERSION

        path = tmp_path / "db.npz.plan.json"
        path.write_text(
            json.dumps(
                {
                    "version": PLAN_MODEL_VERSION,
                    "curves": {
                        "block-ad": {
                            "engine": "block-ad",
                            "seconds_per_cell": 1e-7,
                            "base_seconds": 0.0,
                            "source": "bench",
                            "samples": 1,
                        }
                    },
                }
            )
        )
        model = load_plan_model(tmp_path / "db.npz")
        assert model.has_curve("block-ad")
        assert model.predict_recall("block-ad") is None

    def test_fallback_when_probing_impossible(self, db, monkeypatch):
        """If probes fail and no curves exist, the plan still stays in
        the approx tier: the certified default engine, flagged."""
        planner = db.planner
        monkeypatch.setattr(
            QueryPlanner,
            "_probe_approx",
            lambda self, *a, **kw: None,
        )
        monkeypatch.setattr(
            PlanModel, "predict", lambda self, engine, cells: None
        )
        plan = planner.plan("k_n_match", 5, (3, 3), mode="approx")
        assert plan.fallback
        assert plan.engine == DEFAULT_APPROX_ENGINE
        assert plan.mode == "approx"
