"""VA-file quantizer, bounds and the two-phase search engine."""

import numpy as np
import pytest

from conftest import assert_valid_frequent, reference_differences
from repro.core.naive import NaiveScanEngine
from repro.errors import ValidationError
from repro.vafile import VAFile, VAFileEngine, VAQuantizer


class TestQuantizer:
    def test_encode_within_cell_count(self, small_data):
        quantizer = VAQuantizer(small_data, bits=8)
        cells = quantizer.encode(small_data)
        assert cells.min() >= 0
        assert cells.max() <= 255

    def test_value_inside_its_cell(self, small_data):
        quantizer = VAQuantizer(small_data, bits=6)
        cells = quantizer.encode(small_data)
        for j in (0, 7):
            lo, hi = quantizer.cell_bounds(j, cells[:, j])
            assert np.all(small_data[:, j] >= lo - 1e-9)
            assert np.all(small_data[:, j] <= hi + 1e-9)

    def test_difference_bounds_bracket_truth(self, small_data, small_query):
        quantizer = VAQuantizer(small_data, bits=5)
        cells = quantizer.encode(small_data)
        for j in range(small_data.shape[1]):
            lower, upper = quantizer.difference_bounds(
                j, cells[:, j], float(small_query[j])
            )
            truth = np.abs(small_data[:, j] - small_query[j])
            assert np.all(lower <= truth + 1e-9)
            assert np.all(truth <= upper + 1e-9)
            assert np.all(lower >= 0)

    def test_query_inside_cell_has_zero_lower_bound(self):
        data = np.array([[0.5], [0.1]])
        quantizer = VAQuantizer(data, bits=2)
        cells = quantizer.encode(np.array([[0.5]]))
        lower, _upper = quantizer.difference_bounds(0, cells[:, 0], 0.5)
        assert lower[0] == 0.0

    def test_constant_dimension(self):
        data = np.array([[0.5, 1.0], [0.5, 2.0]])
        quantizer = VAQuantizer(data, bits=4)
        cells = quantizer.encode(data)
        assert cells[0, 0] == cells[1, 0]

    def test_bits_validation(self, small_data):
        with pytest.raises(ValidationError):
            VAQuantizer(small_data, bits=0)
        with pytest.raises(ValidationError):
            VAQuantizer(small_data, bits=17)

    def test_bytes_per_point(self, small_data):
        assert VAQuantizer(small_data, bits=8).bytes_per_point() == 8
        assert VAQuantizer(small_data, bits=4).bytes_per_point() == 4


class TestVAFileStructure:
    def test_approximation_file_is_quarter_of_data(self, small_data):
        va = VAFile(small_data, bits=8)
        # 8 bits/dim vs 32-bit attributes -> 25% as the paper notes
        data_bytes = small_data.shape[0] * small_data.shape[1] * 4
        approx_bytes = va.quantizer.bytes_per_point() * small_data.shape[0]
        assert approx_bytes * 4 == data_bytes
        assert va.approximation_page_count == -(-approx_bytes // va.pager.page_size)

    def test_match_bounds_bracket_truth(self, small_data, small_query):
        va = VAFile(small_data, bits=6)
        for n in (1, 4, 8):
            lb, ub = va.match_difference_bounds(small_query, n)
            truth = reference_differences(small_data, small_query, n)
            assert np.all(lb <= truth + 1e-9)
            assert np.all(truth <= ub + 1e-9)

    def test_scan_approximation_is_sequential(self, small_data):
        va = VAFile(small_data)
        va.pager.reset_counters()
        va.scan_approximation()
        recorder = va.pager.recorder
        assert recorder.random_reads == 1
        assert recorder.sequential_reads == va.approximation_page_count - 1


class TestVAFileEngine:
    @pytest.mark.parametrize("n", [1, 4, 8])
    def test_k_n_match_matches_oracle(self, small_data, small_query, n):
        va = VAFileEngine(small_data).k_n_match(small_query, 9, n)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 9, n)
        assert va.ids == naive.ids
        np.testing.assert_allclose(va.differences, naive.differences, atol=1e-6)

    def test_frequent_matches_oracle(self, small_data, small_query):
        va = VAFileEngine(small_data).frequent_k_n_match(small_query, 8, (3, 7))
        naive = NaiveScanEngine(small_data).frequent_k_n_match(
            small_query, 8, (3, 7)
        )
        assert va.ids == naive.ids
        assert va.answer_sets == naive.answer_sets
        assert_valid_frequent(small_data, small_query, (3, 7), 8, va.answer_sets)

    def test_pruning_leaves_few_candidates(self, rng):
        data = rng.random((5000, 8)).astype(np.float32).astype(np.float64)
        query = rng.random(8).astype(np.float32).astype(np.float64)
        stats = VAFileEngine(data).k_n_match(query, 10, 4).stats
        assert stats.candidates_refined < 5000 / 4

    def test_stats_counters(self, small_data, small_query):
        stats = VAFileEngine(small_data).frequent_k_n_match(
            small_query, 5, (2, 6)
        ).stats
        assert stats.approximation_entries_scanned == small_data.size
        assert stats.candidates_refined >= 5
        assert stats.attributes_retrieved == stats.candidates_refined * 8
        assert stats.page_reads > 0

    def test_coarse_quantizer_still_correct(self, small_data, small_query):
        va = VAFileEngine(small_data, bits=2).k_n_match(small_query, 6, 5)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 6, 5)
        assert va.ids == naive.ids

    def test_coarser_bits_refine_more(self, small_data, small_query):
        fine = VAFileEngine(small_data, bits=8).k_n_match(small_query, 6, 5)
        coarse = VAFileEngine(small_data, bits=2).k_n_match(small_query, 6, 5)
        assert (
            coarse.stats.candidates_refined >= fine.stats.candidates_refined
        )

    def test_k_equals_cardinality(self, small_data, small_query):
        result = VAFileEngine(small_data).k_n_match(small_query, 300, 4)
        assert sorted(result.ids) == list(range(300))
