"""Unit tests for repro.core.types."""

import math

import pytest

from repro.core.types import (
    FrequentMatchResult,
    MatchResult,
    SearchStats,
    rank_by_frequency,
)


class TestSearchStats:
    def test_defaults_are_zero(self):
        stats = SearchStats()
        assert stats.attributes_retrieved == 0
        assert stats.page_reads == 0
        assert stats.fraction_retrieved == 0.0

    def test_page_reads_sums_both_kinds(self):
        stats = SearchStats(sequential_page_reads=7, random_page_reads=3)
        assert stats.page_reads == 10

    def test_fraction_retrieved(self):
        stats = SearchStats(attributes_retrieved=25, total_attributes=100)
        assert stats.fraction_retrieved == pytest.approx(0.25)

    def test_merge_sums_counters(self):
        a = SearchStats(attributes_retrieved=10, heap_pops=5, total_attributes=100)
        b = SearchStats(attributes_retrieved=3, random_page_reads=2, total_attributes=100)
        merged = a.merge(b)
        assert merged.attributes_retrieved == 13
        assert merged.heap_pops == 5
        assert merged.random_page_reads == 2
        assert merged.total_attributes == 100  # max, not sum

    def test_merge_does_not_mutate(self):
        a = SearchStats(attributes_retrieved=1)
        b = SearchStats(attributes_retrieved=2)
        a.merge(b)
        assert a.attributes_retrieved == 1
        assert b.attributes_retrieved == 2

    def test_add_operator_is_merge(self):
        a = SearchStats(attributes_retrieved=10, total_attributes=100)
        b = SearchStats(attributes_retrieved=3, heap_pops=4, total_attributes=100)
        assert a + b == a.merge(b)

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            SearchStats() + 1

    def test_sum_builtin(self):
        stats = [
            SearchStats(attributes_retrieved=i, total_attributes=50)
            for i in (1, 2, 3)
        ]
        total = sum(stats)
        assert total.attributes_retrieved == 6
        assert total.total_attributes == 50

    def test_aggregate(self):
        stats = [
            SearchStats(points_scanned=2, total_attributes=10),
            SearchStats(points_scanned=5, total_attributes=10),
        ]
        total = SearchStats.aggregate(stats)
        assert total.points_scanned == 7
        assert total.total_attributes == 10
        assert SearchStats.aggregate([]) == SearchStats()


class TestMatchResult:
    def test_iteration_and_len(self):
        result = MatchResult(ids=[4, 9], differences=[0.1, 0.2], k=2, n=3)
        assert len(result) == 2
        assert list(result) == [(4, 0.1), (9, 0.2)]

    def test_match_difference_is_max(self):
        result = MatchResult(ids=[4, 9], differences=[0.1, 0.2], k=2, n=3)
        assert result.match_difference == pytest.approx(0.2)

    def test_empty_match_difference_is_nan(self):
        result = MatchResult(ids=[], differences=[], k=1, n=1)
        assert math.isnan(result.match_difference)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MatchResult(ids=[1], differences=[0.1, 0.2], k=2, n=1)


class TestFrequentMatchResult:
    def test_iteration(self):
        result = FrequentMatchResult(
            ids=[4, 9], frequencies=[5, 3], k=2, n_range=(1, 5)
        )
        assert list(result) == [(4, 5), (9, 3)]
        assert len(result) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FrequentMatchResult(ids=[1, 2], frequencies=[1], k=2, n_range=(1, 2))


class TestRankByFrequency:
    def test_counts_appearances(self):
        sets = {1: [10, 20], 2: [20, 30], 3: [20, 10]}
        ids, freqs = rank_by_frequency(sets, k=2)
        assert ids == [20, 10]
        assert freqs == [3, 2]

    def test_tie_broken_by_best_rank(self):
        # 10 and 20 both appear twice; 20 once ranked first, 10 never.
        sets = {1: [20, 10], 2: [30, 10, 20]}
        ids, freqs = rank_by_frequency(sets, k=2)
        assert ids == [20, 10]
        assert freqs == [2, 2]

    def test_tie_broken_by_id_last(self):
        sets = {1: [7, 5]}  # both appear once; 7 has the better rank
        ids, _ = rank_by_frequency(sets, k=2)
        assert ids == [7, 5]
        sets = {1: [5], 2: [7]}  # identical frequency and rank -> id order
        ids, _ = rank_by_frequency(sets, k=2)
        assert ids == [5, 7]

    def test_k_larger_than_distinct_ids(self):
        ids, freqs = rank_by_frequency({1: [1], 2: [1]}, k=5)
        assert ids == [1]
        assert freqs == [2]

    def test_empty_sets(self):
        ids, freqs = rank_by_frequency({}, k=3)
        assert ids == []
        assert freqs == []
