"""IGrid: equi-depth partitioning, inverted index, proximity search."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.igrid import (
    EquiDepthPartition,
    IGridEngine,
    IGridIndex,
    default_bin_count,
)


class TestDefaultBins:
    def test_half_dimensionality(self):
        assert default_bin_count(16) == 8
        assert default_bin_count(48) == 24

    def test_floor_of_two(self):
        assert default_bin_count(2) == 2
        assert default_bin_count(3) == 2


class TestEquiDepthPartition:
    def test_balanced_counts(self, rng):
        values = rng.random(1000)
        partition = EquiDepthPartition(values, bins=8)
        assignment = partition.assign(values)
        counts = np.bincount(assignment, minlength=partition.bins)
        assert counts.min() >= 1000 / 8 - 2
        assert counts.max() <= 1000 / 8 + 2

    def test_assign_respects_boundaries(self, rng):
        values = rng.random(500)
        partition = EquiDepthPartition(values, bins=5)
        assignment = partition.assign(values)
        for r in range(partition.bins):
            members = values[assignment == r]
            if members.size:
                assert members.min() >= partition.boundaries[r] - 1e-12
                assert members.max() <= partition.boundaries[r + 1] + 1e-12

    def test_out_of_domain_values_clamp(self, rng):
        partition = EquiDepthPartition(rng.random(100), bins=4)
        assert partition.assign(np.array([-5.0]))[0] == 0
        assert partition.assign(np.array([5.0]))[0] == partition.bins - 1

    def test_constant_values_degenerate(self):
        partition = EquiDepthPartition(np.full(50, 0.7), bins=4)
        assert partition.bins == 1
        assert partition.assign(np.array([0.7]))[0] == 0

    def test_heavy_ties_collapse_boundaries(self):
        values = np.concatenate([np.zeros(90), np.ones(10)])
        partition = EquiDepthPartition(values, bins=10)
        assert partition.bins < 10  # duplicates collapsed
        assignment = partition.assign(values)
        assert len(set(assignment.tolist())) >= 2

    def test_width(self, rng):
        partition = EquiDepthPartition(rng.random(100), bins=4)
        for r in range(partition.bins):
            assert partition.width(r) >= 0
        with pytest.raises(ValidationError):
            partition.width(partition.bins)

    def test_validation(self):
        with pytest.raises(ValidationError):
            EquiDepthPartition(np.empty(0), bins=2)
        with pytest.raises(ValidationError):
            EquiDepthPartition(np.ones(5), bins=0)


class TestIGridIndex:
    def test_lists_partition_points_per_dimension(self, small_data):
        index = IGridIndex(small_data, bins=4)
        for j in range(small_data.shape[1]):
            seen = []
            for r in range(index.partitions[j].bins):
                pids, values = index.inverted_list(j, r)
                seen.extend(pids.tolist())
                np.testing.assert_allclose(values, small_data[pids, j])
            assert sorted(seen) == list(range(small_data.shape[0]))

    def test_fragmented_layout(self, rng):
        """The dynamic build scatters a list's pages across the pool, so
        reading one list is mostly seeks — the paper's IGrid critique."""
        data = rng.random((20000, 8))
        index = IGridIndex(data, bins=4)
        index.pager.reset_counters()
        index.inverted_list(0, 0)
        recorder = index.pager.recorder
        assert recorder.total_reads >= 5
        assert recorder.random_reads > recorder.sequential_reads

    def test_invalid_access(self, small_data):
        index = IGridIndex(small_data, bins=4)
        with pytest.raises(ValidationError):
            index.inverted_list(99, 0)
        with pytest.raises(ValidationError):
            index.inverted_list(0, 99)
        with pytest.raises(ValidationError):
            IGridIndex(small_data, bins=0)


class TestIGridEngine:
    def test_exact_point_ranks_first(self, small_data):
        engine = IGridEngine(small_data)
        result = engine.top_k(small_data[17], k=5)
        assert result.ids[0] == 17
        assert result.scores[0] == max(result.scores)

    def test_scores_descending(self, small_data, small_query):
        result = IGridEngine(small_data).top_k(small_query, k=10)
        assert result.scores == sorted(result.scores, reverse=True)
        assert len(result) == 10

    def test_stats_entries_near_expected_fraction(self, small_data, small_query):
        engine = IGridEngine(small_data, bins=4)
        stats = engine.top_k(small_query, k=5).stats
        c, d = small_data.shape
        expected = d * c / 4
        assert 0.5 * expected <= stats.inverted_list_entries <= 1.5 * expected
        assert stats.attributes_retrieved == stats.inverted_list_entries

    def test_p_parameter_validated(self, small_data):
        with pytest.raises(ValueError):
            IGridEngine(small_data, p=0.0)

    def test_constant_dimension_handled(self):
        data = np.column_stack([np.full(60, 0.5), np.linspace(0, 1, 60)])
        engine = IGridEngine(data, bins=3)
        result = engine.top_k(np.array([0.5, 0.52]), k=3)
        assert len(result.ids) == 3

    def test_iteration(self, small_data, small_query):
        result = IGridEngine(small_data).top_k(small_query, k=3)
        pairs = list(result)
        assert len(pairs) == 3
        assert pairs[0][0] == result.ids[0]
