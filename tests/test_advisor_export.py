"""The cost advisor and the export utilities."""

import json

import numpy as np
import pytest

from repro import MatchDatabase
from repro.core.advisor import (
    CostEstimate,
    estimate_fraction_retrieved,
    recommend_engine,
    sample_row_ids,
)
from repro.errors import ValidationError
from repro.eval import (
    experiment_to_csv,
    experiment_to_json,
    result_to_dict,
    stats_to_dict,
    write_experiment_csv,
)
from repro.experiments.common import ExperimentResult


@pytest.fixture
def db(small_data):
    return MatchDatabase(small_data)


class TestEstimate:
    def test_fractions_in_unit_interval(self, db):
        estimate = estimate_fraction_retrieved(db, 5, (2, 5))
        assert 0 < estimate.mean_fraction <= 1
        assert estimate.mean_fraction <= estimate.max_fraction <= 1
        assert estimate.sample_size == 5

    def test_monotone_in_n1(self, db):
        low = estimate_fraction_retrieved(db, 5, (2, 3), seed=1)
        high = estimate_fraction_retrieved(db, 5, (2, 8), seed=1)
        assert low.mean_fraction < high.mean_fraction

    def test_deterministic_per_seed(self, db):
        a = estimate_fraction_retrieved(db, 5, (2, 5), seed=7)
        b = estimate_fraction_retrieved(db, 5, (2, 5), seed=7)
        assert a == b

    def test_sample_bounded_by_cardinality(self, rng):
        tiny = MatchDatabase(rng.random((3, 4)))
        estimate = estimate_fraction_retrieved(tiny, 1, (1, 2), sample_queries=50)
        assert estimate.sample_size == 3

    def test_validation(self, db):
        with pytest.raises(ValidationError):
            estimate_fraction_retrieved(db, 0, (1, 2))
        with pytest.raises(ValidationError):
            estimate_fraction_retrieved(db, 1, (5, 2))
        with pytest.raises(ValidationError):
            estimate_fraction_retrieved(db, 1, (1, 2), sample_queries=0)

    def test_str(self, db):
        text = str(estimate_fraction_retrieved(db, 5, (2, 5)))
        assert "k=5" in text and "%" in text

    def test_kind_defaults_to_frequent(self, db):
        estimate = estimate_fraction_retrieved(db, 5, (2, 5), seed=3)
        assert estimate.kind == "frequent"
        # Positional construction predating the kind field still works.
        legacy = CostEstimate(5, (2, 5), 5, 0.1, 0.2)
        assert legacy.kind == "frequent"

    def test_plain_kind_estimates_differ_on_ranges(self, rng):
        # The original advisor estimated every workload with a frequent
        # query, over-charging plain k-n-match range workloads: a
        # frequent (n0, n1) query must certify *every* n simultaneously,
        # while a plain workload issues independent single-n queries
        # whose average cost is strictly cheaper on tie-heavy data.
        tied = np.round(rng.random((250, 6)) * 4) / 4
        db = MatchDatabase(tied)
        frequent = estimate_fraction_retrieved(db, 5, (2, 5), seed=9)
        plain = estimate_fraction_retrieved(db, 5, (2, 5), seed=9, kind="k-n-match")
        assert frequent.kind == "frequent"
        assert plain.kind == "k-n-match"
        assert plain.mean_fraction < frequent.mean_fraction

    def test_plain_kind_matches_frequent_at_fixed_n(self, db):
        # At a degenerate range (n, n) the two kinds describe the same
        # query, so their costs must coincide exactly.
        frequent = estimate_fraction_retrieved(db, 5, (4, 4), seed=2)
        plain = estimate_fraction_retrieved(db, 5, (4, 4), seed=2, kind="k-n-match")
        assert plain.mean_fraction == frequent.mean_fraction
        assert plain.max_fraction == frequent.max_fraction

    def test_invalid_kind(self, db):
        with pytest.raises(ValidationError):
            estimate_fraction_retrieved(db, 5, (2, 5), kind="approximate")


class TestSampleRowIds:
    def test_deterministic_distinct_and_bounded(self):
        ids = sample_row_ids(1000, 10, seed=4)
        assert list(ids) == list(sample_row_ids(1000, 10, seed=4))
        assert len(ids) == len(set(ids.tolist())) == 10
        assert all(0 <= i < 1000 for i in ids)

    def test_full_population_when_size_exceeds_cardinality(self):
        assert sorted(sample_row_ids(5, 50).tolist()) == [0, 1, 2, 3, 4]

    def test_seed_changes_sample(self):
        a = sample_row_ids(10_000, 8, seed=1)
        b = sample_row_ids(10_000, 8, seed=2)
        assert list(a) != list(b)


class TestRecommendation:
    def test_attributes_mode_always_ad(self, db):
        advice = recommend_engine(db, 5, (2, 8), minimize="attributes")
        assert advice.engine == "ad"
        assert "Thm 3.2" in advice.reason

    def test_wall_clock_low_fraction_block_ad(self, db):
        fake = CostEstimate(5, (2, 4), 5, mean_fraction=0.1, max_fraction=0.2)
        advice = recommend_engine(db, 5, (2, 4), estimate=fake)
        assert advice.engine == "block-ad"

    def test_wall_clock_high_fraction_naive(self, db):
        fake = CostEstimate(5, (2, 8), 5, mean_fraction=0.9, max_fraction=0.95)
        advice = recommend_engine(db, 5, (2, 8), estimate=fake)
        assert advice.engine == "naive"

    def test_invalid_mode(self, db):
        with pytest.raises(ValidationError):
            recommend_engine(db, 5, (2, 4), minimize="latency")

    def test_disk_time_prices_all_disk_engines(self, db):
        advice = recommend_engine(db, 5, (2, 5), minimize="disk-time")
        assert advice.engine in {"naive", "disk-ad", "va-file"}
        # The reason quotes every priced alternative, not just the winner.
        for name in ("disk-ad", "naive", "va-file"):
            assert name in advice.reason

    def test_disk_time_respects_disk_model(self, db):
        from repro.storage import DEFAULT_DISK_MODEL

        slow_seq = DEFAULT_DISK_MODEL.with_page_size(4 * DEFAULT_DISK_MODEL.page_size)
        a = recommend_engine(db, 5, (2, 5), minimize="disk-time")
        b = recommend_engine(
            db, 5, (2, 5), minimize="disk-time", disk_model=slow_seq
        )
        # Same decision procedure, different priced costs in the reason.
        assert a.reason != b.reason

    def test_recommended_engine_actually_runs(self, db, small_query):
        advice = recommend_engine(db, 5, (2, 5))
        result = db.frequent_k_n_match(small_query, 5, (2, 5), engine=advice.engine)
        assert len(result.ids) == 5


class TestExport:
    def test_stats_to_dict(self, db, small_query):
        result = db.k_n_match(small_query, 3, 4)
        payload = stats_to_dict(result.stats)
        assert payload["attributes_retrieved"] == result.stats.attributes_retrieved
        assert payload["fraction_retrieved"] == result.stats.fraction_retrieved
        assert "page_reads" in payload

    def test_match_result_round_trips_through_json(self, db, small_query):
        result = db.k_n_match(small_query, 3, 4)
        payload = result_to_dict(result)
        restored = json.loads(json.dumps(payload))
        assert restored["kind"] == "k-n-match"
        assert restored["ids"] == result.ids

    def test_frequent_result_serialises_answer_sets(self, db, small_query):
        result = db.frequent_k_n_match(small_query, 3, (2, 4))
        payload = result_to_dict(result)
        assert payload["kind"] == "frequent-k-n-match"
        assert set(payload["answer_sets"]) == {"2", "3", "4"}

    def test_result_to_dict_rejects_other_types(self):
        with pytest.raises(ValidationError):
            result_to_dict({"not": "a result"})

    def test_experiment_json_and_csv(self):
        experiment = ExperimentResult(
            "Figure 99(a)", "demo", ["x", "y"], [[1, 0.5], [2, None]], ["hello"]
        )
        payload = json.loads(experiment_to_json(experiment))
        assert payload["experiment"] == "Figure 99(a)"
        csv_text = experiment_to_csv(experiment)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[2] == "2,"  # None -> empty cell

    def test_write_experiment_csv(self, tmp_path):
        experiments = [
            ExperimentResult("Table 9", "demo", ["a"], [[1]]),
            ExperimentResult("Figure 9(b)", "demo", ["b"], [[2]]),
        ]
        paths = write_experiment_csv(experiments, tmp_path / "out")
        assert len(paths) == 2
        assert paths[0].endswith("table_9.csv")
        assert paths[1].endswith("figure_9_b.csv")
        for path in paths:
            assert open(path).read().strip()
