"""The perf-regression gate (``benchmarks/regress.py``), on fixtures.

Builds small BENCH_*.json fixtures in a temp directory and checks the
flattening (config-signature keying, not positional), the comparison
classification, and the process-level contract: exit 0 when within
tolerance, exit 1 on an injected regression or an unmet
``--require-match``, exit 2 on unusable inputs.
"""

import importlib.util
import json
import os
import sys

import pytest

_REGRESS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "regress.py",
)
_spec = importlib.util.spec_from_file_location("regress", _REGRESS_PATH)
regress = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("regress", regress)
_spec.loader.exec_module(regress)


def _report(rate_a=100.0, rate_b=500.0):
    return {
        "benchmark": "bench_demo",
        "mode": "full",
        "timestamp": "2026-01-01T00:00:00",
        "repeats": 5,
        "results": [
            {
                "cardinality": 1000,
                "k": 5,
                "serial": {"seconds": 1.0, "queries_per_second": rate_a},
                "parallel": {
                    "2": {"seconds": 0.2, "queries_per_second": rate_b}
                },
            }
        ],
    }


def _write(directory, name, report):
    path = directory / name
    path.write_text(json.dumps(report))
    return path


class TestExtraction:
    def test_keys_use_config_signature_not_position(self):
        rates = regress.extract_rates(_report())
        assert rates == {
            "bench_demo:results[cardinality=1000,k=5].serial": 100.0,
            "bench_demo:results[cardinality=1000,k=5].parallel.2": 500.0,
        }

    def test_reordered_results_produce_identical_keys(self):
        report = _report()
        entry = dict(report["results"][0], cardinality=2000)
        report["results"].append(entry)
        reordered = dict(report, results=list(reversed(report["results"])))
        assert regress.extract_rates(report) == regress.extract_rates(
            reordered
        )

    def test_measurement_fields_are_not_identity(self):
        faster = _report()
        faster["results"][0]["serial"]["seconds"] = 0.5
        assert set(regress.extract_rates(_report())) == set(
            regress.extract_rates(faster)
        )

    def test_real_reports_extract(self, tmp_path):
        # The committed benchmark reports must stay flattenable — the
        # gate is only as good as its coverage of the real schema.
        root = os.path.dirname(os.path.dirname(_REGRESS_PATH))
        rates = regress.collect_reports(root)
        assert len(rates) >= 10
        assert all(rate > 0 for rate in rates.values())
        assert any(key.startswith("bench_obs:") for key in rates)
        assert any(key.startswith("bench_batch:") for key in rates)


class TestCompare:
    def test_within_tolerance_passes(self):
        baseline = {"a": 100.0, "b": 50.0}
        current = {"a": 80.0, "b": 60.0}
        regressions, matched, unmatched = regress.compare(
            baseline, current, threshold=0.5
        )
        assert regressions == []
        assert matched == ["a", "b"]
        assert unmatched == []

    def test_regression_is_flagged(self):
        regressions, _, _ = regress.compare(
            {"a": 100.0}, {"a": 40.0}, threshold=0.5
        )
        assert len(regressions) == 1
        key, base, cur, change = regressions[0]
        assert (key, base, cur) == ("a", 100.0, 40.0)
        assert change == pytest.approx(-0.6)

    def test_unmatched_keys_do_not_fail(self):
        regressions, matched, unmatched = regress.compare(
            {"a": 100.0, "old": 1.0}, {"a": 100.0, "new": 1.0}, threshold=0.5
        )
        assert regressions == []
        assert matched == ["a"]
        assert unmatched == ["new", "old"]


class TestMain:
    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        _write(base, "BENCH_demo.json", _report())
        _write(cur, "BENCH_demo.json", _report())
        status = regress.main(
            [
                "--baseline", str(base),
                "--current", str(cur),
                "--require-match", "2",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "2 matched, 0 unmatched, 0 regressed" in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        _write(base, "BENCH_demo.json", _report())
        _write(cur, "BENCH_demo.json", _report(rate_a=10.0))  # 10x collapse
        status = regress.main(
            ["--baseline", str(base), "--current", str(cur)]
        )
        assert status == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_require_match_guards_vacuous_comparisons(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        _write(base, "BENCH_demo.json", _report())
        other = dict(_report(), benchmark="bench_other")
        _write(cur, "BENCH_other.json", other)
        assert (
            regress.main(["--baseline", str(base), "--current", str(cur)])
            == 0
        )
        capsys.readouterr()
        status = regress.main(
            [
                "--baseline", str(base),
                "--current", str(cur),
                "--require-match", "1",
            ]
        )
        assert status == 1
        assert "--require-match" in capsys.readouterr().err

    def test_missing_reports_exit_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        status = regress.main(
            ["--baseline", str(empty), "--current", str(empty)]
        )
        assert status == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_corrupt_report_exits_two(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_bad.json").write_text("{not json")
        status = regress.main(
            ["--baseline", str(base), "--current", str(base)]
        )
        assert status == 2
        assert "cannot read report" in capsys.readouterr().err

    def test_list_mode(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        _write(base, "BENCH_demo.json", _report())
        assert regress.main(["--list", str(base)]) == 0
        out = capsys.readouterr().out
        assert "2 throughput keys" in out
        assert "bench_demo:results[cardinality=1000,k=5].serial" in out
