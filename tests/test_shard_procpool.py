"""The process backend: shared-memory pool, bit-identity, lifecycle.

The contract under test: ``backend="process"`` must be invisible in the
answers.  Every query kind (single, frequent, batch, frequent-batch)
must return ids, differences, frequencies, answer sets *and stats*
bit-identical to the thread backend and to serial execution, across
partitioners and shard counts, on tie-heavy data — the merge-order
worst case.  The compact identity block runs tier-1; the full
partitioner x shard-count x engine matrix is marked ``tier2``.

The lifecycle half covers what exactness tests cannot: worker death
surfaces as a structured :class:`ShardWorkerError` (never a hang) and
the pool recovers; remote exceptions ship back as errors without
killing workers; ``close()`` is idempotent, restart-friendly, shared
via one context-manager contract with the thread backend, and never
leaks a shared-memory segment — including on exception paths.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.engine import MatchDatabase
from repro.errors import ShardWorkerError, ValidationError
from repro.shard import (
    SHARD_BACKENDS,
    ShardProcessPool,
    ShardedMatchDatabase,
    validate_shard_backend,
)

CANONICAL_ENGINES = ("naive", "block-ad", "batch-block-ad")
ALL_PARTITIONERS = ("round-robin", "hash", "range")


@pytest.fixture
def tie_data(rng) -> np.ndarray:
    """60 x 6 points on a coarse integer grid: ties everywhere."""
    return rng.integers(0, 5, size=(60, 6)).astype(np.float64)


@pytest.fixture
def tie_query() -> np.ndarray:
    return np.full(6, 2.0)


@pytest.fixture
def tie_batch(rng) -> np.ndarray:
    return rng.integers(0, 5, size=(5, 6)).astype(np.float64)


def _shm_names() -> set:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {n for n in os.listdir("/dev/shm") if n.startswith("repro-shard-")}


@pytest.fixture
def no_segment_leak():
    """Fail the test if it leaves new repro shared-memory segments behind."""
    before = _shm_names()
    yield
    leaked = _shm_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def assert_same_match(a, b):
    assert a.ids == b.ids
    assert a.differences == b.differences
    assert a.stats == b.stats


def assert_same_frequent(a, b):
    assert a.ids == b.ids
    assert a.frequencies == b.frequencies
    assert a.answer_sets == b.answer_sets
    assert a.stats == b.stats


def _run_all_kinds(db, query, batch, engine=None):
    """One result tuple covering every scatter kind."""
    return (
        db.k_n_match(query, k=7, n=3, engine=engine),
        db.frequent_k_n_match(query, k=5, n_range=(1, 6), engine=engine),
        db.k_n_match_batch(batch, k=4, n=2, engine=engine),
        db.frequent_k_n_match_batch(
            batch, k=3, n_range=(2, 5), engine=engine, keep_answer_sets=True
        ),
    )


def _assert_same_all_kinds(got, want):
    assert_same_match(got[0], want[0])
    assert_same_frequent(got[1], want[1])
    assert len(got[2]) == len(want[2])
    for a, b in zip(got[2], want[2]):
        assert_same_match(a, b)
    assert len(got[3]) == len(want[3])
    for a, b in zip(got[3], want[3]):
        assert_same_frequent(a, b)


# ----------------------------------------------------------------------
# bit-identity: process vs thread vs serial
# ----------------------------------------------------------------------


class TestProcessBackendIdentity:
    def test_all_kinds_match_thread_and_serial(
        self, tie_data, tie_query, tie_batch, no_segment_leak
    ):
        serial = ShardedMatchDatabase(
            tie_data, shards=1, default_engine="block-ad", workers=1
        )
        thread = ShardedMatchDatabase(
            tie_data, shards=3, default_engine="block-ad"
        )
        with ShardedMatchDatabase(
            tie_data, shards=3, default_engine="block-ad",
            backend="process", workers=2,
        ) as process:
            assert process.backend == "process"
            assert thread.backend == "thread"
            got = _run_all_kinds(process, tie_query, tie_batch)
            _assert_same_all_kinds(got, _run_all_kinds(thread, tie_query, tie_batch))
            # serial merges 1 shard, so stats denominators match but the
            # answers are the real cross-check
            want = _run_all_kinds(serial, tie_query, tie_batch)
            assert got[0].ids == want[0].ids
            assert got[0].differences == want[0].differences
            assert got[1].ids == want[1].ids
            assert got[1].answer_sets == want[1].answer_sets
            assert [r.ids for r in got[2]] == [r.ids for r in want[2]]
            assert [r.ids for r in got[3]] == [r.ids for r in want[3]]
            assert process.last_batch_stats.backend == "process"
            assert thread.last_batch_stats.backend == "thread"

    def test_engine_override_and_k_clamp(
        self, tie_data, tie_query, no_segment_leak
    ):
        # k > smallest shard: per-shard clamp must match the thread path
        thread = ShardedMatchDatabase(
            tie_data, shards=7, partitioner="hash", default_engine="block-ad"
        )
        with ShardedMatchDatabase(
            tie_data, shards=7, partitioner="hash", default_engine="block-ad",
            backend="process",
        ) as process:
            for engine in ("naive", "batch-block-ad"):
                assert_same_match(
                    process.k_n_match(tie_query, k=20, n=4, engine=engine),
                    thread.k_n_match(tie_query, k=20, n=4, engine=engine),
                )


@pytest.mark.tier2
class TestProcessBackendPropertyMatrix:
    """The full matrix the acceptance criteria call for."""

    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS)
    @pytest.mark.parametrize("shards", (1, 3, 7))
    def test_matrix(
        self, partitioner, shards, tie_data, tie_query, tie_batch,
        no_segment_leak,
    ):
        serial = MatchDatabase(tie_data, default_engine="block-ad")
        thread = ShardedMatchDatabase(
            tie_data, shards=shards, partitioner=partitioner,
            default_engine="block-ad",
        )
        with ShardedMatchDatabase(
            tie_data, shards=shards, partitioner=partitioner,
            default_engine="block-ad", backend="process", workers=2,
        ) as process:
            for engine in CANONICAL_ENGINES:
                got = _run_all_kinds(process, tie_query, tie_batch, engine)
                _assert_same_all_kinds(
                    got, _run_all_kinds(thread, tie_query, tie_batch, engine)
                )
                want = _run_all_kinds(serial, tie_query, tie_batch, engine)
                assert got[0].ids == want[0].ids
                assert got[0].differences == want[0].differences
                assert got[1].ids == want[1].ids
                assert got[1].answer_sets == want[1].answer_sets
                assert [r.ids for r in got[2]] == [r.ids for r in want[2]]
                assert [r.ids for r in got[3]] == [r.ids for r in want[3]]


# ----------------------------------------------------------------------
# lifecycle: close, context manager, restart, leaks
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_backend_validation(self):
        assert set(SHARD_BACKENDS) == {"thread", "process"}
        with pytest.raises(ValidationError, match="unknown shard backend"):
            validate_shard_backend("fork")
        with pytest.raises(ValidationError, match="unknown shard backend"):
            ShardedMatchDatabase(np.eye(4), shards=2, backend="fork")

    @pytest.mark.parametrize("backend", SHARD_BACKENDS)
    def test_close_is_idempotent_and_restart_friendly(
        self, backend, tie_data, tie_query, no_segment_leak
    ):
        db = ShardedMatchDatabase(
            tie_data, shards=2, default_engine="block-ad", backend=backend
        )
        first = db.k_n_match(tie_query, k=3, n=2)
        db.close()
        db.close()  # idempotent
        again = db.k_n_match(tie_query, k=3, n=2)  # transparent restart
        assert_same_match(again, first)
        db.close()

    @pytest.mark.parametrize("backend", SHARD_BACKENDS)
    def test_coordinator_context_manager(self, backend, tie_data, tie_query):
        db = ShardedMatchDatabase(
            tie_data, shards=2, default_engine="block-ad", backend=backend
        )
        coordinator = db._coordinator
        with coordinator as entered:
            assert entered is coordinator
            result = coordinator.k_n_match(tie_query, 3, 2)
            assert len(result.ids) == 3
        coordinator.close()  # idempotent after __exit__

    def test_segments_released_on_close_and_exception(
        self, tie_data, tie_query, no_segment_leak
    ):
        db = ShardedMatchDatabase(
            tie_data, shards=2, default_engine="block-ad", backend="process"
        )
        with pytest.raises(RuntimeError, match="boom"):
            with db:
                db.k_n_match(tie_query, k=3, n=2)
                names = db._coordinator._pool.segment_names()
                assert names  # pool is live, segments published
                raise RuntimeError("boom")
        # __exit__ ran close(): every segment is gone
        assert db._coordinator._pool.segment_names() == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_set_backend_switches_and_revalidates(
        self, tie_data, tie_query, no_segment_leak
    ):
        db = ShardedMatchDatabase(
            tie_data, shards=3, default_engine="block-ad"
        )
        want = db.k_n_match(tie_query, k=5, n=3)
        db.set_backend("process", workers=2)
        assert db.backend == "process" and db.workers == 2
        assert_same_match(db.k_n_match(tie_query, k=5, n=3), want)
        db.set_backend("thread")
        assert db.backend == "thread"
        assert_same_match(db.k_n_match(tie_query, k=5, n=3), want)
        with pytest.raises(ValidationError, match="unknown shard backend"):
            db.set_backend("fork")
        with pytest.raises(ValidationError, match="workers"):
            db.set_backend("process", workers=0)
        db.close()


# ----------------------------------------------------------------------
# worker death and remote errors
# ----------------------------------------------------------------------


class TestWorkerFailure:
    @pytest.fixture
    def pool(self, tie_data, no_segment_leak):
        shards = [
            (0, MatchDatabase(tie_data[:30], default_engine="block-ad")),
            (1, MatchDatabase(tie_data[30:], default_engine="block-ad")),
        ]
        with ShardProcessPool(
            shards, workers=2, default_engine="block-ad"
        ) as pool:
            yield pool

    def test_crash_mid_task_raises_structured_error_then_recovers(
        self, pool, tie_query
    ):
        with pytest.raises(ShardWorkerError, match="died"):
            pool.run_tasks([(0, "__test_crash__", ())])
        # the pool stays usable: dead workers respawn on the next scatter
        results = pool.run_tasks(
            [
                (0, "query", (tie_query, 3, 2, "block-ad")),
                (1, "query", (tie_query, 3, 2, "block-ad")),
            ]
        )
        assert len(results) == 2
        assert all(len(r.payload.ids) == 3 for r in results)
        assert all(r.worker_seconds >= 0.0 for r in results)
        assert len(pool.worker_pids()) == 2

    def test_remote_exception_ships_back_as_error(self, pool, tie_query):
        with pytest.raises(ShardWorkerError, match="ValidationError"):
            pool.run_tasks([(0, "query", (tie_query, 3, 2, "bogus-engine"))])
        # an error does not kill the worker; the pool answers right away
        results = pool.run_tasks([(1, "query", (tie_query, 2, 1, None))])
        assert len(results[0].payload.ids) == 2

    def test_pool_rejects_bad_construction(self, tie_data):
        with pytest.raises(ValidationError, match="at least one shard"):
            ShardProcessPool([], workers=1)
        with pytest.raises(ValidationError, match="workers"):
            ShardProcessPool(
                [(0, MatchDatabase(tie_data[:10]))], workers=0
            )
