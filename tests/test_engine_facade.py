"""The MatchDatabase facade: engine selection, defaults, introspection."""

import numpy as np
import pytest

from repro import ENGINE_NAMES, MatchDatabase
from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.naive import NaiveScanEngine
from repro.errors import ValidationError


class TestConstruction:
    def test_from_list(self):
        db = MatchDatabase([[1.0, 2.0], [3.0, 4.0]])
        assert db.cardinality == 2
        assert db.dimensionality == 2
        assert len(db) == 2

    def test_engine_names_constant(self):
        assert set(ENGINE_NAMES) == {"ad", "block-ad", "batch-block-ad", "naive"}

    def test_invalid_default_engine(self):
        with pytest.raises(ValidationError):
            MatchDatabase([[1.0]], default_engine="btree")

    def test_invalid_engine_at_query_time(self, small_data, small_query):
        db = MatchDatabase(small_data)
        with pytest.raises(ValidationError):
            db.k_n_match(small_query, 1, 1, engine="btree")

    def test_repr_mentions_shape(self, small_data):
        text = repr(MatchDatabase(small_data))
        assert "300" in text and "8" in text


class TestEngineSelection:
    def test_lazy_construction_and_types(self, small_data):
        db = MatchDatabase(small_data)
        assert isinstance(db.engine("ad"), ADEngine)
        assert isinstance(db.engine("block-ad"), BlockADEngine)
        assert isinstance(db.engine("naive"), NaiveScanEngine)

    def test_engines_cached(self, small_data):
        db = MatchDatabase(small_data)
        assert db.engine("ad") is db.engine("ad")

    def test_default_engine_used(self, small_data, small_query):
        db = MatchDatabase(small_data, default_engine="naive")
        db.k_n_match(small_query, 1, 1)
        assert "naive" in db._engines
        assert "ad" not in db._engines

    def test_columns_shared_between_engines(self, small_data):
        db = MatchDatabase(small_data)
        assert db.engine("ad").columns is db.columns
        assert db.engine("block-ad").columns is db.columns


class TestQueries:
    def test_all_engines_agree(self, small_data, small_query):
        db = MatchDatabase(small_data)
        results = {
            name: db.k_n_match(small_query, 7, 4, engine=name)
            for name in ENGINE_NAMES
        }
        reference = results["naive"]
        for name, result in results.items():
            np.testing.assert_allclose(
                sorted(result.differences),
                sorted(reference.differences),
                atol=1e-12,
                err_msg=name,
            )

    def test_frequent_default_range_is_full(self, small_data, small_query):
        db = MatchDatabase(small_data)
        result = db.frequent_k_n_match(small_query, 3)
        assert result.n_range == (1, 8)

    def test_frequent_engines_agree(self, small_data, small_query):
        db = MatchDatabase(small_data)
        results = [
            db.frequent_k_n_match(small_query, 6, (3, 7), engine=name)
            for name in ENGINE_NAMES
        ]
        assert results[0].ids == results[1].ids == results[2].ids

    def test_data_property_round_trips(self, small_data):
        db = MatchDatabase(small_data)
        np.testing.assert_array_equal(db.data, small_data)
