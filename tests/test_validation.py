"""Unit tests for repro.core.validation."""

import numpy as np
import pytest

from repro.core import validation
from repro.errors import (
    DimensionalityMismatchError,
    EmptyDatabaseError,
    ValidationError,
)


class TestDatabaseArray:
    def test_accepts_lists(self):
        array = validation.as_database_array([[1, 2], [3, 4]])
        assert array.dtype == np.float64
        assert array.shape == (2, 2)

    def test_contiguous_output(self):
        strided = np.asfortranarray(np.random.default_rng(0).random((4, 3)))
        array = validation.as_database_array(strided)
        assert array.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(EmptyDatabaseError):
            validation.as_database_array(np.empty((0, 3)))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValidationError):
            validation.as_database_array(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([[1.0, float("inf")]])


class TestQueryArray:
    def test_accepts_list(self):
        q = validation.as_query_array([1, 2, 3], 3)
        assert q.dtype == np.float64

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError) as info:
            validation.as_query_array([1.0, 2.0], 3)
        assert info.value.expected == 3
        assert info.value.got == 2

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            validation.as_query_array([[1.0, 2.0]], 2)

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            validation.as_query_array([1.0, float("nan")], 2)


class TestScalarValidation:
    def test_k_bounds(self):
        assert validation.validate_k(1, 10) == 1
        assert validation.validate_k(10, 10) == 10
        with pytest.raises(ValidationError):
            validation.validate_k(0, 10)
        with pytest.raises(ValidationError):
            validation.validate_k(11, 10)

    def test_k_accepts_numpy_integers(self):
        assert validation.validate_k(np.int64(3), 10) == 3

    def test_k_accepts_integral_floats(self):
        assert validation.validate_k(3.0, 10) == 3

    def test_k_rejects_bool_and_fractional(self):
        with pytest.raises(ValidationError):
            validation.validate_k(True, 10)
        with pytest.raises(ValidationError):
            validation.validate_k(2.5, 10)
        with pytest.raises(ValidationError):
            validation.validate_k("3", 10)

    def test_n_bounds(self):
        assert validation.validate_n(1, 4) == 1
        assert validation.validate_n(4, 4) == 4
        with pytest.raises(ValidationError):
            validation.validate_n(0, 4)
        with pytest.raises(ValidationError):
            validation.validate_n(5, 4)

    def test_n_range(self):
        assert validation.validate_n_range((2, 3), 4) == (2, 3)
        assert validation.validate_n_range((1, 1), 4) == (1, 1)

    def test_n_range_rejects_inverted(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range((3, 2), 4)

    def test_n_range_rejects_out_of_bounds(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range((0, 2), 4)
        with pytest.raises(ValidationError):
            validation.validate_n_range((1, 5), 4)

    def test_n_range_rejects_non_pairs(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range(3, 4)
        with pytest.raises(ValidationError):
            validation.validate_n_range((1, 2, 3), 4)
