"""Unit tests for repro.core.validation."""

import numpy as np
import pytest

from repro.core import validation
from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.naive import NaiveScanEngine
from repro.errors import (
    DimensionalityMismatchError,
    EmptyDatabaseError,
    ValidationError,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


class TestDatabaseArray:
    def test_accepts_lists(self):
        array = validation.as_database_array([[1, 2], [3, 4]])
        assert array.dtype == np.float64
        assert array.shape == (2, 2)

    def test_contiguous_output(self):
        strided = np.asfortranarray(np.random.default_rng(0).random((4, 3)))
        array = validation.as_database_array(strided)
        assert array.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(EmptyDatabaseError):
            validation.as_database_array(np.empty((0, 3)))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValidationError):
            validation.as_database_array(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            validation.as_database_array([[1.0, float("inf")]])


class TestQueryArray:
    def test_accepts_list(self):
        q = validation.as_query_array([1, 2, 3], 3)
        assert q.dtype == np.float64

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError) as info:
            validation.as_query_array([1.0, 2.0], 3)
        assert info.value.expected == 3
        assert info.value.got == 2

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            validation.as_query_array([[1.0, 2.0]], 2)

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            validation.as_query_array([1.0, float("nan")], 2)


class TestScalarValidation:
    def test_k_bounds(self):
        assert validation.validate_k(1, 10) == 1
        assert validation.validate_k(10, 10) == 10
        with pytest.raises(ValidationError):
            validation.validate_k(0, 10)
        with pytest.raises(ValidationError):
            validation.validate_k(11, 10)

    def test_k_accepts_numpy_integers(self):
        assert validation.validate_k(np.int64(3), 10) == 3

    def test_k_accepts_integral_floats(self):
        assert validation.validate_k(3.0, 10) == 3

    def test_k_rejects_bool_and_fractional(self):
        with pytest.raises(ValidationError):
            validation.validate_k(True, 10)
        with pytest.raises(ValidationError):
            validation.validate_k(2.5, 10)
        with pytest.raises(ValidationError):
            validation.validate_k("3", 10)

    def test_n_bounds(self):
        assert validation.validate_n(1, 4) == 1
        assert validation.validate_n(4, 4) == 4
        with pytest.raises(ValidationError):
            validation.validate_n(0, 4)
        with pytest.raises(ValidationError):
            validation.validate_n(5, 4)

    def test_n_range(self):
        assert validation.validate_n_range((2, 3), 4) == (2, 3)
        assert validation.validate_n_range((1, 1), 4) == (1, 1)

    def test_n_range_rejects_inverted(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range((3, 2), 4)

    def test_n_range_rejects_out_of_bounds(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range((0, 2), 4)
        with pytest.raises(ValidationError):
            validation.validate_n_range((1, 5), 4)

    def test_n_range_rejects_non_pairs(self):
        with pytest.raises(ValidationError):
            validation.validate_n_range(3, 4)
        with pytest.raises(ValidationError):
            validation.validate_n_range((1, 2, 3), 4)


class TestCanonicalValidators:
    """The validate_*_args helpers used by every engine."""

    def test_match_args_normalises(self):
        query, k, n = validation.validate_match_args(
            [1, 2, 3], np.int64(2), 3.0, cardinality=10, dimensionality=3
        )
        assert query.dtype == np.float64
        assert (k, n) == (2, 3)

    def test_frequent_args_normalises(self):
        query, k, (n0, n1) = validation.validate_frequent_args(
            [1.0, 2.0], 1, (1, 2), cardinality=10, dimensionality=2
        )
        assert (k, n0, n1) == (1, 1, 2)

    def test_order_is_k_before_n_before_query(self):
        # Everything wrong at once: the k error must win.
        with pytest.raises(ValidationError, match="k"):
            validation.validate_match_args(
                [1.0], 0, 99, cardinality=10, dimensionality=3
            )
        # k fine, n and query wrong: the n error must win.
        with pytest.raises(ValidationError, match="n"):
            validation.validate_match_args(
                [1.0], 1, 99, cardinality=10, dimensionality=3
            )

    def test_batch_validators_check_k_even_for_empty_batches(self):
        empty = np.empty((0, 3))
        with pytest.raises(ValidationError):
            validation.validate_batch_match_args(
                empty, 0, 2, cardinality=10, dimensionality=3
            )
        with pytest.raises(ValidationError):
            validation.validate_batch_match_args(
                empty, 1, 99, cardinality=10, dimensionality=3
            )
        with pytest.raises(ValidationError):
            validation.validate_batch_frequent_args(
                empty, 1, (3, 2), cardinality=10, dimensionality=3
            )
        # all-valid empty batch passes
        queries, k, n = validation.validate_batch_match_args(
            empty, 1, 2, cardinality=10, dimensionality=3
        )
        assert queries.shape == (0, 3)

    def test_batch_validators_reject_wrong_width(self):
        with pytest.raises(DimensionalityMismatchError):
            validation.validate_batch_match_args(
                np.zeros((2, 4)), 1, 2, cardinality=10, dimensionality=3
            )


def _all_engines(data):
    from repro.parallel import BatchBlockADEngine

    return [
        ADEngine(data),
        BlockADEngine(data),
        BatchBlockADEngine(data),
        NaiveScanEngine(data),
    ]


class TestCrossEngineErrorAgreement:
    """Every engine must reject the same bad input the same way."""

    DATA = np.arange(30.0).reshape(10, 3)

    BAD_MATCH_CALLS = [
        # (query, k, n) -> every engine must raise for these
        ([0.0, 0.0, 0.0], 0, 2),       # k too small
        ([0.0, 0.0, 0.0], 11, 2),      # k > cardinality
        ([0.0, 0.0, 0.0], 2.5, 2),     # fractional k
        ([0.0, 0.0, 0.0], 3, 0),       # n too small
        ([0.0, 0.0, 0.0], 3, 4),       # n > dimensionality
        ([0.0, 0.0], 3, 2),            # query too short
        ([0.0, 0.0, 0.0, 0.0], 3, 2),  # query too long
        ([0.0, float("nan"), 0.0], 3, 2),  # non-finite query
        ([0.0, 0.0, 0.0], 0, 99),      # k AND n bad: same winner everywhere
        ([0.0, 0.0], 0, 99),           # everything bad at once
    ]

    @pytest.mark.parametrize("query,k,n", BAD_MATCH_CALLS)
    def test_k_n_match_agreement(self, query, k, n):
        outcomes = set()
        for engine in _all_engines(self.DATA):
            with pytest.raises(ValidationError) as info:
                engine.k_n_match(query, k, n)
            outcomes.add((type(info.value), str(info.value)))
        assert len(outcomes) == 1, f"engines disagree: {outcomes}"

    BAD_FREQUENT_CALLS = [
        ([0.0, 0.0, 0.0], 0, (1, 3)),
        ([0.0, 0.0, 0.0], 3, (2, 1)),   # inverted range
        ([0.0, 0.0, 0.0], 3, (0, 3)),   # n0 too small
        ([0.0, 0.0, 0.0], 3, (1, 4)),   # n1 too large
        ([0.0, 0.0], 3, (1, 3)),        # short query
        ([0.0, 0.0], 0, (9, 1)),        # everything bad at once
    ]

    @pytest.mark.parametrize("query,k,n_range", BAD_FREQUENT_CALLS)
    def test_frequent_agreement(self, query, k, n_range):
        outcomes = set()
        for engine in _all_engines(self.DATA):
            with pytest.raises(ValidationError) as info:
                engine.frequent_k_n_match(query, k, n_range)
            outcomes.add((type(info.value), str(info.value)))
        assert len(outcomes) == 1, f"engines disagree: {outcomes}"

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(min_value=-2, max_value=12),
        n=st.integers(min_value=-2, max_value=5),
        width=st.integers(min_value=1, max_value=5),
    )
    def test_property_agreement(self, k, n, width):
        """For EVERY (k, n, query-width), all engines either all succeed
        with identical answers or all raise identically."""
        query = [0.5] * width
        outcomes = set()
        answers = []
        for engine in _all_engines(self.DATA):
            try:
                result = engine.k_n_match(query, k, n)
                outcomes.add("ok")
                answers.append((result.ids, result.differences))
            except ValidationError as error:
                outcomes.add((type(error), str(error)))
        assert len(outcomes) == 1, f"engines disagree: {outcomes}"
        if answers:
            assert all(answer == answers[0] for answer in answers)
