"""Anytime (budgeted) AD search: prefixes, bounds, budgets."""

import numpy as np
import pytest

from conftest import reference_differences
from repro import AnytimeADEngine
from repro.core.ad import ADEngine
from repro.errors import ValidationError


@pytest.fixture
def engine(small_data):
    return AnytimeADEngine(small_data)


class TestUnbounded:
    def test_equals_exact_ad(self, engine, small_data, small_query):
        anytime = engine.k_n_match(small_query, 10, 5)
        exact = ADEngine(small_data).k_n_match(small_query, 10, 5)
        assert anytime.exact
        assert anytime.ids == exact.ids
        np.testing.assert_allclose(
            anytime.differences, exact.differences, atol=1e-12
        )

    def test_iteration_and_len(self, engine, small_query):
        result = engine.k_n_match(small_query, 4, 3)
        assert len(result) == 4
        assert len(list(result)) == 4


class TestBudgeted:
    def test_prefix_of_exact_answer(self, engine, small_data, small_query):
        exact = ADEngine(small_data).k_n_match(small_query, 20, 5)
        # enough budget for the first answer (plus frontier slack), far
        # too little for all twenty
        first = ADEngine(small_data).k_n_match(small_query, 1, 5)
        budget = first.stats.attributes_retrieved + 2 * 8
        partial = engine.k_n_match(small_query, 20, 5, attribute_budget=budget)
        assert not partial.exact
        assert 0 < len(partial.ids) < 20
        assert partial.ids == exact.ids[: len(partial.ids)]

    def test_budget_respected(self, engine, small_query):
        result = engine.k_n_match(small_query, 50, 4, attribute_budget=100)
        # one pop may land exactly on the boundary plus its refill
        assert result.stats.attributes_retrieved <= 100 + 1

    def test_lower_bound_is_sound(self, engine, small_data, small_query):
        """Every point missing from a partial answer truly has an
        n-match difference >= the reported bound."""
        partial = engine.k_n_match(small_query, 30, 5, attribute_budget=300)
        assert partial.unseen_lower_bound is not None
        truth = reference_differences(small_data, small_query, 5)
        returned = set(partial.ids)
        for pid in range(small_data.shape[0]):
            if pid not in returned:
                assert truth[pid] >= partial.unseen_lower_bound - 1e-12

    def test_growing_budget_converges(self, engine, small_data, small_query):
        exact = ADEngine(small_data).k_n_match(small_query, 10, 6)
        sizes = []
        for budget in (50, 200, 800, None):
            result = engine.k_n_match(small_query, 10, 6, attribute_budget=budget)
            sizes.append(len(result.ids))
            assert result.ids == exact.ids[: len(result.ids)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 10

    def test_zero_budget_returns_empty_with_bound(self, engine, small_query):
        result = engine.k_n_match(small_query, 5, 3, attribute_budget=0)
        assert result.ids == []
        assert not result.exact
        # the frontier fill still happened, so a bound exists
        assert result.unseen_lower_bound is not None
        assert result.unseen_lower_bound >= 0

    def test_negative_budget_rejected(self, engine, small_query):
        with pytest.raises(ValidationError):
            engine.k_n_match(small_query, 5, 3, attribute_budget=-1)

    def test_bound_none_when_everything_consumed(self):
        engine = AnytimeADEngine([[0.1, 0.9], [0.4, 0.6]])
        result = engine.k_n_match([0.0, 0.0], 2, 2)
        assert result.exact
        assert result.unseen_lower_bound is None  # all attributes popped


class TestValidation:
    def test_parameters(self, engine, small_query):
        with pytest.raises(ValidationError):
            engine.k_n_match(small_query, 0, 1)
        with pytest.raises(ValidationError):
            engine.k_n_match(small_query, 1, 9)

    def test_shares_columns(self, small_data):
        from repro import MatchDatabase

        db = MatchDatabase(small_data)
        engine = AnytimeADEngine(db.columns)
        assert engine.columns is db.columns
        assert engine.cardinality == 300
        assert engine.dimensionality == 8
