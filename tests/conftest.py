"""Shared fixtures and invariant checkers for the test suite."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
import pytest

from repro.data import float32_exact

# ----------------------------------------------------------------------
# reference implementations (straight transcriptions of Definitions 1-4,
# used as oracles against every engine)
# ----------------------------------------------------------------------


def reference_profile(data: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Sorted per-point difference profiles: column n-1 = n-match diff."""
    return np.sort(np.abs(np.asarray(data, float) - np.asarray(query, float)), axis=1)


def reference_differences(data, query, n: int) -> np.ndarray:
    """Every point's n-match difference (Definition 1)."""
    return reference_profile(np.asarray(data), np.asarray(query))[:, n - 1]


def assert_valid_knmatch(data, query, n: int, k: int, answer_ids: Sequence[int]):
    """Assert ``answer_ids`` is *a* valid k-n-match set (Definition 3).

    Valid means: k distinct ids, and no excluded point has a strictly
    smaller n-match difference than any included point.  Under ties the
    set is not unique, so this is the strongest engine-independent check.
    """
    answer_ids = list(answer_ids)
    assert len(answer_ids) == k
    assert len(set(answer_ids)) == k
    differences = reference_differences(data, query, n)
    included = np.zeros(len(differences), dtype=bool)
    included[answer_ids] = True
    if included.all():
        return
    assert differences[included].max() <= differences[~included].min() + 1e-12


def assert_valid_frequent(
    data, query, n_range: Tuple[int, int], k: int, answer_sets: Dict[int, list]
):
    """Assert every per-n answer set of a frequent query is valid."""
    n0, n1 = n_range
    assert sorted(answer_sets) == list(range(n0, n1 + 1))
    for n, ids in answer_sets.items():
        assert_valid_knmatch(data, query, n, k, ids)


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20060912)  # VLDB'06 opening day


@pytest.fixture
def small_data(rng) -> np.ndarray:
    """300 x 8 float32-exact uniform points (tie-free w.p. ~1)."""
    return float32_exact(rng.random((300, 8)))


@pytest.fixture
def small_query(rng) -> np.ndarray:
    return float32_exact(rng.random(8))


@pytest.fixture
def figure1_database() -> np.ndarray:
    """The paper's Figure-1 example database (objects 1-4, 0-indexed)."""
    return np.array(
        [
            [1.1, 100, 1.2, 1.6, 1.6, 1.1, 1.2, 1.2, 1, 1],
            [1.4, 1.4, 1.4, 1.5, 100, 1.4, 1.2, 1.2, 1, 1],
            [1, 1, 1, 1, 1, 1, 2, 100, 2, 2],
            [20.0] * 10,
        ]
    )


@pytest.fixture
def figure3_database() -> np.ndarray:
    """The paper's Figure-3/Figure-5 example database (points 1-5)."""
    return np.array(
        [
            [0.4, 1.0, 1.0],
            [2.8, 5.5, 2.0],
            [6.5, 7.8, 5.0],
            [9.0, 9.0, 9.0],
            [3.5, 1.5, 8.0],
        ]
    )


@pytest.fixture
def figure3_query() -> np.ndarray:
    return np.array([3.0, 7.0, 4.0])
