"""Serving the approximate tier: headers, cache keys, canonical 400s.

Acceptance bar for this slice: ``mode`` rides the existing protocol
(same endpoints, same envelopes), every approximate answer exposes its
certificate as ``X-Repro-Recall`` on miss *and* hit, approximate and
exact answers never share a cache entry, and a facade without an
approximate path returns the canonical validation message verbatim as
a structured 400.  ``mode="exact"`` requests stay byte-identical to
requests that never mention a mode.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.approx import (
    APPROX_FREQUENT_MESSAGE,
    APPROX_UNSUPPORTED_MESSAGE,
    ApproxResult,
)
from repro.core.dynamic import DynamicMatchDatabase
from repro.core.engine import MatchDatabase
from repro.errors import ValidationError
from repro.serve import (
    ServeApp,
    canonical_json,
    decode_approx_result,
    encode_approx_result,
    parse_query_request,
)
from repro.shard import ShardedMatchDatabase


def post(app, path, payload):
    return app.handle("POST", path, canonical_json(payload))


def body_of(raw: bytes):
    return json.loads(raw.decode())


@pytest.fixture(params=["flat", "sharded"])
def approx_db(request, small_data):
    if request.param == "flat":
        db = MatchDatabase(small_data)
    else:
        db = ShardedMatchDatabase(small_data, shards=3)
    yield db
    if hasattr(db, "close"):
        db.close()


class TestProtocol:
    def test_query_request_carries_approx_fields(self):
        request = parse_query_request(
            {
                "query": [0.1, 0.2],
                "k": 3,
                "n": 1,
                "mode": "approx",
                "target_recall": 0.8,
            }
        )
        assert request.mode == "approx"
        assert request.target_recall == 0.8
        assert request.budget is None

    def test_bad_fields_rejected_at_parse(self):
        with pytest.raises(ValidationError, match="unknown mode"):
            parse_query_request(
                {"query": [0.1], "k": 1, "n": 1, "mode": "fast"}
            )
        with pytest.raises(ValidationError, match="budget must be >= 0"):
            parse_query_request(
                {"query": [0.1], "k": 1, "n": 1, "mode": "approx", "budget": -2}
            )

    def test_approx_result_roundtrip(self, small_data, small_query):
        db = MatchDatabase(small_data)
        result = db.k_n_match(small_query, 5, 4, mode="approx", budget=300)
        payload = encode_approx_result(result)
        back = decode_approx_result(payload)
        assert isinstance(back, ApproxResult)
        assert back.ids == result.ids
        assert back.differences == result.differences
        assert back.certified_recall == result.certified_recall
        assert back.unseen_lower_bound == result.unseen_lower_bound


class TestHeadersAndCache:
    def test_recall_header_on_miss_and_hit(self, approx_db, small_query):
        app = ServeApp(approx_db)
        payload = {
            "query": list(small_query),
            "k": 4,
            "n": 3,
            "mode": "approx",
            "target_recall": 0.9,
        }
        status1, headers1, body1 = post(app, "/v1/query", payload)
        status2, headers2, body2 = post(app, "/v1/query", payload)
        assert (status1, status2) == (200, 200)
        h1, h2 = dict(headers1), dict(headers2)
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        certified = body_of(body1)["result"]["certified_recall"]
        assert h1["X-Repro-Recall"] == f"{certified:.6f}"
        assert h2["X-Repro-Recall"] == h1["X-Repro-Recall"]
        assert body1 == body2  # byte-identical replay

    def test_no_recall_header_on_exact(self, approx_db, small_query):
        app = ServeApp(approx_db)
        _, headers, _ = post(
            app, "/v1/query", {"query": list(small_query), "k": 4, "n": 3}
        )
        assert "X-Repro-Recall" not in dict(headers)

    def test_exact_and_approx_never_share_cache(self, approx_db, small_query):
        app = ServeApp(approx_db)
        base = {"query": list(small_query), "k": 4, "n": 3}
        _, h_exact, body_exact = post(app, "/v1/query", base)
        _, h_approx, body_approx = post(
            app, "/v1/query", {**base, "mode": "approx", "budget": 100}
        )
        assert dict(h_approx)["X-Repro-Cache"] == "miss"
        assert body_of(body_approx)["result"] != body_of(body_exact)["result"]
        # different budgets are different entries too
        _, h_other, _ = post(
            app, "/v1/query", {**base, "mode": "approx", "budget": 101}
        )
        assert dict(h_other)["X-Repro-Cache"] == "miss"

    def test_explicit_exact_mode_byte_identical(self, approx_db, small_query):
        app = ServeApp(approx_db)
        base = {"query": list(small_query), "k": 4, "n": 3}
        _, _, plain = post(app, "/v1/query", base)
        _, _, explicit = post(app, "/v1/query", {**base, "mode": "exact"})
        assert plain == explicit

    def test_batch_recall_header_is_weakest(self, approx_db, small_data):
        app = ServeApp(approx_db)
        payload = {
            "queries": [list(row) for row in small_data[:3]],
            "k": 4,
            "n": 3,
            "mode": "approx",
            "budget": 200,
        }
        status, headers, body = post(app, "/v1/batch", payload)
        assert status == 200
        recalls = [
            entry["certified_recall"]
            for entry in body_of(body)["results"]
        ]
        assert dict(headers)["X-Repro-Recall"] == f"{min(recalls):.6f}"

    def test_approx_payload_marks_mode(self, approx_db, small_query):
        app = ServeApp(approx_db)
        _, _, body = post(
            app,
            "/v1/query",
            {
                "query": list(small_query),
                "k": 4,
                "n": 3,
                "mode": "approx",
                "target_recall": 0.9,
            },
        )
        payload = body_of(body)
        assert payload["mode"] == "approx"
        assert "certified_recall" in payload["result"]


class TestCanonical400s:
    def test_dynamic_facade_approx_is_structured_400(
        self, small_data, small_query
    ):
        app = ServeApp(DynamicMatchDatabase(small_data))
        status, _, body = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 3, "n": 2, "mode": "approx"},
        )
        assert status == 400
        error = body_of(body)["error"]
        assert error["type"] == "validation"
        assert error["message"] == APPROX_UNSUPPORTED_MESSAGE

    def test_dynamic_facade_explicit_exact_is_fine(
        self, small_data, small_query
    ):
        app = ServeApp(DynamicMatchDatabase(small_data))
        base = {"query": list(small_query), "k": 3, "n": 2}
        status, _, plain = post(app, "/v1/query", base)
        status2, _, explicit = post(
            app, "/v1/query", {**base, "mode": "exact"}
        )
        assert (status, status2) == (200, 200)
        assert plain == explicit

    def test_frequent_approx_is_structured_400(self, approx_db, small_query):
        app = ServeApp(approx_db)
        status, _, body = post(
            app,
            "/v1/frequent",
            {
                "query": list(small_query),
                "k": 3,
                "n_range": [1, 4],
                "mode": "approx",
            },
        )
        assert status == 400
        assert body_of(body)["error"]["message"] == APPROX_FREQUENT_MESSAGE

    def test_budget_and_target_conflict_400(self, approx_db, small_query):
        app = ServeApp(approx_db)
        status, _, body = post(
            app,
            "/v1/query",
            {
                "query": list(small_query),
                "k": 3,
                "n": 2,
                "mode": "approx",
                "budget": 10,
                "target_recall": 0.5,
            },
        )
        assert status == 400
        assert "mutually exclusive" in body_of(body)["error"]["message"]


class TestServerDefaults:
    def test_default_mode_applies_when_request_silent(
        self, small_data, small_query
    ):
        app = ServeApp(
            MatchDatabase(small_data),
            default_mode="approx",
            default_target_recall=0.9,
        )
        status, headers, body = post(
            app, "/v1/query", {"query": list(small_query), "k": 4, "n": 3}
        )
        assert status == 200
        assert body_of(body).get("mode") == "approx"
        assert "X-Repro-Recall" in dict(headers)

    def test_request_fields_override_defaults(self, small_data, small_query):
        app = ServeApp(
            MatchDatabase(small_data),
            default_mode="approx",
            default_target_recall=0.9,
        )
        _, _, body = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 4, "n": 3, "mode": "exact"},
        )
        assert "mode" not in body_of(body)

    def test_defaults_rejected_on_unsupported_facade(self, small_data):
        with pytest.raises(ValidationError, match="does not support"):
            ServeApp(DynamicMatchDatabase(small_data), default_mode="approx")

    def test_conflicting_defaults_rejected(self, small_data):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            ServeApp(
                MatchDatabase(small_data),
                default_mode="approx",
                default_budget=10,
                default_target_recall=0.5,
            )


class TestServedAnswersMatchDirect:
    def test_approx_result_identical_to_facade(self, approx_db, small_query):
        app = ServeApp(approx_db)
        _, _, body = post(
            app,
            "/v1/query",
            {
                "query": list(small_query),
                "k": 5,
                "n": 4,
                "mode": "approx",
                "budget": 400,
            },
        )
        served = body_of(body)["result"]
        direct = approx_db.k_n_match(
            np.asarray(small_query), 5, 4, mode="approx", budget=400
        )
        assert served["ids"] == direct.ids
        assert served["differences"] == direct.differences
        assert served["certified_recall"] == direct.certified_recall
