"""The serving subsystem: protocol, admission, routing, HTTP round-trips.

The acceptance bar: the server answers **bit-identically** to direct
facade calls for query/frequent/batch across all three facades, sheds
with 429 beyond ``max_inflight`` (never hangs), and exposes
``repro_serve_*`` metrics.
"""

import json
import threading
import time

import pytest

from repro.core.dynamic import DynamicMatchDatabase
from repro.core.engine import MatchDatabase
from repro.errors import ValidationError
from repro.obs import SpanCollector, render_prometheus
from repro.serve import (
    PROTOCOL_VERSION,
    AdmissionController,
    MatchServer,
    ServeApp,
    ServeClient,
    ServeError,
    ShedError,
    canonical_json,
    decode_frequent_result,
    decode_match_result,
    parse_batch_request,
    parse_frequent_request,
    parse_query_request,
)
from repro.shard import ShardedMatchDatabase


def make_db(kind, data):
    if kind == "flat":
        return MatchDatabase(data)
    if kind == "sharded":
        return ShardedMatchDatabase(data, shards=3)
    return DynamicMatchDatabase(data)


@pytest.fixture(params=["flat", "sharded", "dynamic"])
def any_db(request, small_data):
    return make_db(request.param, small_data)


def post(app, path, payload):
    """POST a dict through the socket-free app; returns (status, headers, body)."""
    return app.handle("POST", path, canonical_json(payload))


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_query_request_roundtrip(self):
        request = parse_query_request(
            {"query": [1, 2.5], "k": 3, "n": 2, "engine": "ad"}
        )
        assert request.query == [1.0, 2.5]
        assert request.k == 3 and request.n == 2
        assert request.engine == "ad" and request.deadline_ms is None

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError, match="missing required field 'k'"):
            parse_query_request({"query": [1.0], "n": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown field 'kk'"):
            parse_query_request({"query": [1.0], "k": 1, "n": 1, "kk": 2})

    def test_wrong_protocol_version_rejected(self):
        with pytest.raises(ValidationError, match="unsupported protocol"):
            parse_query_request(
                {"protocol": 99, "query": [1.0], "k": 1, "n": 1}
            )

    def test_non_numeric_query_rejected(self):
        with pytest.raises(ValidationError, match=r"query\[1\] must be a number"):
            parse_query_request({"query": [1.0, "x"], "k": 1, "n": 1})

    def test_boolean_query_entry_rejected(self):
        with pytest.raises(ValidationError, match=r"query\[0\]"):
            parse_query_request({"query": [True], "k": 1, "n": 1})

    def test_bad_deadline_rejected(self):
        for bad in (0, -5, "soon", True):
            with pytest.raises(ValidationError, match="deadline_ms"):
                parse_query_request(
                    {"query": [1.0], "k": 1, "n": 1, "deadline_ms": bad}
                )

    def test_frequent_n_range_shape(self):
        with pytest.raises(ValidationError, match="n_range"):
            parse_frequent_request({"query": [1.0], "k": 1, "n_range": [1]})
        request = parse_frequent_request(
            {"query": [1.0], "k": 1, "n_range": [1, 3]}
        )
        assert request.n_range == (1, 3)

    def test_batch_rows_validated(self):
        with pytest.raises(ValidationError, match=r"queries\[1\]\[0\]"):
            parse_batch_request(
                {"queries": [[1.0], ["x"]], "k": 1, "n": 1}
            )

    def test_match_result_roundtrip_is_exact(self, small_data, small_query):
        from repro.serve import encode_match_result

        result = MatchDatabase(small_data).k_n_match(small_query, 7, 5)
        payload = json.loads(
            canonical_json(encode_match_result(result)).decode()
        )
        decoded = decode_match_result(payload)
        assert decoded.ids == result.ids
        assert decoded.differences == result.differences  # bit-identical
        assert decoded.stats == result.stats

    def test_frequent_result_roundtrip_is_exact(self, small_data, small_query):
        from repro.serve import encode_frequent_result

        result = MatchDatabase(small_data).frequent_k_n_match(
            small_query, 5, (2, 6), keep_answer_sets=True
        )
        payload = json.loads(
            canonical_json(encode_frequent_result(result)).decode()
        )
        decoded = decode_frequent_result(payload)
        assert decoded.ids == result.ids
        assert decoded.frequencies == result.frequencies
        assert decoded.answer_sets == result.answer_sets
        assert decoded.n_range == result.n_range


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_admit_release_accounting(self):
        controller = AdmissionController(max_inflight=2)
        ticket = controller.admit()
        assert controller.inflight == 1
        assert ticket.queue_seconds >= 0.0
        controller.release()
        assert controller.inflight == 0

    def test_sheds_when_full(self):
        controller = AdmissionController(
            max_inflight=1, deadline_seconds=0.05
        )
        controller.admit()
        with pytest.raises(ShedError) as info:
            controller.admit()
        assert info.value.reason == "queue_full"
        assert controller.sheds == 1
        controller.release()
        controller.admit()  # slot usable again

    def test_queued_request_admitted_when_slot_frees(self):
        controller = AdmissionController(
            max_inflight=1, deadline_seconds=5.0
        )
        controller.admit()
        admitted = []

        def waiter():
            admitted.append(controller.admit())

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        controller.release()
        thread.join(timeout=5)
        assert admitted and admitted[0].queue_seconds > 0.0
        controller.release()

    def test_wait_idle(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.wait_idle(0.1)
        controller.admit()
        assert not controller.wait_idle(0.05)
        controller.release()
        assert controller.wait_idle(0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValidationError):
            AdmissionController(deadline_seconds=0)
        with pytest.raises(ValidationError):
            AdmissionController().admit(deadline_seconds=-1)

    def test_retry_after_idle_minimum(self):
        controller = AdmissionController(max_inflight=1)
        assert controller.retry_after_seconds() == 1
        assert controller.retry_after_seconds(0.2) == 1

    def test_retry_after_tracks_observed_wait(self):
        controller = AdmissionController(max_inflight=1)
        # This shed request itself queued 2.4s: the advertised delay
        # must cover it (rounded up), not the idle minimum.
        assert controller.retry_after_seconds(2.4) == 3

    def test_retry_after_tracks_sustained_load(self):
        controller = AdmissionController(
            max_inflight=1, deadline_seconds=0.05
        )
        controller.admit()
        # Sustained overload: several sheds, each waiting a full budget,
        # drag the smoothed queue wait above zero.
        for _ in range(4):
            with pytest.raises(ShedError):
                controller.admit()
        assert controller.queue_wait_ewma_seconds > 0.0
        # A new shed's advertised delay covers the *larger* of its own
        # wait and the smoothed recent wait.
        assert controller.retry_after_seconds(0.0) >= 1
        assert controller.retry_after_seconds(5.2) == 6
        controller.release()


# ----------------------------------------------------------------------
# routing and error mapping (socket-free, via ServeApp.handle)
# ----------------------------------------------------------------------
class TestRouting:
    @pytest.fixture
    def app(self, small_data):
        return ServeApp(MatchDatabase(small_data))

    def test_unknown_path_404(self, app):
        status, _, body = app.handle("GET", "/nope", b"")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "not_found"

    def test_wrong_method_405(self, app):
        status, headers, _ = app.handle("GET", "/v1/query", b"")
        assert status == 405
        assert ("Allow", "POST") in headers
        status, _, _ = app.handle("POST", "/healthz", b"")
        assert status == 405

    def test_bad_json_400(self, app):
        status, _, body = app.handle("POST", "/v1/query", b"{nope")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "bad_json"

    def test_healthz(self, app, small_data):
        status, _, body = app.handle("GET", "/healthz", b"")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["cardinality"] == small_data.shape[0]
        assert payload["generation"] == 0

    def test_queue_ms_header_on_every_post(self, app, small_query):
        """X-Repro-Queue-Ms is uniform: misses, cache hits, and errors."""
        payload = {"query": list(small_query), "k": 2, "n": 3}
        _, miss_headers, _ = post(app, "/v1/query", payload)
        _, hit_headers, _ = post(app, "/v1/query", payload)  # cache hit
        _, error_headers, _ = post(
            app, "/v1/query", {"query": list(small_query), "k": 0, "n": 3}
        )
        for headers in (miss_headers, hit_headers, error_headers):
            value = dict(headers).get("X-Repro-Queue-Ms")
            assert value is not None, headers
            assert float(value) >= 0.0
        assert dict(hit_headers)["X-Repro-Cache"] == "hit"

    def test_metrics_exposes_serve_counters(self, app, small_query):
        post(app, "/v1/query", {"query": list(small_query), "k": 2, "n": 3})
        status, headers, body = app.handle("GET", "/metrics", b"")
        text = body.decode()
        assert status == 200
        assert dict(headers)["Content-Type"].startswith("text/plain")
        assert 'repro_serve_requests_total{endpoint="/v1/query",status="200"} 1' in text
        assert "repro_serve_cache_misses_total" in text
        assert "repro_serve_queue_seconds" in text
        assert "repro_serve_inflight" in text

    def test_validation_message_matches_direct_call(self, app, small_data, small_query):
        with pytest.raises(ValidationError) as direct:
            MatchDatabase(small_data).k_n_match(small_query, 0, 3)
        status, _, body = post(
            app, "/v1/query", {"query": list(small_query), "k": 0, "n": 3}
        )
        assert status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "validation"
        assert error["message"] == str(direct.value)

    def test_engine_selection_rejected_on_dynamic(self, small_data, small_query):
        app = ServeApp(DynamicMatchDatabase(small_data))
        status, _, body = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 2, "n": 3, "engine": "naive"},
        )
        assert status == 400
        assert "engine selection" in json.loads(body)["error"]["message"]

    def test_unknown_engine_rejected(self, app, small_query):
        status, _, body = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 2, "n": 3, "engine": "bogus"},
        )
        assert status == 400

    def test_internal_error_500(self, small_data, small_query):
        class ExplodingDB:
            cardinality = small_data.shape[0]
            dimensionality = small_data.shape[1]

            def k_n_match(self, query, k, n):
                raise RuntimeError("boom")

        app = ServeApp(ExplodingDB())
        status, _, body = post(
            app, "/v1/query", {"query": list(small_query), "k": 2, "n": 3}
        )
        assert status == 500
        assert "RuntimeError" in json.loads(body)["error"]["message"]

    def test_draining_rejects_posts(self, app, small_query):
        app.begin_drain()
        status, _, body = post(
            app, "/v1/query", {"query": list(small_query), "k": 2, "n": 3}
        )
        assert status == 503
        assert json.loads(body)["error"]["type"] == "draining"
        status, _, body = app.handle("GET", "/healthz", b"")
        assert status == 503
        assert json.loads(body)["status"] == "draining"

    def test_ragged_batch_rejected(self, app):
        status, _, body = post(
            app,
            "/v1/batch",
            {"queries": [[1.0] * 8, [1.0] * 7], "k": 1, "n": 1},
        )
        assert status == 400
        assert "same length" in json.loads(body)["error"]["message"]


# ----------------------------------------------------------------------
# bit-identity with direct facade calls, across all three facades
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_query(self, any_db, small_query):
        app = ServeApp(any_db)
        direct = any_db.k_n_match(small_query, 7, 5)
        status, _, body = post(
            app, "/v1/query", {"query": list(small_query), "k": 7, "n": 5}
        )
        assert status == 200
        remote = decode_match_result(json.loads(body)["result"])
        assert remote.ids == direct.ids
        assert remote.differences == direct.differences
        assert remote.stats == direct.stats

    def test_frequent(self, any_db, small_query):
        app = ServeApp(any_db)
        direct = any_db.frequent_k_n_match(
            small_query, 5, (2, 6), keep_answer_sets=True
        )
        status, _, body = post(
            app,
            "/v1/frequent",
            {
                "query": list(small_query),
                "k": 5,
                "n_range": [2, 6],
                "keep_answer_sets": True,
            },
        )
        assert status == 200
        remote = decode_frequent_result(json.loads(body)["result"])
        assert remote.ids == direct.ids
        assert remote.frequencies == direct.frequencies
        assert remote.answer_sets == direct.answer_sets

    def test_frequent_default_n_range_is_full(self, any_db, small_query):
        direct = any_db.frequent_k_n_match(
            small_query, 4, (1, any_db.dimensionality)
        )
        app = ServeApp(any_db)
        status, _, body = post(
            app, "/v1/frequent", {"query": list(small_query), "k": 4}
        )
        assert status == 200
        remote = decode_frequent_result(json.loads(body)["result"])
        assert remote.ids == direct.ids
        assert remote.n_range == (1, any_db.dimensionality)

    def test_batch(self, any_db, small_data):
        queries = small_data[:4] + 0.125
        if hasattr(any_db, "k_n_match_batch"):
            direct = any_db.k_n_match_batch(queries, 3, 4)
        else:
            direct = [any_db.k_n_match(row, 3, 4) for row in queries]
        app = ServeApp(any_db)
        status, _, body = post(
            app,
            "/v1/batch",
            {"queries": [list(row) for row in queries], "k": 3, "n": 4},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 4
        for remote_payload, expected in zip(payload["results"], direct):
            remote = decode_match_result(remote_payload)
            assert remote.ids == expected.ids
            assert remote.differences == expected.differences

    def test_empty_batch_still_validates_k(self, any_db):
        app = ServeApp(any_db)
        status, _, _ = post(app, "/v1/batch", {"queries": [], "k": 0, "n": 1})
        assert status == 400
        status, _, body = post(
            app, "/v1/batch", {"queries": [], "k": 1, "n": 1}
        )
        assert status == 200
        assert json.loads(body)["results"] == []


# ----------------------------------------------------------------------
# spans through the request path
# ----------------------------------------------------------------------
class TestServeSpans:
    def test_request_produces_serve_handle_root(self, small_data, small_query):
        spans = SpanCollector()
        app = ServeApp(MatchDatabase(small_data), spans=spans)
        payload = {"query": list(small_query), "k": 2, "n": 3}
        post(app, "/v1/query", payload)
        post(app, "/v1/query", payload)  # second one hits the cache
        roots = spans.traces()
        handles = [root for root in roots if root.name == "serve_handle"]
        assert len(handles) == 2
        assert handles[0].meta["endpoint"] == "/v1/query"
        assert handles[0].meta["cache"] == "miss"
        assert handles[1].meta["cache"] == "hit"
        assert handles[0].find("serve_cache")
        # the engine's own spans nest under the same root
        assert handles[0].find("heap_consume") or handles[0].find("window_grow")

    def test_no_spans_no_overhead_path(self, small_data, small_query):
        app = ServeApp(MatchDatabase(small_data), spans=None)
        status, _, _ = post(
            app, "/v1/query", {"query": list(small_query), "k": 2, "n": 3}
        )
        assert status == 200


# ----------------------------------------------------------------------
# overload shedding (deterministic, via a gated database)
# ----------------------------------------------------------------------
class GatedDB:
    """Duck-typed facade whose queries block until released."""

    def __init__(self, inner, gate):
        self._inner = inner
        self._gate = gate
        self.cardinality = inner.cardinality
        self.dimensionality = inner.dimensionality

    def k_n_match(self, query, k, n):
        assert self._gate.wait(timeout=10), "gate never opened"
        return self._inner.k_n_match(query, k, n)


class TestOverload:
    def test_excess_requests_shed_with_429(self, small_data, small_query):
        gate = threading.Event()
        db = GatedDB(MatchDatabase(small_data), gate)
        app = ServeApp(db, max_inflight=1, deadline_ms=100.0, cache_size=0)
        payload = {"query": list(small_query), "k": 2, "n": 3}
        statuses = []
        lock = threading.Lock()

        def fire():
            status, _, _ = post(app, "/v1/query", payload)
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # all deadlines expired; holder still blocked
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(statuses) == [200, 429, 429, 429]
        assert app.admission.sheds == 3
        assert app.admission.inflight == 0
        text = render_prometheus(app.metrics)
        assert 'repro_serve_sheds_total{endpoint="/v1/query",reason="queue_full"} 3' in text

    def test_429_retry_after_tracks_queue_wait(self, small_data, small_query):
        gate = threading.Event()
        db = GatedDB(MatchDatabase(small_data), gate)
        app = ServeApp(db, max_inflight=1, deadline_ms=1200.0, cache_size=0)
        app.admission.admit()  # occupy the only slot
        # Shed after queueing ~1.2s: the advertised retry delay must
        # cover the wait actually observed (ceil(1.2) = 2), not a
        # hard-coded constant.
        status, headers, _ = post(
            app, "/v1/query", {"query": list(small_query), "k": 2, "n": 3}
        )
        assert status == 429
        header = dict(headers)
        assert int(header["Retry-After"]) == 2
        # A fast shed on an idle-again controller still advertises the
        # protocol minimum of one second.
        status, headers, _ = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 2, "n": 3, "deadline_ms": 20},
        )
        assert status == 429
        assert int(dict(headers)["Retry-After"]) >= 1
        app.admission.release()

    def test_per_request_deadline_overrides_default(self, small_data, small_query):
        gate = threading.Event()
        db = GatedDB(MatchDatabase(small_data), gate)
        # server default is generous; the request's own deadline is tiny
        app = ServeApp(db, max_inflight=1, deadline_ms=30000.0, cache_size=0)
        app.admission.admit()  # occupy the only slot
        started = time.perf_counter()
        status, _, body = post(
            app,
            "/v1/query",
            {"query": list(small_query), "k": 2, "n": 3, "deadline_ms": 50},
        )
        elapsed = time.perf_counter() - started
        assert status == 429
        assert elapsed < 5.0  # shed at its own deadline, not the server's
        assert json.loads(body)["error"]["type"] == "shed"
        app.admission.release()


# ----------------------------------------------------------------------
# over HTTP: real sockets, client round-trips, graceful shutdown
# ----------------------------------------------------------------------
class TestHTTP:
    @pytest.fixture
    def served(self, small_data):
        db = MatchDatabase(small_data)
        app = ServeApp(db, spans=SpanCollector())
        with MatchServer(app) as server:
            yield db, server, ServeClient(server.host, server.port)

    def test_client_roundtrip_bit_identical(self, served, small_query):
        db, _, client = served
        direct = db.k_n_match(small_query, 7, 5)
        remote = client.query(list(small_query), 7, 5)
        assert remote.ids == direct.ids
        assert remote.differences == direct.differences
        assert remote.stats == direct.stats

    def test_client_frequent_and_batch(self, served, small_data, small_query):
        db, _, client = served
        frequent = client.frequent(
            list(small_query), 5, (2, 6), keep_answer_sets=True
        )
        direct = db.frequent_k_n_match(small_query, 5, (2, 6))
        assert frequent.ids == direct.ids
        assert frequent.frequencies == direct.frequencies
        queries = small_data[:3]
        batch = client.batch([list(row) for row in queries], 3, 4)
        for remote, expected in zip(batch, db.k_n_match_batch(queries, 3, 4)):
            assert remote.ids == expected.ids
            assert remote.differences == expected.differences

    def test_cache_headers_and_byte_identity(self, served, small_query):
        _, _, client = served
        body = canonical_json(
            {"query": list(small_query), "k": 3, "n": 4}
        )
        status1, headers1, body1 = client.post_raw("/v1/query", body)
        status2, headers2, body2 = client.post_raw("/v1/query", body)
        assert (status1, status2) == (200, 200)
        assert headers1["X-Repro-Cache"] == "miss"
        assert headers2["X-Repro-Cache"] == "hit"
        assert body1 == body2  # byte-identical replay

    def test_trace_id_round_trips_through_client(self, served, small_query):
        from repro.obs import TraceContext

        _, _, client = served
        client.query(list(small_query), 3, 4)
        minted = client.last_trace
        assert minted is not None and len(minted.trace_id) == 32
        pinned = TraceContext("ab" * 16, "cd" * 8)
        client.query(list(small_query), 3, 4, trace=pinned)
        assert client.last_trace.trace_id == pinned.trace_id

    def test_server_error_raises_serve_error(self, served, small_query):
        _, _, client = served
        with pytest.raises(ServeError) as info:
            client.query(list(small_query), 0, 3)
        assert info.value.status == 400
        assert info.value.error_type == "validation"

    def test_health_and_metrics(self, served):
        _, _, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        text = client.metrics_text()
        assert "repro_serve_requests_total" in text

    def test_stop_drains_inflight_request(self, small_data, small_query):
        gate = threading.Event()
        db = GatedDB(MatchDatabase(small_data), gate)
        app = ServeApp(db, deadline_ms=10000.0, cache_size=0)
        server = MatchServer(app).start()
        client = ServeClient(server.host, server.port)
        results = []

        def fire():
            results.append(
                client.post_raw(
                    "/v1/query",
                    canonical_json(
                        {"query": list(small_query), "k": 2, "n": 3}
                    ),
                )
            )

        thread = threading.Thread(target=fire)
        thread.start()
        while app.admission.inflight == 0:  # request holds its slot
            time.sleep(0.005)
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        time.sleep(0.05)
        gate.set()  # let the in-flight request finish during the drain
        stopper.join(timeout=10)
        thread.join(timeout=10)
        assert results and results[0][0] == 200  # drained, not dropped
        assert not stopper.is_alive()
