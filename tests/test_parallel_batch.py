"""Batch execution subsystem: vectorised lock-step engine + thread pool.

The contract under test is *bit-identity*: every batch path (native
lock-step batch, thread-pool sharding, and their composition through
``MatchDatabase``) must return exactly the answers — ids, differences,
frequencies, answer sets — that the serial engines produce, including
under duplicate-value ties, where the canonical deterministic order is
the naive oracle's (ascending difference, then ascending id).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MatchDatabase
from repro.core.ad import ADEngine
from repro.core.ad_block import BlockADEngine
from repro.core.naive import NaiveScanEngine
from repro.core.types import SearchStats
from repro.errors import ValidationError
from repro.parallel import BatchBlockADEngine, BatchStats, ParallelBatchExecutor


def _random_case(rng, tie_prone: bool):
    c = int(rng.integers(40, 300))
    d = int(rng.integers(2, 9))
    data = rng.uniform(0.0, 10.0, size=(c, d))
    batch = int(rng.integers(1, 9))
    queries = rng.uniform(0.0, 10.0, size=(batch, d))
    if tie_prone:
        # Rounding to one decimal forces plenty of exact duplicate
        # values, exercising the tie-break order of every path.
        data = np.round(data, 1)
        queries = np.round(queries, 1)
    k = int(rng.integers(1, min(c, 10) + 1))
    n0 = int(rng.integers(1, d + 1))
    n1 = int(rng.integers(n0, d + 1))
    return data, queries, k, n0, n1


def _assert_match_equal(actual, expected):
    assert actual.ids == expected.ids
    assert actual.differences == expected.differences


def _assert_frequent_equal(actual, expected, check_answer_sets=True):
    assert actual.ids == expected.ids
    assert actual.frequencies == expected.frequencies
    if check_answer_sets:
        assert actual.answer_sets == expected.answer_sets


class TestBatchEngineMatchesOracles:
    """Vectorised lock-step answers == serial block-AD == naive oracle."""

    @pytest.mark.parametrize("tie_prone", [False, True])
    def test_k_n_match_bit_identical(self, tie_prone):
        rng = np.random.default_rng(2006 + tie_prone)
        for _ in range(4):
            data, queries, k, _, n1 = _random_case(rng, tie_prone)
            serial = BlockADEngine(data)
            naive = NaiveScanEngine(data)
            batch = BatchBlockADEngine(serial.columns)
            results = batch.k_n_match_batch(queries, k, n1)
            assert len(results) == len(queries)
            for query, result in zip(queries, results):
                _assert_match_equal(result, serial.k_n_match(query, k, n1))
                _assert_match_equal(result, naive.k_n_match(query, k, n1))
                # Identical epsilon schedule -> identical work counters.
                assert result.stats == serial.k_n_match(query, k, n1).stats

    @pytest.mark.parametrize("tie_prone", [False, True])
    def test_frequent_bit_identical(self, tie_prone):
        rng = np.random.default_rng(1906 + tie_prone)
        for _ in range(4):
            data, queries, k, n0, n1 = _random_case(rng, tie_prone)
            serial = BlockADEngine(data)
            naive = NaiveScanEngine(data)
            batch = BatchBlockADEngine(serial.columns)
            results = batch.frequent_k_n_match_batch(
                queries, k, (n0, n1), keep_answer_sets=True
            )
            for query, result in zip(queries, results):
                _assert_frequent_equal(
                    result, serial.frequent_k_n_match(query, k, (n0, n1))
                )
                _assert_frequent_equal(
                    result, naive.frequent_k_n_match(query, k, (n0, n1))
                )

    def test_matches_ad_engine_on_tie_free_data(self, small_data):
        # The AD engine's within-tie order is its heap discovery order,
        # so exact equality across engines is only guaranteed tie-free.
        rng = np.random.default_rng(4)
        queries = rng.uniform(0.0, 1.0, size=(5, small_data.shape[1]))
        ad = ADEngine(small_data)
        batch = BatchBlockADEngine(small_data)
        for query, result in zip(queries, batch.k_n_match_batch(queries, 4, 5)):
            _assert_match_equal(result, ad.k_n_match(query, 4, 5))

    def test_chunking_does_not_change_answers(self):
        rng = np.random.default_rng(11)
        data = np.round(rng.uniform(0, 5, size=(150, 5)), 1)
        queries = np.round(rng.uniform(0, 5, size=(9, 5)), 1)
        wide = BatchBlockADEngine(data)
        narrow = BatchBlockADEngine(data, chunk_size=2)
        for a, b in zip(
            wide.k_n_match_batch(queries, 3, 3),
            narrow.k_n_match_batch(queries, 3, 3),
        ):
            _assert_match_equal(a, b)
            assert a.stats == b.stats

    def test_empty_batch(self):
        batch = BatchBlockADEngine(np.ones((10, 3)))
        assert batch.k_n_match_batch(np.empty((0, 3)), 2, 2) == []
        assert batch.frequent_k_n_match_batch(np.empty((0, 3)), 2, (1, 2)) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            BatchBlockADEngine(np.ones((10, 3)), chunk_size=0)

    def test_rejects_wrong_width_queries(self):
        batch = BatchBlockADEngine(np.ones((10, 3)))
        with pytest.raises(Exception):
            batch.k_n_match_batch(np.ones((2, 4)), 2, 2)


class TestParallelExecutor:
    """Thread-pool sharding: same answers, deterministic, in query order."""

    @pytest.mark.parametrize("engine_cls", [BlockADEngine, BatchBlockADEngine])
    def test_matches_serial(self, engine_cls):
        rng = np.random.default_rng(77)
        data = np.round(rng.uniform(0, 5, size=(200, 6)), 1)
        queries = np.round(rng.uniform(0, 5, size=(11, 6)), 1)
        engine = engine_cls(data)
        serial = BlockADEngine(data)
        executor = ParallelBatchExecutor(engine, workers=4)
        for query, result in zip(queries, executor.k_n_match_batch(queries, 4, 3)):
            _assert_match_equal(result, serial.k_n_match(query, 4, 3))
        for query, result in zip(
            queries,
            executor.frequent_k_n_match_batch(
                queries, 4, (2, 5), keep_answer_sets=True
            ),
        ):
            _assert_frequent_equal(
                result, serial.frequent_k_n_match(query, 4, (2, 5))
            )

    def test_deterministic_across_runs(self):
        rng = np.random.default_rng(8)
        data = rng.uniform(0, 1, size=(180, 7))
        queries = rng.uniform(0, 1, size=(13, 7))
        executor = ParallelBatchExecutor(
            BatchBlockADEngine(data), workers=4, chunk_size=3
        )
        first = executor.k_n_match_batch(queries, 5, 4)
        for _ in range(3):
            again = executor.k_n_match_batch(queries, 5, 4)
            for a, b in zip(first, again):
                _assert_match_equal(a, b)
                assert a.stats == b.stats

    def test_batch_stats(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(0, 1, size=(120, 4))
        queries = rng.uniform(0, 1, size=(10, 4))
        executor = ParallelBatchExecutor(
            BlockADEngine(data), workers=2, chunk_size=4
        )
        results = executor.k_n_match_batch(queries, 3, 2)
        stats = executor.last_batch_stats
        assert isinstance(stats, BatchStats)
        assert stats.queries == 10
        assert stats.shards == 3  # ceil(10 / 4)
        assert stats.workers == 2
        assert stats.wall_time_seconds > 0
        assert stats.queries_per_second > 0
        assert stats.total == SearchStats.aggregate(
            [result.stats for result in results]
        )

    def test_empty_batch(self):
        executor = ParallelBatchExecutor(BlockADEngine(np.ones((10, 3))))
        assert executor.k_n_match_batch(np.empty((0, 3)), 2, 2) == []
        assert executor.last_batch_stats.queries == 0

    def test_rejects_bad_workers(self):
        with pytest.raises(ValidationError):
            ParallelBatchExecutor(BlockADEngine(np.ones((10, 3))), workers=0)


class TestMatchDatabaseDispatch:
    """The facade routes batches to native/parallel paths transparently."""

    @pytest.fixture
    def db(self, small_data):
        return MatchDatabase(small_data)

    @pytest.fixture
    def queries(self, small_data):
        return small_data[:7] + 1e-3

    def test_batch_engine_name(self, db, queries):
        native = db.k_n_match_batch(queries, 4, 5, engine="batch-block-ad")
        reference = db.k_n_match_batch(queries, 4, 5, engine="block-ad")
        for a, b in zip(native, reference):
            _assert_match_equal(a, b)
            assert a.stats == b.stats

    def test_workers_implies_parallel(self, db, queries):
        sharded = db.k_n_match_batch(queries, 4, 5, engine="block-ad", workers=3)
        reference = db.k_n_match_batch(queries, 4, 5, engine="block-ad")
        for a, b in zip(sharded, reference):
            _assert_match_equal(a, b)

    def test_parallel_false_overrides_workers(self, db, queries):
        # parallel=False pins the in-line path even if workers is given.
        inline = db.k_n_match_batch(
            queries, 4, 5, engine="block-ad", parallel=False, workers=3
        )
        reference = db.k_n_match_batch(queries, 4, 5, engine="block-ad")
        for a, b in zip(inline, reference):
            _assert_match_equal(a, b)

    def test_frequent_paths_agree(self, db, queries):
        paths = [
            db.frequent_k_n_match_batch(queries, 4, (2, 6), engine="block-ad"),
            db.frequent_k_n_match_batch(
                queries, 4, (2, 6), engine="batch-block-ad"
            ),
            db.frequent_k_n_match_batch(
                queries, 4, (2, 6), engine="batch-block-ad", parallel=True, workers=2
            ),
        ]
        for results in paths[1:]:
            for a, b in zip(results, paths[0]):
                assert a.ids == b.ids
                assert a.frequencies == b.frequencies


@pytest.mark.tier2
class TestTier2PropertySweep:
    """Wider randomized sweep of every path (deselect-by-default)."""

    def test_all_paths_bit_identical(self):
        rng = np.random.default_rng(20060912)
        for trial in range(12):
            data, queries, k, n0, n1 = _random_case(rng, tie_prone=trial % 2 == 0)
            serial = BlockADEngine(data)
            naive = NaiveScanEngine(data)
            batch = BatchBlockADEngine(serial.columns)
            pooled = ParallelBatchExecutor(batch, workers=4, chunk_size=2)

            expected_m = [naive.k_n_match(q, k, n1) for q in queries]
            for path in (
                [serial.k_n_match(q, k, n1) for q in queries],
                batch.k_n_match_batch(queries, k, n1),
                pooled.k_n_match_batch(queries, k, n1),
            ):
                for a, b in zip(path, expected_m):
                    _assert_match_equal(a, b)

            expected_f = [
                naive.frequent_k_n_match(q, k, (n0, n1)) for q in queries
            ]
            for path in (
                [serial.frequent_k_n_match(q, k, (n0, n1)) for q in queries],
                batch.frequent_k_n_match_batch(
                    queries, k, (n0, n1), keep_answer_sets=True
                ),
                pooled.frequent_k_n_match_batch(
                    queries, k, (n0, n1), keep_answer_sets=True
                ),
            ):
                for a, b in zip(path, expected_f):
                    _assert_frequent_equal(a, b)
