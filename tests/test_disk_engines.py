"""Disk AD and disk scan engines: answers and I/O accounting."""

import numpy as np
import pytest

from conftest import assert_valid_frequent
from repro.core.naive import NaiveScanEngine
from repro.disk import DiskADEngine, DiskScanEngine
from repro.storage import DiskModel, Pager


class TestDiskADAnswers:
    @pytest.mark.parametrize("n", [1, 4, 8])
    def test_k_n_match_matches_oracle(self, small_data, small_query, n):
        disk = DiskADEngine(small_data).k_n_match(small_query, 7, n)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 7, n)
        np.testing.assert_allclose(
            sorted(disk.differences), sorted(naive.differences), atol=1e-6
        )
        assert sorted(disk.ids) == sorted(naive.ids)

    def test_frequent_matches_oracle(self, small_data, small_query):
        disk = DiskADEngine(small_data).frequent_k_n_match(small_query, 9, (3, 7))
        naive = NaiveScanEngine(small_data).frequent_k_n_match(
            small_query, 9, (3, 7)
        )
        assert disk.ids == naive.ids
        assert disk.frequencies == naive.frequencies
        assert_valid_frequent(small_data, small_query, (3, 7), 9, disk.answer_sets)

    def test_matches_in_memory_ad_attribute_counts(self, small_data, small_query):
        from repro.core.ad import ADEngine

        disk = DiskADEngine(small_data).k_n_match(small_query, 5, 4)
        memory = ADEngine(small_data).k_n_match(small_query, 5, 4)
        assert disk.stats.heap_pops == memory.stats.heap_pops
        assert disk.stats.attributes_retrieved == memory.stats.attributes_retrieved


class TestDiskADIO:
    def test_page_counters_populated(self, small_data, small_query):
        engine = DiskADEngine(small_data)
        stats = engine.k_n_match(small_query, 5, 4).stats
        assert stats.page_reads > 0
        assert stats.random_page_reads >= 8  # at least one seek per dim

    def test_repeated_queries_measured_cold(self, small_data, small_query):
        """Stream buffers are forgotten per query, so identical queries
        report identical I/O (no warm-cache flattering)."""
        engine = DiskADEngine(small_data)
        first = engine.k_n_match(small_query, 5, 4).stats
        second = engine.k_n_match(small_query, 5, 4).stats
        assert first.page_reads == second.page_reads
        assert first.random_page_reads == second.random_page_reads

    def test_simulated_seconds_uses_model(self, small_data, small_query):
        slow = DiskModel(random_read_seconds=1.0)
        engine = DiskADEngine(small_data, disk_model=slow)
        stats = engine.k_n_match(small_query, 5, 4).stats
        assert engine.simulated_seconds(stats) >= stats.random_page_reads * 1.0

    def test_custom_pager_shared(self, small_data):
        pager = Pager(page_size=512)
        engine = DiskADEngine(small_data, pager=pager)
        assert engine.pager is pager
        assert pager.page_count > 0


class TestDiskModelPageSize:
    def test_doubling_page_size_doubles_sequential_cost(self):
        base = DiskModel()
        doubled = base.with_page_size(base.page_size * 2)
        assert doubled.page_size == base.page_size * 2
        assert doubled.sequential_read_seconds == 2 * base.sequential_read_seconds

    def test_seek_and_cpu_costs_unchanged(self):
        base = DiskModel()
        doubled = base.with_page_size(base.page_size * 2)
        assert doubled.random_read_seconds == base.random_read_seconds
        assert doubled.cpu_seconds_per_attribute == base.cpu_seconds_per_attribute
        assert doubled.cpu_seconds_per_list_entry == base.cpu_seconds_per_list_entry

    def test_round_trip_restores_original(self):
        base = DiskModel()
        back = base.with_page_size(8192).with_page_size(base.page_size)
        assert back == base

    def test_invalid_page_size(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            DiskModel().with_page_size(0)


class TestDiskScan:
    def test_k_n_match_matches_oracle(self, small_data, small_query):
        scan = DiskScanEngine(small_data).k_n_match(small_query, 12, 5)
        naive = NaiveScanEngine(small_data).k_n_match(small_query, 12, 5)
        assert scan.ids == naive.ids
        np.testing.assert_allclose(scan.differences, naive.differences, atol=1e-6)

    def test_frequent_matches_oracle(self, small_data, small_query):
        scan = DiskScanEngine(small_data).frequent_k_n_match(small_query, 9, (2, 8))
        naive = NaiveScanEngine(small_data).frequent_k_n_match(
            small_query, 9, (2, 8)
        )
        assert scan.ids == naive.ids
        assert scan.answer_sets == naive.answer_sets

    def test_io_is_sequential(self, small_data, small_query):
        engine = DiskScanEngine(small_data)
        stats = engine.frequent_k_n_match(small_query, 5, (2, 6)).stats
        assert stats.sequential_page_reads == engine.heap_file.page_count - 1
        assert stats.random_page_reads == 1
        assert stats.attributes_retrieved == small_data.size

    def test_pool_shrinking_preserves_answers(self, rng):
        """Many pages force the running top-k pool to shrink repeatedly."""
        data = rng.random((5000, 6))
        query = rng.random(6)
        scan = DiskScanEngine(data).frequent_k_n_match(query, 3, (2, 5))
        naive = NaiveScanEngine(data).frequent_k_n_match(query, 3, (2, 5))
        assert scan.ids == naive.ids

    def test_disk_ad_beats_scan_on_attributes_and_pages(self, rng):
        # Large enough that AD's fixed per-dimension seeks are amortised;
        # at tiny sizes the scan's handful of pages wins on I/O (the same
        # effect Fig. 13(b) shows at its small end).
        data = rng.random((20000, 10)).astype(np.float32).astype(np.float64)
        query = data[7] + 1e-3
        ad_stats = DiskADEngine(data).frequent_k_n_match(query, 10, (4, 6)).stats
        scan_stats = DiskScanEngine(data).frequent_k_n_match(query, 10, (4, 6)).stats
        assert ad_stats.attributes_retrieved < scan_stats.attributes_retrieved / 2
        assert ad_stats.page_reads < scan_stats.page_reads
