"""Unit tests for paged sorted-column files."""

import numpy as np
import pytest

from repro.data import float32_exact
from repro.errors import StorageError
from repro.storage import ColumnFile, Pager, SortedColumnStore


@pytest.fixture
def values(rng):
    return np.sort(float32_exact(rng.random(1000)))


@pytest.fixture
def column(values):
    ids = np.arange(1000)[::-1].copy()  # any permutation
    # 8-byte entries, 16 per 128-byte page -> 63 pages
    return ColumnFile(values, ids, Pager(page_size=128))


class TestColumnFile:
    def test_entries_per_page(self, column):
        assert column.entries_per_page == 16

    def test_page_count(self, column):
        assert column.page_count == -(-1000 // 16)

    def test_entry_round_trip(self, column, values):
        pid, value = column.entry(500)
        assert pid == 499  # reversed ids
        assert value == pytest.approx(values[500])

    def test_read_entries_shape(self, column):
        entries = column.read_entries(0)
        assert entries.shape == (16,)
        last = column.read_entries(column.page_count - 1)
        assert last.shape == (1000 - 16 * (column.page_count - 1),)

    def test_read_entries_bounds(self, column):
        with pytest.raises(StorageError):
            column.read_entries(column.page_count)

    def test_page_of_position(self, column):
        assert column.page_of_position(0) == column.first_page
        assert column.page_of_position(16) == column.first_page + 1
        with pytest.raises(StorageError):
            column.page_of_position(1000)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(StorageError):
            ColumnFile(np.zeros(3), np.zeros(4), Pager())


class TestLocate:
    def test_locate_matches_searchsorted(self, column, values):
        for probe in (0.0, 0.25, 0.5, 0.999, 1.5, float(values[123])):
            expected = int(np.searchsorted(values, probe, side="left"))
            assert column.locate(probe) == expected

    def test_locate_below_all(self, column):
        assert column.locate(-1.0) == 0

    def test_locate_above_all(self, column):
        assert column.locate(2.0) == 1000

    def test_locate_exact_page_boundary(self, column, values):
        boundary_value = float(values[16])  # first value of page 1
        assert column.locate(boundary_value) == int(
            np.searchsorted(values, boundary_value, side="left")
        )

    def test_locate_with_duplicates(self):
        values = np.array([0.0, 0.5, 0.5, 0.5, 1.0], dtype=np.float64)
        column = ColumnFile(values, np.arange(5), Pager(page_size=16))
        assert column.locate(0.5) == 1  # first of the duplicates

    def test_locate_costs_at_most_one_page(self, column):
        column._pager.reset_counters()
        column.locate(0.37)
        assert column._pager.recorder.total_reads <= 1


class TestSortedColumnStore:
    def test_columns_sorted_and_complete(self, small_data):
        store = SortedColumnStore(small_data, Pager(page_size=256))
        assert store.dimensionality == 8
        assert store.cardinality == 300
        assert store.total_attributes == 2400
        for j in range(8):
            col = store.column(j)
            assert col.length == 300
            values = [col.entry(i)[1] for i in range(0, 300, 50)]
            assert values == sorted(values)

    def test_column_round_trip_against_source(self, small_data):
        store = SortedColumnStore(small_data, Pager(page_size=256))
        col = store.column(3)
        for position in (0, 150, 299):
            pid, value = col.entry(position)
            assert value == pytest.approx(small_data[pid, 3])

    def test_column_bounds(self, small_data):
        store = SortedColumnStore(small_data, Pager(page_size=256))
        with pytest.raises(StorageError):
            store.column(8)
