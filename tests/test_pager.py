"""Unit tests for the page simulator and its access recorder."""

import pytest

from repro.errors import PageOverflowError, StorageError
from repro.storage import PageAccessRecorder, Pager


class TestRecorder:
    def test_first_access_is_random(self):
        recorder = PageAccessRecorder()
        recorder.record(5, "s")
        assert recorder.random_reads == 1
        assert recorder.sequential_reads == 0

    def test_forward_adjacent_is_sequential(self):
        recorder = PageAccessRecorder()
        recorder.record(5, "s")
        recorder.record(6, "s")
        assert recorder.sequential_reads == 1

    def test_backward_adjacent_is_sequential(self):
        recorder = PageAccessRecorder()
        recorder.record(5, "s")
        recorder.record(4, "s")
        assert recorder.sequential_reads == 1

    def test_jump_is_random(self):
        recorder = PageAccessRecorder()
        recorder.record(5, "s")
        recorder.record(9, "s")
        assert recorder.random_reads == 2

    def test_same_page_is_free(self):
        recorder = PageAccessRecorder()
        recorder.record(5, "s")
        recorder.record(5, "s")
        assert recorder.total_reads == 1

    def test_streams_are_independent(self):
        recorder = PageAccessRecorder()
        recorder.record(0, "a")
        recorder.record(100, "b")
        recorder.record(1, "a")  # adjacent within stream a
        recorder.record(101, "b")  # adjacent within stream b
        assert recorder.random_reads == 2
        assert recorder.sequential_reads == 2

    def test_interleaved_single_stream_is_random(self):
        recorder = PageAccessRecorder()
        for page in (0, 100, 1, 101):
            recorder.record(page, "one")
        assert recorder.random_reads == 4

    def test_reset(self):
        recorder = PageAccessRecorder()
        recorder.record(3, "s")
        recorder.reset()
        assert recorder.total_reads == 0
        recorder.record(4, "s")  # no memory of page 3 -> random again
        assert recorder.random_reads == 1


class TestPager:
    def test_allocate_and_read(self):
        pager = Pager(page_size=16)
        pid = pager.allocate(b"hello")
        page = pager.read(pid)
        assert page.startswith(b"hello")
        assert len(page) == 16

    def test_zero_padding(self):
        pager = Pager(page_size=8)
        pid = pager.allocate(b"ab")
        assert pager.read(pid) == b"ab" + b"\x00" * 6

    def test_overflow_rejected(self):
        pager = Pager(page_size=4)
        with pytest.raises(PageOverflowError):
            pager.allocate(b"too long")

    def test_allocate_run_splits_payload(self):
        pager = Pager(page_size=4)
        run = pager.allocate_run(b"abcdefghij")
        assert len(run) == 3
        assert pager.read(run[0]) == b"abcd"
        assert pager.read(run[2]) == b"ij\x00\x00"

    def test_allocate_run_empty_payload_gets_one_page(self):
        pager = Pager(page_size=4)
        run = pager.allocate_run(b"")
        assert len(run) == 1

    def test_read_out_of_range(self):
        pager = Pager()
        with pytest.raises(StorageError):
            pager.read(0)

    def test_write_round_trip(self):
        pager = Pager(page_size=8)
        pid = pager.allocate(b"old")
        pager.write(pid, b"new")
        assert pager.read(pid).startswith(b"new")

    def test_write_errors(self):
        pager = Pager(page_size=4)
        pid = pager.allocate()
        with pytest.raises(PageOverflowError):
            pager.write(pid, b"12345")
        with pytest.raises(StorageError):
            pager.write(pid + 1, b"x")

    def test_invalid_page_size(self):
        with pytest.raises(StorageError):
            Pager(page_size=0)

    def test_reads_drive_recorder(self):
        pager = Pager(page_size=4)
        a = pager.allocate(b"a")
        b = pager.allocate(b"b")
        pager.read(a, "s")
        pager.read(b, "s")
        assert pager.recorder.sequential_reads == 1
        assert pager.recorder.random_reads == 1
        pager.reset_counters()
        assert pager.recorder.total_reads == 0

    def test_page_count(self):
        pager = Pager(page_size=4)
        assert pager.page_count == 0
        pager.allocate()
        pager.allocate()
        assert pager.page_count == 2
