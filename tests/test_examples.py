"""Smoke tests: every example script runs cleanly end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each script runs in-process (runpy) with stdout captured, and
a couple of narrative anchors are asserted so a silently-broken demo
fails loudly.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv=None) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "6-match -> object 3" in out
        assert "Theorem 3.2" in out

    def test_image_retrieval(self, capsys):
        out = run_example("image_retrieval.py", capsys)
        assert "Table 2" in out
        assert "paper: absent even at k = 20" in out

    def test_multi_system_ir(self, capsys):
        out = run_example("multi_system_ir.py", capsys)
        assert "per-system bill" in out
        assert "FA's 1-match answer: point 1" in out
        assert "true 1-match:        point 2" in out

    def test_partial_similarity(self, capsys):
        out = run_example("partial_similarity.py", capsys)
        assert "skyline" in out
        assert "frequent k-n-match" in out

    def test_disk_search(self, capsys):
        out = run_example("disk_search.py", capsys, argv=["8000"])
        assert "AD" in out and "IGrid" in out
        assert "SSD" in out

    def test_mixed_attributes(self, capsys):
        out = run_example("mixed_attributes.py", capsys)
        assert "orange #1" in out
        assert "frequent 2-n-match" in out

    def test_dynamic_updates(self, capsys):
        out = run_example("dynamic_updates.py", capsys)
        assert "inserted sensor 5000" in out
        assert "sensor 5000 gone: True" in out

    def test_budgeted_search(self, capsys):
        out = run_example("budgeted_search.py", capsys)
        assert "answers verified" in out
        assert "recommended" in out or "use 'block-ad'" in out or "-> use" in out
