"""Setup shim.

Package metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` also works on environments whose setuptools lacks
PEP 660 editable-wheel support (no ``wheel`` package available), via
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
