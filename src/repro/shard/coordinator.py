"""Scatter-gather query execution across database shards.

:class:`ScatterGatherCoordinator` fans a (frequent) k-n-match query —
or a whole batch — out to per-shard :class:`~repro.core.engine.MatchDatabase`
instances, then merges the per-shard answers into the exact global
answer with the canonical tie-break (ascending difference, then
ascending *global* id; see :mod:`repro.core.merge`).

The fan-out reuses :class:`~repro.parallel.ParallelBatchExecutor`: shard
indices are presented to the executor as a one-column "query batch"
(one row per shard, ``chunk_size=1`` so every shard is its own work
unit), which buys the shard layer the executor's whole scheduling
stack — thread pool, inline fast path for one shard or one worker, and,
with a metrics registry installed, per-shard latency/straggler/worker-
utilisation metrics under the ``shard-scatter`` engine label.

Frequent k-n-match merging runs the per-``n`` merge *before* frequency
counting: each ``n``'s answer sets are merged across shards into the
exact global k-list first, and only then are appearance frequencies
counted over the merged sets — Definition 4 counts appearances in
answer sets of size exactly ``k``, so counting per shard and summing
would be wrong whenever a shard's local top-k differs from the global
one.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import MatchDatabase
from ..core.merge import merge_shard_stats, merge_top_k
from ..core.types import (
    FrequentMatchResult,
    MatchResult,
    SearchStats,
    rank_by_frequency,
)
from ..errors import ValidationError
from ..parallel import BatchStats, ParallelBatchExecutor

__all__ = [
    "ScatterGatherCoordinator",
    "SHARD_BACKENDS",
    "validate_shard_backend",
]

#: Execution backends for the scatter fan-out: ``"thread"`` reuses the
#: executor's thread pool in-process; ``"process"`` runs each shard call
#: in a persistent spawned worker over shared-memory columns
#: (:mod:`repro.shard.procpool`), escaping the GIL.  Answers are
#: bit-identical either way — the canonical merge always runs here, in
#: the coordinator process.
SHARD_BACKENDS = ("thread", "process")

#: Pool task kind for each coordinator scatter kind.
_POOL_KINDS = {
    "k_n_match": "query",
    "frequent_k_n_match": "frequent",
    "k_n_match_batch": "batch",
    "frequent_k_n_match_batch": "frequent_batch",
}


def validate_shard_backend(backend: str) -> str:
    """Check ``backend`` against :data:`SHARD_BACKENDS` and return it.

    Every layer that accepts a backend name (the coordinator, the
    sharded database, the loader, the CLI, the server) funnels through
    here so an unknown backend raises the same :class:`ValidationError`
    everywhere.
    """
    if backend not in SHARD_BACKENDS:
        raise ValidationError(
            f"unknown shard backend {backend!r}; choose from {SHARD_BACKENDS}"
        )
    return backend


class _ShardOutput:
    """One shard's contribution to a scatter: payload + rolled-up stats.

    ``stats`` is what :class:`ParallelBatchExecutor` aggregates into its
    :class:`BatchStats`; ``queries`` feeds the per-shard obs counters.
    """

    __slots__ = ("payload", "stats", "queries")

    def __init__(self, payload, stats: SearchStats, queries: int) -> None:
        self.payload = payload
        self.stats = stats
        self.queries = queries


class _ShardTaskEngine:
    """Adapter letting :class:`ParallelBatchExecutor` schedule shards.

    The executor fans out rows of a query batch; here each "row" is a
    shard position encoded as a one-element float vector.  The adapter
    deliberately defines no ``k_n_match_batch`` so the executor falls
    back to its per-row loop — one :meth:`k_n_match` call per shard —
    and ``k``/``n`` are ignored dummies.
    """

    name = "shard-scatter"

    def __init__(self, run_shard) -> None:
        self._run_shard = run_shard

    def k_n_match(self, task: np.ndarray, k: int, n: int) -> _ShardOutput:
        return self._run_shard(int(task[0]))


def _answer_set_differences(
    data: np.ndarray, query: np.ndarray, answer_sets: Dict[int, List[int]]
) -> Dict[int, np.ndarray]:
    """Exact n-match differences of each per-``n`` answer set's ids.

    Uses the same float64 arithmetic as the serial engines (``n-1``-th
    order statistic of ``|data[pid] - query|``), so merged orderings are
    bit-identical to unsharded execution.  ``data`` and the ids are
    shard-local here; the caller maps ids to the global space.
    """
    differences: Dict[int, np.ndarray] = {}
    for n, ids in answer_sets.items():
        rows = np.abs(data[np.asarray(ids, dtype=np.int64)] - query)
        differences[n] = np.partition(rows, n - 1, axis=1)[:, n - 1]
    return differences


def _wrap_pool_payload(pool_kind: str, payload) -> _ShardOutput:
    """Roll a worker payload into the same envelope the closures build.

    The payload shapes match the thread closures exactly (see
    :func:`repro.shard.procpool._run_task`); only the stats roll-up and
    query count need reconstructing on this side of the boundary.
    """
    if pool_kind == "query":
        return _ShardOutput(payload, payload.stats, 1)
    if pool_kind == "frequent":
        return _ShardOutput(payload, payload[0].stats, 1)
    if pool_kind == "batch":
        return _ShardOutput(
            payload,
            SearchStats.aggregate([result.stats for result in payload]),
            len(payload),
        )
    results = payload[0]  # frequent_batch
    return _ShardOutput(
        payload,
        SearchStats.aggregate([result.stats for result in results]),
        len(results),
    )


class ScatterGatherCoordinator:
    """Fan queries out over shards; merge exact global answers back.

    Parameters
    ----------
    shards:
        ``(shard_index, database, global_ids)`` triples for every
        *non-empty* shard.  ``global_ids`` maps the shard's local point
        ids (its row numbers) to global ids and must be ascending — the
        sharded database builds shards in ascending global id order, so
        local id order preserves global id order and the merge tie-break
        is exact.
    total_attributes:
        ``cardinality * dimensionality`` of the *whole* database, used
        as the denominator of merged :class:`SearchStats`.
    workers:
        Fan-out thread-pool size; defaults to one worker per shard,
        capped at ``os.cpu_count()``.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; enables per-shard
        counters/latency (``repro_shard_*``) plus the executor's
        scatter-level metrics.  Answers are identical either way.
    spans:
        Optional :class:`~repro.obs.SpanCollector`; each logical query
        then traces as a ``sharded/<kind>`` root with ``shard_fanout``
        and ``merge`` phases, plus one ``shard_call`` span per shard on
        its worker thread.
    partitioner:
        Name of the partitioning strategy that built the shards, carried
        as a label on the ``repro_shard_*`` metrics so per-shard skew
        can be attributed to the strategy that caused it.
    backend:
        ``"thread"`` (default) fans out on the executor's thread pool;
        ``"process"`` fans out to a persistent spawned worker pool over
        shared-memory shard columns (lazy-started on the first scatter;
        release it with :meth:`close` or a ``with`` block).  Answers and
        merged stats are bit-identical in both modes.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[int, MatchDatabase, np.ndarray]],
        total_attributes: int,
        workers: Optional[int] = None,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
        partitioner: str = "",
        backend: str = "thread",
    ) -> None:
        if not shards:
            raise ValidationError("scatter-gather needs at least one shard")
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1; got {workers}")
        self._shards = list(shards)
        self._total_attributes = int(total_attributes)
        self._workers = (
            int(workers)
            if workers is not None
            else max(1, min(len(self._shards), os.cpu_count() or 1))
        )
        self._metrics = metrics
        self._spans = spans
        self._partitioner = str(partitioner)
        self._backend = validate_shard_backend(backend)
        self._pool = None
        self._last_batch_stats: Optional[BatchStats] = None

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers

    @property
    def backend(self) -> str:
        """The fan-out backend, ``"thread"`` or ``"process"``."""
        return self._backend

    def set_backend(
        self, backend: str, workers: Optional[int] = None
    ) -> None:
        """Switch the fan-out backend (and optionally the worker count).

        Releases the process pool (if any) when the configuration
        changes; the next scatter lazily builds whatever the new mode
        needs.  Answers are identical before and after.
        """
        backend = validate_shard_backend(backend)
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1; got {workers}")
        changed = backend != self._backend or (
            workers is not None and int(workers) != self._workers
        )
        if changed:
            self.close()
            self._pool = None
        self._backend = backend
        if workers is not None:
            self._workers = int(workers)

    def close(self) -> None:
        """Release backend resources (idempotent, restart-friendly).

        Only the process backend holds releasable state — its worker
        pool and shared-memory segments.  A scatter after ``close()``
        transparently restarts the pool, so ``close()`` is a resource
        release, never a poison pill; the thread backend makes this a
        no-op, keeping one lifecycle contract across backends.
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ScatterGatherCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None:
            from .procpool import ShardProcessPool

            self._pool = ShardProcessPool(
                [(shard_index, db) for shard_index, db, _ in self._shards],
                workers=min(self._workers, len(self._shards)),
                default_engine=self._shards[0][1].default_engine,
            )
        return self._pool

    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def partitioner(self) -> str:
        """The partitioner name used as a ``repro_shard_*`` label."""
        return self._partitioner

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """The :class:`BatchStats` of the most recent ``*_batch`` call."""
        return self._last_batch_stats

    # ------------------------------------------------------------------
    def k_n_match(
        self, query: np.ndarray, k: int, n: int, engine: Optional[str] = None
    ) -> MatchResult:
        """Exact global k-n-match via per-shard top-k + canonical merge."""
        engine_name = self._engine_name(engine)

        def run_one(position: int) -> _ShardOutput:
            _, db, _ = self._shards[position]
            result = db.k_n_match(query, min(k, db.cardinality), n, engine=engine)
            return _ShardOutput(result, result.stats, 1)

        pool_args = (query, k, n, engine_name)
        spans = self._spans
        if spans is None:
            outputs = self._scatter(
                "k_n_match", engine_name, run_one, pool_args
            )
            return self._merge_match(outputs, k, n)
        with spans.span(
            "sharded/k_n_match", k=k, n=n, shards=len(self._shards)
        ):
            outputs = self._scatter(
                "k_n_match", engine_name, run_one, pool_args
            )
            with spans.span("merge"):
                return self._merge_match(outputs, k, n)

    def _merge_match(
        self, outputs: List[_ShardOutput], k: int, n: int
    ) -> MatchResult:
        """Gather per-shard top-k lists into the exact global answer."""
        ids = np.concatenate(
            [
                gids[np.asarray(output.payload.ids, dtype=np.int64)]
                for (_, _, gids), output in zip(self._shards, outputs)
            ]
        )
        differences = np.concatenate(
            [
                np.asarray(output.payload.differences, dtype=np.float64)
                for output in outputs
            ]
        )
        merged_ids, merged_differences = merge_top_k(ids, differences, k)
        return MatchResult(
            ids=merged_ids,
            differences=merged_differences,
            k=k,
            n=n,
            stats=merge_shard_stats(
                [output.stats for output in outputs], self._total_attributes
            ),
        )

    def frequent_k_n_match(
        self,
        query: np.ndarray,
        k: int,
        n_range: Tuple[int, int],
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Exact global frequent k-n-match.

        Per-``n`` answer sets are merged across shards first (each to
        the exact global k-list), and frequencies are counted over the
        merged sets — the order Definition 4 requires.
        """
        n0, n1 = n_range
        engine_name = self._engine_name(engine)

        def run_one(position: int) -> _ShardOutput:
            _, db, _ = self._shards[position]
            result = db.frequent_k_n_match(
                query,
                min(k, db.cardinality),
                (n0, n1),
                engine=engine,
                keep_answer_sets=True,
            )
            differences = _answer_set_differences(
                db.data, query, result.answer_sets
            )
            return _ShardOutput((result, differences), result.stats, 1)

        pool_args = (query, k, (n0, n1), engine_name)
        spans = self._spans
        if spans is None:
            outputs = self._scatter(
                "frequent_k_n_match", engine_name, run_one, pool_args
            )
            return self._merge_frequent(outputs, k, n0, n1, keep_answer_sets)
        with spans.span(
            "sharded/frequent_k_n_match",
            k=k, n0=n0, n1=n1, shards=len(self._shards),
        ):
            outputs = self._scatter(
                "frequent_k_n_match", engine_name, run_one, pool_args
            )
            with spans.span("merge"):
                return self._merge_frequent(
                    outputs, k, n0, n1, keep_answer_sets
                )

    def _merge_frequent(
        self,
        outputs: List[_ShardOutput],
        k: int,
        n0: int,
        n1: int,
        keep_answer_sets: bool,
    ) -> FrequentMatchResult:
        """Per-``n`` merge first, frequency counting second (Def. 4)."""
        merged_sets: Dict[int, List[int]] = {}
        for n in range(n0, n1 + 1):
            ids = np.concatenate(
                [
                    gids[
                        np.asarray(
                            output.payload[0].answer_sets[n], dtype=np.int64
                        )
                    ]
                    for (_, _, gids), output in zip(self._shards, outputs)
                ]
            )
            differences = np.concatenate(
                [output.payload[1][n] for output in outputs]
            )
            merged_sets[n], _ = merge_top_k(ids, differences, k)
        chosen, frequencies = rank_by_frequency(merged_sets, k)
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=merged_sets if keep_answer_sets else None,
            stats=merge_shard_stats(
                [output.stats for output in outputs], self._total_attributes
            ),
        )

    # ------------------------------------------------------------------
    def k_n_match_batch(
        self,
        queries: np.ndarray,
        k: int,
        n: int,
        engine: Optional[str] = None,
    ) -> List[MatchResult]:
        """One exact global k-n-match per query row, shard-parallel.

        Every shard runs the *whole* batch through its own engine's
        native batch path (lock-step vectorisation for
        ``batch-block-ad``), so the scatter parallelism composes with
        the batch engines rather than replacing them.
        """
        count = queries.shape[0]
        started = time.perf_counter()
        if count == 0:
            self._last_batch_stats = BatchStats(
                queries=0, shards=0, workers=self._workers,
                backend=self._backend,
            )
            return []
        engine_name = self._engine_name(engine)

        def run_one(position: int) -> _ShardOutput:
            _, db, _ = self._shards[position]
            results = db.k_n_match_batch(
                queries, min(k, db.cardinality), n, engine=engine
            )
            return _ShardOutput(
                results,
                SearchStats.aggregate([result.stats for result in results]),
                count,
            )

        pool_args = (queries, k, n, engine_name)
        spans = self._spans
        if spans is None:
            outputs = self._scatter(
                "k_n_match_batch", engine_name, run_one, pool_args
            )
            merged = self._merge_match_batch(outputs, count, k, n)
        else:
            with spans.span(
                "sharded/k_n_match_batch",
                batch=count, k=k, n=n, shards=len(self._shards),
            ):
                outputs = self._scatter(
                    "k_n_match_batch", engine_name, run_one, pool_args
                )
                with spans.span("merge"):
                    merged = self._merge_match_batch(outputs, count, k, n)
        self._record_batch(count, started, merged)
        return merged

    def _merge_match_batch(
        self, outputs: List[_ShardOutput], count: int, k: int, n: int
    ) -> List[MatchResult]:
        """Per-query gather of the per-shard batch results."""
        merged: List[MatchResult] = []
        for qi in range(count):
            ids = np.concatenate(
                [
                    gids[np.asarray(output.payload[qi].ids, dtype=np.int64)]
                    for (_, _, gids), output in zip(self._shards, outputs)
                ]
            )
            differences = np.concatenate(
                [
                    np.asarray(
                        output.payload[qi].differences, dtype=np.float64
                    )
                    for output in outputs
                ]
            )
            merged_ids, merged_differences = merge_top_k(ids, differences, k)
            merged.append(
                MatchResult(
                    ids=merged_ids,
                    differences=merged_differences,
                    k=k,
                    n=n,
                    stats=merge_shard_stats(
                        [output.payload[qi].stats for output in outputs],
                        self._total_attributes,
                    ),
                )
            )
        return merged

    def frequent_k_n_match_batch(
        self,
        queries: np.ndarray,
        k: int,
        n_range: Tuple[int, int],
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
    ) -> List[FrequentMatchResult]:
        """One exact global frequent k-n-match per query row."""
        count = queries.shape[0]
        started = time.perf_counter()
        if count == 0:
            self._last_batch_stats = BatchStats(
                queries=0, shards=0, workers=self._workers,
                backend=self._backend,
            )
            return []
        n0, n1 = n_range
        engine_name = self._engine_name(engine)

        def run_one(position: int) -> _ShardOutput:
            _, db, _ = self._shards[position]
            results = db.frequent_k_n_match_batch(
                queries,
                min(k, db.cardinality),
                (n0, n1),
                engine=engine,
                keep_answer_sets=True,
            )
            differences = [
                _answer_set_differences(db.data, query, result.answer_sets)
                for query, result in zip(queries, results)
            ]
            return _ShardOutput(
                (results, differences),
                SearchStats.aggregate([result.stats for result in results]),
                count,
            )

        pool_args = (queries, k, (n0, n1), engine_name)
        spans = self._spans
        if spans is None:
            outputs = self._scatter(
                "frequent_k_n_match_batch", engine_name, run_one, pool_args
            )
            merged = self._merge_frequent_batch(
                outputs, count, k, n0, n1, keep_answer_sets
            )
        else:
            with spans.span(
                "sharded/frequent_k_n_match_batch",
                batch=count, k=k, n0=n0, n1=n1, shards=len(self._shards),
            ):
                outputs = self._scatter(
                    "frequent_k_n_match_batch", engine_name, run_one,
                    pool_args,
                )
                with spans.span("merge"):
                    merged = self._merge_frequent_batch(
                        outputs, count, k, n0, n1, keep_answer_sets
                    )
        self._record_batch(count, started, merged)
        return merged

    def _merge_frequent_batch(
        self,
        outputs: List[_ShardOutput],
        count: int,
        k: int,
        n0: int,
        n1: int,
        keep_answer_sets: bool,
    ) -> List[FrequentMatchResult]:
        """Per-query, per-``n`` gather of the per-shard batch results."""
        merged: List[FrequentMatchResult] = []
        for qi in range(count):
            merged_sets: Dict[int, List[int]] = {}
            for n in range(n0, n1 + 1):
                ids = np.concatenate(
                    [
                        gids[
                            np.asarray(
                                output.payload[0][qi].answer_sets[n],
                                dtype=np.int64,
                            )
                        ]
                        for (_, _, gids), output in zip(self._shards, outputs)
                    ]
                )
                differences = np.concatenate(
                    [output.payload[1][qi][n] for output in outputs]
                )
                merged_sets[n], _ = merge_top_k(ids, differences, k)
            chosen, frequencies = rank_by_frequency(merged_sets, k)
            merged.append(
                FrequentMatchResult(
                    ids=chosen,
                    frequencies=frequencies,
                    k=k,
                    n_range=(n0, n1),
                    answer_sets=merged_sets if keep_answer_sets else None,
                    stats=merge_shard_stats(
                        [output.payload[0][qi].stats for output in outputs],
                        self._total_attributes,
                    ),
                )
            )
        return merged

    # ------------------------------------------------------------------
    def _engine_name(self, engine: Optional[str]) -> str:
        return engine or self._shards[0][1].default_engine

    def _scatter(
        self, kind: str, engine_name: str, run_one, pool_args: tuple
    ) -> List[_ShardOutput]:
        """Fan the scatter out on the configured backend.

        ``run_one(position)`` is the thread-backend closure; ``pool_args``
        is the equivalent worker-task argument tuple for the process
        backend.  Both produce the same payload shapes, so everything
        downstream (merge, stats roll-up) is backend-agnostic.
        """
        if self._backend == "process":
            return self._scatter_process(kind, engine_name, pool_args)
        return self._scatter_thread(kind, engine_name, run_one)

    def _scatter_thread(
        self, kind: str, engine_name: str, run_one
    ) -> List[_ShardOutput]:
        """Run ``run_one(position)`` for every shard via the executor."""
        registry = self._metrics
        spans = self._spans
        if registry is None and spans is None:
            run = run_one
        else:
            # Captured on the request thread: pool-thread shard_call
            # roots re-attach it so cross-thread siblings stay
            # correlated with the request that spawned them.
            trace_id = (
                spans.capture_context("trace_id")
                if spans is not None
                else None
            )

            def run(position: int) -> _ShardOutput:
                shard_index = self._shards[position][0]
                shard_started = (
                    time.perf_counter() if registry is not None else 0.0
                )
                if spans is None:
                    output = run_one(position)
                else:
                    # On a pool worker this opens a new root (span stacks
                    # are thread-confined); inline it nests under the
                    # ``shard_fanout`` span of the calling thread.
                    call_meta = dict(
                        shard=shard_index,
                        engine=engine_name,
                        kind=kind,
                        backend="thread",
                    )
                    if trace_id is not None:
                        call_meta["trace_id"] = trace_id
                    with spans.span("shard_call", **call_meta):
                        output = run_one(position)
                if registry is not None:
                    from ..obs import observe_shard_call

                    observe_shard_call(
                        registry,
                        shard=str(shard_index),
                        engine=engine_name,
                        kind=kind,
                        queries=output.queries,
                        stats=output.stats,
                        wall_seconds=time.perf_counter() - shard_started,
                        partitioner=self._partitioner,
                        backend="thread",
                    )
                return output

        tasks = np.arange(len(self._shards), dtype=np.float64).reshape(-1, 1)
        executor = ParallelBatchExecutor(
            _ShardTaskEngine(run),
            workers=min(self._workers, len(self._shards)),
            chunk_size=1,
            metrics=registry,
        )
        if spans is None:
            return list(executor.k_n_match_batch(tasks, 1, 1))
        with spans.span(
            "shard_fanout",
            kind=kind,
            engine=engine_name,
            shards=len(self._shards),
            backend="thread",
        ):
            return list(executor.k_n_match_batch(tasks, 1, 1))

    def _scatter_process(
        self, kind: str, engine_name: str, pool_args: tuple
    ) -> List[_ShardOutput]:
        """Fan the scatter out to the shared-memory worker pool.

        One pool task per shard; the pool load-balances them over its
        workers and ships back the same payload shapes the thread
        closures produce, plus a per-shard envelope (worker pid, worker
        wall seconds).  Spans and metrics are recorded here, post hoc —
        worker processes never see the obs objects — with the worker's
        own wall time as the duration of record.
        """
        pool = self._ensure_pool()
        pool_kind = _POOL_KINDS[kind]
        tasks = [
            (position, pool_kind, pool_args)
            for position in range(len(self._shards))
        ]
        spans = self._spans
        if spans is None:
            results = pool.run_tasks(tasks)
        else:
            with spans.span(
                "shard_fanout",
                kind=kind,
                engine=engine_name,
                shards=len(self._shards),
                backend="process",
                workers=pool.workers,
            ):
                results = pool.run_tasks(tasks, want_spans=True)
        registry = self._metrics
        trace_id = (
            spans.capture_context("trace_id") if spans is not None else None
        )
        outputs: List[_ShardOutput] = []
        for position, result in enumerate(results):
            shard_index = self._shards[position][0]
            output = _wrap_pool_payload(pool_kind, result.payload)
            if spans is not None:
                # Post-hoc marker span: the shard ran in a worker
                # process, so the span's own duration is ~0 and the
                # authoritative timing is the shipped-back
                # ``worker_seconds`` annotation.  The worker's own span
                # forest (shipped in the ok envelope) is then grafted
                # underneath, rebased onto this span's clock, so the
                # tree shows real worker phase rows.
                call_meta = dict(
                    shard=shard_index,
                    engine=engine_name,
                    kind=kind,
                    backend="process",
                    worker_pid=result.worker_pid,
                    worker_seconds=result.worker_seconds,
                )
                if trace_id is not None:
                    call_meta["trace_id"] = trace_id
                with spans.span("shard_call", **call_meta) as call_span:
                    pass
                if result.spans:
                    from ..obs.spans import span_from_dict, stitch_worker_spans

                    stitch_worker_spans(
                        call_span,
                        [span_from_dict(tree) for tree in result.spans],
                        result.worker_pid,
                    )
            if registry is not None:
                from ..obs import observe_shard_call

                observe_shard_call(
                    registry,
                    shard=str(shard_index),
                    engine=engine_name,
                    kind=kind,
                    queries=output.queries,
                    stats=output.stats,
                    wall_seconds=result.worker_seconds,
                    partitioner=self._partitioner,
                    backend="process",
                )
            outputs.append(output)
        return outputs

    def _record_batch(self, count: int, started: float, merged) -> None:
        self._last_batch_stats = BatchStats(
            queries=count,
            shards=len(self._shards),
            workers=self._workers,
            wall_time_seconds=time.perf_counter() - started,
            total=SearchStats.aggregate([result.stats for result in merged]),
            backend=self._backend,
        )
