"""repro.shard — sharded scatter-gather search with exact global merge.

The next scaling axis after batch execution (:mod:`repro.parallel`):
partition the point set into shards, search them concurrently, and merge
per-shard top-k answers into the *exact* global k-n-match and frequent
k-n-match answers — bit-identical ids, differences, frequencies and
answer sets, because shards partition the point set and the merge uses
the library's canonical deterministic tie-break.

Three layers, each usable on its own:

* :class:`Partitioner` strategies (``round-robin``, ``hash``, ``range``)
  in a pluggable registry (:func:`register_partitioner`,
  :func:`make_partitioner`);
* :class:`ShardedMatchDatabase` — one
  :class:`~repro.core.engine.MatchDatabase` per shard with local-to-
  global id mapping, mirroring the unsharded query surface;
* :class:`ScatterGatherCoordinator` — the fan-out/merge engine, built
  on :class:`~repro.parallel.ParallelBatchExecutor` (``backend=
  "thread"``) or on a persistent shared-memory worker-process pool
  (``backend="process"``, :class:`ShardProcessPool`) that escapes the
  GIL for real multi-core scaling.

See ``docs/sharding.md`` for partitioner trade-offs, the exactness
argument and the process backend.
"""

from .coordinator import (
    SHARD_BACKENDS,
    ScatterGatherCoordinator,
    validate_shard_backend,
)
from .database import ShardedMatchDatabase
from .procpool import ShardProcessPool
from .partition import (
    DEFAULT_PARTITIONER,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    partitioner_names,
    register_partitioner,
    validate_shard_count,
)

__all__ = [
    "ShardedMatchDatabase",
    "ScatterGatherCoordinator",
    "ShardProcessPool",
    "SHARD_BACKENDS",
    "validate_shard_backend",
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "RangePartitioner",
    "register_partitioner",
    "make_partitioner",
    "partitioner_names",
    "validate_shard_count",
    "DEFAULT_PARTITIONER",
]
