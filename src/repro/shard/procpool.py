"""Persistent multiprocess shard workers over shared memory.

The thread-backed scatter (:mod:`repro.shard.coordinator`) tops out at
the GIL: per-shard engine calls spend most of their time inside numpy,
but the Python glue between ufuncs serialises, and the measured result
is thread fan-out *losing* to single-thread vectorised execution
(``BENCH_shard.json``).  This module is the escape: each shard's
prebuilt :class:`~repro.sorted_lists.SortedColumns` — the raw data plus
the ``(d, c)`` sorted values/ids matrices — is published **once** into
:mod:`multiprocessing.shared_memory` segments, and a small persistent
pool of **spawned** worker processes maps them back as zero-copy,
read-only numpy views.  Per query, only the task tuple (a query vector,
``k``, ``n``, an engine name) and the per-shard answer payload (k ids,
k differences, a :class:`~repro.core.types.SearchStats`) cross the
process boundary — kilobytes of IPC, never the database.

Exactness is inherited, not re-proven: workers run the very same
:class:`~repro.core.engine.MatchDatabase` engines over the very same
float64 arrays (bit-for-bit — shared memory, not a re-sorted copy), and
the canonical tie-break merge stays in the coordinator process, so
process-backed answers are bit-identical to thread-backed and serial
execution.

Lifecycle contract (shared with the thread backend):

* the pool starts lazily on the first scatter and persists across
  queries;
* :meth:`ShardProcessPool.close` is idempotent and releases everything
  (workers joined or terminated, segments unlinked); a later scatter
  transparently restarts the pool, mirroring the thread backend where
  ``close()`` is a resource release, never a poison pill;
* segments are additionally covered by a :func:`weakref.finalize`
  guard (which registers atexit), so an abandoned pool cannot orphan
  ``/dev/shm`` entries;
* a worker death is detected, not hung on: every task is claimed by its
  worker before execution, so a missing result from a dead claimant
  raises a structured :class:`~repro.errors.ShardWorkerError` naming
  the pid and exit code (a short post-death grace window covers the
  case where the claim message itself died with the worker); the next
  scatter respawns the dead workers.

Everything a spawned child needs is importable at module level (no
closures, no fork-inherited state), so the pool is spawn-safe on every
platform and immune to the fork-vs-threads deadlocks that make
``fork``-based pools unusable under a threaded server.
"""

from __future__ import annotations

import itertools
import os
import queue
import signal
import threading
import time
import traceback
import uuid
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from ..core.engine import MatchDatabase
from ..errors import ShardWorkerError, ValidationError
from ..obs.spans import SpanCollector, span_to_dict
from ..sorted_lists import SortedColumns

__all__ = ["ShardProcessPool", "ShardSegmentSpec"]

#: Segment offsets are aligned so every mapped array starts on a cache
#: line; numpy neither needs nor checks this, but it keeps the layout
#: predictable and the float64 views naturally aligned.
_ALIGN = 64

#: How long the collector waits on the result queue before re-checking
#: worker liveness.  Purely a detection latency knob — correctness does
#: not depend on it.
_POLL_SECONDS = 0.1

#: Grace given to a worker between the shutdown sentinel and SIGTERM.
_JOIN_SECONDS = 5.0

#: Once a dead worker is observed with tasks outstanding, how long the
#: collector keeps waiting for further messages before declaring the
#: scatter lost.  Needed because a SIGKILLed worker can swallow a task
#: *and* lose its claim message (queue feeder threads die with the
#: process), which no claim bookkeeping can see; any arriving message
#: resets the deadline, so only a genuinely silent pool trips it.
_DEATH_GRACE_SECONDS = 2.0

#: Task kinds understood by the worker loop.  ``__test_crash__`` is a
#: deliberate crash hook (SIGKILL from inside the task) used by the
#: worker-death tests; it is never emitted by the coordinator.
_KINDS = ("query", "frequent", "batch", "frequent_batch", "__test_crash__")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one numpy array inside a shared segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ShardSegmentSpec:
    """Everything a worker needs to map one shard: name + array layout.

    Picklable and tiny — this (not the data) is what crosses the
    process boundary at pool start.
    """

    name: str
    position: int
    shard_index: int
    data: _ArraySpec
    values: _ArraySpec
    ids: _ArraySpec


def _publish_shard(
    position: int, shard_index: int, columns: SortedColumns
) -> Tuple[shared_memory.SharedMemory, ShardSegmentSpec]:
    """Copy one shard's arrays into a fresh shared segment, once."""
    data = np.ascontiguousarray(columns.data, dtype=np.float64)
    values = np.ascontiguousarray(columns.values_matrix, dtype=np.float64)
    ids = np.ascontiguousarray(columns.ids_matrix, dtype=np.int64)
    offsets = []
    offset = 0
    for array in (data, values, ids):
        offset = _align(offset)
        offsets.append(offset)
        offset += array.nbytes
    name = f"repro-shard-{os.getpid()}-{uuid.uuid4().hex[:8]}-{position}"
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(offset, 1)
    )
    specs = []
    for array, start in zip((data, values, ids), offsets):
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=start
        )
        view[...] = array
        specs.append(_ArraySpec(start, tuple(array.shape), array.dtype.str))
    return segment, ShardSegmentSpec(
        name=name,
        position=position,
        shard_index=shard_index,
        data=specs[0],
        values=specs[1],
        ids=specs[2],
    )


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment; the parent owns unlinking.

    On Python >= 3.13 ``track=False`` says so explicitly.  Before that,
    attaching re-registers the name with the resource tracker — but
    spawned children inherit the parent's tracker process and
    registration is idempotent there, so the parent's single
    close-and-unlink still retires the name exactly once; unregistering
    here would instead *remove the parent's registration* out from
    under it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _map_array(segment: shared_memory.SharedMemory, spec: _ArraySpec):
    view = np.ndarray(
        spec.shape,
        dtype=np.dtype(spec.dtype),
        buffer=segment.buf,
        offset=spec.offset,
    )
    view.flags.writeable = False
    return view


def _release_segments(segments: Sequence[shared_memory.SharedMemory]) -> None:
    """Detach and unlink every segment; tolerant of partial teardown."""
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _run_task(db: MatchDatabase, kind: str, args: tuple):
    """Execute one task against a mapped shard database.

    The payloads mirror what the thread backend's closures hand the
    merge step, so the coordinator treats both backends identically:
    ``query`` -> MatchResult; ``frequent`` -> (FrequentMatchResult,
    per-n difference arrays); ``batch`` -> [MatchResult];
    ``frequent_batch`` -> ([FrequentMatchResult], [per-n differences]).
    """
    if kind == "query":
        query, k, n, engine = args
        return db.k_n_match(query, min(k, db.cardinality), n, engine=engine)
    if kind == "frequent":
        query, k, n_range, engine = args
        result = db.frequent_k_n_match(
            query,
            min(k, db.cardinality),
            n_range,
            engine=engine,
            keep_answer_sets=True,
        )
        return result, _answer_set_differences(db.data, query, result.answer_sets)
    if kind == "batch":
        queries, k, n, engine = args
        return db.k_n_match_batch(
            queries, min(k, db.cardinality), n, engine=engine
        )
    if kind == "frequent_batch":
        queries, k, n_range, engine = args
        results = db.frequent_k_n_match_batch(
            queries,
            min(k, db.cardinality),
            n_range,
            engine=engine,
            keep_answer_sets=True,
        )
        differences = [
            _answer_set_differences(db.data, query, result.answer_sets)
            for query, result in zip(queries, results)
        ]
        return results, differences
    if kind == "__test_crash__":
        os.kill(os.getpid(), signal.SIGKILL)
    raise ValueError(f"unknown task kind {kind!r}")


def _answer_set_differences(data, query, answer_sets):
    """Same arithmetic as the coordinator's helper, shard-local ids.

    Duplicated (three lines) rather than imported from the coordinator
    so the worker's import closure stays minimal under spawn.
    """
    differences = {}
    for n, ids in answer_sets.items():
        rows = np.abs(data[np.asarray(ids, dtype=np.int64)] - query)
        differences[n] = np.partition(rows, n - 1, axis=1)[:, n - 1]
    return differences


def _worker_main(
    specs: List[ShardSegmentSpec],
    default_engine: str,
    tasks,
    results,
) -> None:
    """Worker loop: attach segments once, then serve tasks until sentinel.

    Every task is acknowledged with a *claim* message before execution,
    so the coordinator can tell "task lost inside a dead worker" from
    "task still queued for a live one".  Task failures are shipped back
    as structured error payloads — a worker never dies on a bad query.
    """
    pid = os.getpid()
    segments: Dict[int, shared_memory.SharedMemory] = {}
    databases: Dict[int, MatchDatabase] = {}
    by_position = {spec.position: spec for spec in specs}
    try:
        for spec in specs:
            segments[spec.position] = _attach_segment(spec.name)
        while True:
            task = tasks.get()
            if task is None:
                break
            task_id, position, kind, args, want_spans = task
            results.put(("claim", task_id, pid, None, 0.0, None))
            started = time.perf_counter()
            collector: Optional[SpanCollector] = None
            try:
                db = databases.get(position)
                if db is None:
                    spec = by_position[position]
                    segment = segments[position]
                    columns = SortedColumns.from_prebuilt(
                        _map_array(segment, spec.data),
                        _map_array(segment, spec.values),
                        _map_array(segment, spec.ids),
                    )
                    db = MatchDatabase.from_columns(
                        columns, default_engine=default_engine
                    )
                    databases[position] = db
                if want_spans:
                    # One fresh collector per spanned task: its ring then
                    # holds exactly this task's root trees, in open order,
                    # ready to ship back in the ok envelope.  Spans stay
                    # strictly zero-cost when the coordinator has no
                    # collector installed (want_spans False).
                    collector = SpanCollector()
                    db.set_spans(collector)
                payload = _run_task(db, kind, args)
            except BaseException as error:  # ship it, don't die
                detail = (
                    f"{type(error).__name__}: {error}\n"
                    + traceback.format_exc()
                )
                results.put(
                    (
                        "error",
                        task_id,
                        pid,
                        detail,
                        time.perf_counter() - started,
                        None,
                    )
                )
            else:
                span_trees = None
                if collector is not None:
                    span_trees = [
                        span_to_dict(root) for root in collector.traces()
                    ]
                results.put(
                    (
                        "ok",
                        task_id,
                        pid,
                        payload,
                        time.perf_counter() - started,
                        span_trees,
                    )
                )
            finally:
                if collector is not None:
                    db.set_spans(None)
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except Exception:
                pass


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class PoolResult:
    """One shard's answer envelope: payload + where/how long it ran.

    ``spans`` is the worker-side span forest (``span_to_dict`` form,
    worker clock) when the scatter asked for it, else ``None``.
    """

    __slots__ = ("payload", "worker_seconds", "worker_pid", "spans")

    def __init__(
        self,
        payload,
        worker_seconds: float,
        worker_pid: int,
        spans=None,
    ) -> None:
        self.payload = payload
        self.worker_seconds = worker_seconds
        self.worker_pid = worker_pid
        self.spans = spans


class ShardProcessPool:
    """Persistent spawn pool over shared-memory shard columns.

    Parameters
    ----------
    shards:
        ``(shard_index, database)`` pairs in coordinator position order;
        each database's prebuilt sorted columns are what gets published.
    workers:
        Number of worker processes (every worker maps every shard, so
        any worker can serve any shard — one shared task queue load-
        balances the fan-out).
    default_engine:
        Default engine name for worker-side databases, matching the
        coordinator's shards so ``engine=None`` resolves identically.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[int, MatchDatabase]],
        workers: int,
        default_engine: str = "ad",
    ) -> None:
        if not shards:
            raise ValidationError("process pool needs at least one shard")
        if workers < 1:
            raise ValidationError(f"workers must be >= 1; got {workers}")
        self._shards = list(shards)
        self._workers_wanted = int(workers)
        self._default_engine = default_engine
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._task_ids = itertools.count()
        self._segments: List[shared_memory.SharedMemory] = []
        self._specs: List[ShardSegmentSpec] = []
        self._processes: List = []
        self._tasks = None
        self._results = None
        self._finalizer: Optional[weakref.finalize] = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def workers(self) -> int:
        return self._workers_wanted

    def worker_pids(self) -> List[int]:
        """Pids of the current worker processes (empty before start)."""
        return [p.pid for p in self._processes if p.pid is not None]

    @property
    def start_method(self) -> str:
        return self._context.get_start_method()

    def segment_names(self) -> List[str]:
        """Names of the live shared segments (empty before start/after close)."""
        return [spec.name for spec in self._specs]

    # ------------------------------------------------------------------
    def start(self) -> "ShardProcessPool":
        """Publish segments and spawn workers (idempotent)."""
        with self._lock:
            if self._started:
                return self
            segments: List[shared_memory.SharedMemory] = []
            specs: List[ShardSegmentSpec] = []
            try:
                for position, (shard_index, db) in enumerate(self._shards):
                    segment, spec = _publish_shard(
                        position, shard_index, db.columns
                    )
                    segments.append(segment)
                    specs.append(spec)
            except Exception:
                _release_segments(segments)
                raise
            self._segments = segments
            self._specs = specs
            # finalize() registers atexit, so even an abandoned pool
            # cannot orphan its /dev/shm entries.
            self._finalizer = weakref.finalize(
                self, _release_segments, segments
            )
            self._tasks = self._context.Queue()
            self._results = self._context.Queue()
            self._processes = []
            self._started = True
            try:
                self._spawn_missing()
            except Exception:
                self._teardown()
                raise
            return self

    def _spawn_missing(self) -> None:
        """Bring the worker set back to strength (initial spawn or repair)."""
        self._processes = [p for p in self._processes if p.is_alive()]
        while len(self._processes) < self._workers_wanted:
            process = self._context.Process(
                target=_worker_main,
                args=(
                    self._specs,
                    self._default_engine,
                    self._tasks,
                    self._results,
                ),
                name=f"repro-shard-worker-{len(self._processes)}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[Tuple[int, str, tuple]],
        want_spans: bool = False,
    ) -> List[PoolResult]:
        """Scatter ``(position, kind, args)`` tasks; gather in task order.

        ``want_spans=True`` asks every worker to run its task under a
        fresh :class:`SpanCollector` and ship the finished span forest
        back in the ok envelope (``PoolResult.spans``); the default
        keeps the wire format span-free and the worker path zero-cost.

        Thread-safe (one scatter at a time; the per-shard fan-out within
        a scatter is what runs in parallel).  Raises
        :class:`ShardWorkerError` when a worker dies holding a task or a
        task raises remotely; either way the pool stays usable — the
        next call respawns dead workers and reissues nothing stale
        (results are matched by task id, so late arrivals from an
        aborted scatter are discarded).
        """
        with self._lock:
            self.start()
            self._spawn_missing()
            issued: Dict[int, int] = {}  # task_id -> task order
            for order, (position, kind, args) in enumerate(tasks):
                task_id = next(self._task_ids)
                issued[task_id] = order
                self._tasks.put(
                    (task_id, position, kind, args, bool(want_spans))
                )
            collected: Dict[int, PoolResult] = {}
            claims: Dict[int, int] = {}  # task_id -> worker pid
            death_deadline: Optional[float] = None
            while len(collected) < len(issued):
                try:
                    message = self._results.get(timeout=_POLL_SECONDS)
                except queue.Empty:
                    death_deadline = self._check_workers(
                        issued, collected, claims, death_deadline
                    )
                    continue
                death_deadline = None  # any message is progress
                status, task_id, pid, payload, seconds, span_trees = message
                if task_id not in issued:
                    continue  # stale leftover from an aborted scatter
                if status == "claim":
                    claims[task_id] = pid
                    continue
                if status == "error":
                    raise ShardWorkerError(
                        f"shard task failed in worker pid {pid}: {payload}"
                    )
                collected[task_id] = PoolResult(
                    payload, seconds, pid, span_trees
                )
            ordered: List[Optional[PoolResult]] = [None] * len(issued)
            for task_id, order in issued.items():
                ordered[order] = collected[task_id]
            return ordered

    def _check_workers(
        self, issued, collected, claims, deadline: Optional[float]
    ) -> Optional[float]:
        """Turn a dead worker into a structured error instead of a hang.

        Returns the (possibly newly started) death-grace deadline, or
        ``None`` while every worker is alive or a live worker is known
        to be computing an outstanding task.
        """
        dead = [p for p in self._processes if not p.is_alive()]
        if not dead:
            return None
        dead_pids = {p.pid for p in dead}
        outstanding = [tid for tid in issued if tid not in collected]
        lost = [tid for tid in outstanding if claims.get(tid) in dead_pids]
        all_dead = all(not p.is_alive() for p in self._processes)
        if lost or (all_dead and outstanding):
            raise ShardWorkerError(self._death_message(dead, outstanding))
        if not outstanding:
            return None
        live_pids = {p.pid for p in self._processes if p.is_alive()}
        if any(claims.get(tid) in live_pids for tid in outstanding):
            # A live worker holds an outstanding task: it will report in
            # eventually, and its messages reset the grace window — so a
            # long-running task never trips the deadline.
            return None
        # Dead worker(s), outstanding tasks, and no live claimant.  The
        # tasks *should* still be in the queue for survivors to claim;
        # but a SIGKILLed worker can dequeue a task and die before its
        # claim message flushes (queue feeders die with the process), in
        # which case no claim ever arrives.  Give the queue a grace
        # window, then declare the scatter lost rather than hang.
        now = time.monotonic()
        if deadline is None:
            return now + _DEATH_GRACE_SECONDS
        if now < deadline:
            return deadline
        raise ShardWorkerError(self._death_message(dead, outstanding))

    def _death_message(self, dead, outstanding) -> str:
        detail = ", ".join(f"pid {p.pid} exitcode {p.exitcode}" for p in dead)
        return (
            f"{len(dead)} shard worker(s) died with "
            f"{len(outstanding)} task(s) outstanding ({detail}); "
            f"the pool will respawn workers on the next scatter"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release workers and segments (idempotent, restart-friendly)."""
        with self._lock:
            if not self._started:
                return
            self._teardown()

    def _teardown(self) -> None:
        for process in self._processes:
            if process.is_alive():
                try:
                    self._tasks.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + _JOIN_SECONDS
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_SECONDS)
        self._processes = []
        for q in (self._tasks, self._results):
            if q is not None:
                try:
                    q.close()
                    q.join_thread()
                except Exception:
                    pass
        self._tasks = None
        self._results = None
        if self._finalizer is not None:
            self._finalizer()  # detach + unlink, exactly once
            self._finalizer = None
        else:
            _release_segments(self._segments)
        self._segments = []
        self._specs = []
        self._started = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
