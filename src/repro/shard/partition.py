"""Partitioner strategies: how points are assigned to shards.

A partitioner maps every point of a ``(c, d)`` database to one of ``S``
shards.  Because the shards partition the *point set*, any strategy
yields exact global answers after the scatter-gather merge — the choice
only affects balance and locality:

* ``"round-robin"`` — point ``i`` goes to shard ``i % S``.  Perfectly
  balanced (sizes differ by at most one), no data dependence.
* ``"hash"`` — a splitmix64-style mix of the point id, modulo ``S``.
  Statistically balanced and stable under id-preserving reorderings of
  the build pipeline; the mix matters because raw ``id % S`` would just
  be round-robin and raw ``hash(int)`` is the identity in CPython.
* ``"range"`` — equal-count contiguous ranges of one chosen dimension's
  sorted order.  Gives shards value-locality in that dimension (useful
  when queries cluster there), still perfectly count-balanced because
  the split is on ranks, not values.

Strategies live in a registry so downstream code (and the CLI) can look
them up by name; :func:`register_partitioner` adds new ones.

A strategy only produces the ``point -> shard`` assignment; the sharded
database itself materialises each shard in *ascending global id* order,
so local id order always preserves global id order regardless of the
strategy.  That invariant is what lets the merge's tie-break on global
id reproduce the unsharded engines' deterministic order, and it is why
a custom partitioner never needs to worry about ordering — only about
which shard each point lands in.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np

from ..errors import ValidationError

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "RangePartitioner",
    "register_partitioner",
    "make_partitioner",
    "partitioner_names",
    "validate_shard_count",
    "DEFAULT_PARTITIONER",
]

#: Strategy used when the caller does not pick one.
DEFAULT_PARTITIONER = "round-robin"

_PARTITIONERS: Dict[str, Type["Partitioner"]] = {}


def register_partitioner(cls: Type["Partitioner"]) -> Type["Partitioner"]:
    """Class decorator adding a strategy to the by-name registry."""
    if not getattr(cls, "name", None):
        raise ValidationError("a partitioner class must define a name")
    _PARTITIONERS[cls.name] = cls
    return cls


def partitioner_names() -> Tuple[str, ...]:
    """Registered strategy names, sorted (stable for error messages)."""
    return tuple(sorted(_PARTITIONERS))


def make_partitioner(name: str, **options) -> "Partitioner":
    """Instantiate a registered strategy by name.

    ``options`` are forwarded to the strategy constructor (e.g.
    ``dimension=`` for ``"range"``).  Unknown names raise a
    :class:`ValidationError` listing the registered strategies.
    """
    if name not in _PARTITIONERS:
        raise ValidationError(
            f"unknown partitioner {name!r}; choose from {partitioner_names()}"
        )
    return _PARTITIONERS[name](**options)


def validate_shard_count(shards) -> int:
    """Check ``shards`` is an integer >= 1 and return it as an int."""
    if isinstance(shards, bool) or not isinstance(shards, (int, np.integer)):
        raise ValidationError(f"shards must be an integer; got {shards!r}")
    shards = int(shards)
    if shards < 1:
        raise ValidationError(f"shards must be >= 1; got {shards}")
    return shards


class Partitioner:
    """Base class: assigns every point of a database to a shard."""

    #: registry key; subclasses must override.
    name: str = ""

    def assign(self, data: np.ndarray, shards: int) -> np.ndarray:
        """Return a ``(cardinality,)`` int64 array of shard indices.

        Every entry must lie in ``[0, shards)``; empty shards are
        allowed (and handled by the sharded database).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form for ``repr`` / CLI output."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.describe()!r})"


@register_partitioner
class RoundRobinPartitioner(Partitioner):
    """Point ``i`` -> shard ``i % shards``; sizes differ by at most 1."""

    name = "round-robin"

    def assign(self, data: np.ndarray, shards: int) -> np.ndarray:
        shards = validate_shard_count(shards)
        return np.arange(data.shape[0], dtype=np.int64) % shards


@register_partitioner
class HashPartitioner(Partitioner):
    """Shard by a mixed hash of the point id (splitmix64 finaliser).

    Deterministic across processes (unlike Python's seeded ``hash``) and
    well-mixed (unlike CPython's identity hash on small ints, which
    would collapse to round-robin).
    """

    name = "hash"

    def assign(self, data: np.ndarray, shards: int) -> np.ndarray:
        shards = validate_shard_count(shards)
        x = np.arange(data.shape[0], dtype=np.uint64)
        # splitmix64 finaliser; uint64 arithmetic wraps, as intended.
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
        return (x % np.uint64(shards)).astype(np.int64)


@register_partitioner
class RangePartitioner(Partitioner):
    """Equal-count value ranges of one dimension's sorted order.

    The ``r``-th point in ascending order of ``data[:, dimension]`` goes
    to shard ``r * shards // cardinality`` — contiguous value ranges,
    perfectly count-balanced regardless of the value distribution (the
    split is on ranks).  The rank sort is stable, so ties on the value
    keep ascending id order, making the assignment deterministic.
    """

    name = "range"

    def __init__(self, dimension: int = 0) -> None:
        if isinstance(dimension, bool) or not isinstance(
            dimension, (int, np.integer)
        ):
            raise ValidationError(
                f"dimension must be an integer; got {dimension!r}"
            )
        self.dimension = int(dimension)

    def assign(self, data: np.ndarray, shards: int) -> np.ndarray:
        shards = validate_shard_count(shards)
        c, d = data.shape
        if not 0 <= self.dimension < d:
            raise ValidationError(
                f"range partitioner dimension {self.dimension} out of "
                f"range [0, {d})"
            )
        order = np.argsort(data[:, self.dimension], kind="stable")
        ranks = np.empty(c, dtype=np.int64)
        ranks[order] = np.arange(c, dtype=np.int64)
        return ranks * shards // c

    def describe(self) -> str:
        return f"{self.name}(dimension={self.dimension})"
