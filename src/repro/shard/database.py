"""The sharded database facade: partition, scatter, gather, exactly.

:class:`ShardedMatchDatabase` mirrors the
:class:`~repro.core.engine.MatchDatabase` query surface but holds one
independent ``MatchDatabase`` per shard, each over a disjoint slice of
the point set chosen by a :class:`~repro.shard.partition.Partitioner`.
Queries fan out through a
:class:`~repro.shard.coordinator.ScatterGatherCoordinator` and come back
merged into the exact global answer — ids, differences, frequencies and
answer sets bit-identical to a single unsharded database for the
canonical-tie-break engines (``naive``, ``block-ad``,
``batch-block-ad``; the heap ``ad`` engine agrees wherever its
within-tie discovery order does, i.e. always on tie-free data).

Shard membership is materialised in ascending global id order, so each
shard's local id ``j`` maps to ``global_ids(s)[j]`` and local id order
preserves global id order — the invariant the merge tie-break relies
on.  Empty shards (more shards than points, or an unlucky hash) are
tracked for :meth:`shard_sizes` but never queried; shards smaller than
``k`` simply contribute their whole point set.

Metrics (``metrics=``) are recorded by the shard layer itself — one
logical query produces shard-labelled ``repro_shard_*`` counters plus
the scatter executor's batch metrics — rather than by the per-shard
engines, so aggregate query counters keep counting *logical* queries,
not ``shards``-times-inflated ones.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core import validation
from ..core.engine import (
    AUTO_ENGINE,
    MatchDatabase,
    validate_engine_choice,
    validate_engine_name,
)
from ..core.types import FrequentMatchResult, MatchResult
from ..errors import ValidationError
from ..parallel import BatchStats
from .coordinator import ScatterGatherCoordinator
from .partition import (
    DEFAULT_PARTITIONER,
    Partitioner,
    make_partitioner,
    validate_shard_count,
)

__all__ = ["ShardedMatchDatabase"]


class ShardedMatchDatabase:
    """Scatter-gather k-n-match over a partitioned point set.

    >>> import numpy as np
    >>> from repro.shard import ShardedMatchDatabase
    >>> db = ShardedMatchDatabase(np.arange(20.0).reshape(10, 2), shards=3)
    >>> db.k_n_match([8.0, 9.0], k=2, n=2).ids
    [4, 3]
    """

    def __init__(
        self,
        data,
        shards: int = 4,
        partitioner: Union[str, Partitioner] = DEFAULT_PARTITIONER,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
        workers: Optional[int] = None,
        backend: str = "thread",
        **partitioner_options,
    ) -> None:
        array = validation.as_database_array(data)
        validate_engine_choice(default_engine)
        shards = validate_shard_count(shards)
        if isinstance(partitioner, Partitioner):
            if partitioner_options:
                raise ValidationError(
                    "partitioner options are only accepted with a "
                    "partitioner name, not a Partitioner instance"
                )
            self._partitioner = partitioner
        else:
            self._partitioner = make_partitioner(
                partitioner, **partitioner_options
            )
        assignment = self._checked_assignment(array, shards)
        self._data = array
        self._assignment = assignment
        self._shard_count = shards
        self._default_engine = default_engine
        self._metrics = metrics
        self._spans = spans
        self._planner = None
        self._plan_model = None
        self._global_ids: List[np.ndarray] = [
            np.flatnonzero(assignment == s) for s in range(shards)
        ]
        # An "auto" facade default is resolved *before* the scatter, so
        # per-shard databases always hold a concrete engine default.
        shard_default = (
            "block-ad" if default_engine == AUTO_ENGINE else default_engine
        )
        self._shard_dbs: List[Optional[MatchDatabase]] = [
            MatchDatabase(array[gids], default_engine=shard_default)
            if gids.size
            else None
            for gids in self._global_ids
        ]
        self._coordinator = ScatterGatherCoordinator(
            [
                (s, db, gids)
                for s, (db, gids) in enumerate(
                    zip(self._shard_dbs, self._global_ids)
                )
                if db is not None
            ],
            total_attributes=array.shape[0] * array.shape[1],
            workers=workers,
            metrics=metrics,
            spans=spans,
            partitioner=self._partitioner.name,
            backend=backend,
        )

    def _checked_assignment(
        self, array: np.ndarray, shards: int
    ) -> np.ndarray:
        """Run the partitioner and validate its output defensively.

        Custom partitioners are user code; a malformed assignment would
        otherwise surface as silently wrong answers, the one failure
        mode this subsystem exists to rule out.
        """
        assignment = np.asarray(self._partitioner.assign(array, shards))
        if assignment.shape != (array.shape[0],):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} returned "
                f"shape {assignment.shape}; expected ({array.shape[0]},)"
            )
        if not np.issubdtype(assignment.dtype, np.integer):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} returned "
                f"dtype {assignment.dtype}; expected integers"
            )
        assignment = assignment.astype(np.int64)
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= shards
        ):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} assigned "
                f"shards outside [0, {shards})"
            )
        return assignment

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The full ``(cardinality, dimensionality)`` array (global ids)."""
        return self._data

    @property
    def cardinality(self) -> int:
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._data.shape[1]

    @property
    def shard_count(self) -> int:
        """Number of shards, including empty ones."""
        return self._shard_count

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Points per shard (zeros mark empty shards)."""
        return tuple(int(gids.size) for gids in self._global_ids)

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    @property
    def assignment(self) -> np.ndarray:
        """The ``point id -> shard`` map (treat as read-only)."""
        return self._assignment

    @property
    def default_engine(self) -> str:
        return self._default_engine

    @property
    def workers(self) -> int:
        """Fan-out pool size (threads or processes) of the coordinator."""
        return self._coordinator.workers

    @property
    def backend(self) -> str:
        """The fan-out backend, ``"thread"`` or ``"process"``."""
        return self._coordinator.backend

    def set_backend(
        self, backend: str, workers: Optional[int] = None
    ) -> None:
        """Switch the fan-out backend (see the coordinator's docs).

        Answers stay bit-identical; only where the per-shard engine
        calls execute changes.
        """
        self._coordinator.set_backend(backend, workers=workers)

    def close(self) -> None:
        """Release backend resources (idempotent; queries still work).

        With the process backend this shuts the worker pool down and
        unlinks the shared-memory segments; the next query transparently
        restarts them.  The thread backend holds nothing releasable.
        """
        self._coordinator.close()

    def __enter__(self) -> "ShardedMatchDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry.

        Only the shard layer records (see the module docstring); the
        per-shard engines stay unmetered so logical query counts are
        not inflated by the shard count.
        """
        self._metrics = registry
        self._coordinator.metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector.

        Like metrics, only the shard layer traces: each logical query
        becomes a ``sharded/<kind>`` root with ``shard_fanout`` and
        ``merge`` phases plus per-shard ``shard_call`` spans on the
        fan-out worker threads.
        """
        self._spans = collector
        self._coordinator.spans = collector

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """The :class:`BatchStats` of the most recent ``*_batch`` call."""
        return self._coordinator.last_batch_stats

    def shard(self, index: int) -> Optional[MatchDatabase]:
        """The per-shard database (``None`` for an empty shard)."""
        self._check_shard(index)
        return self._shard_dbs[index]

    def global_ids(self, index: int) -> np.ndarray:
        """Ascending global ids of the points in one shard."""
        self._check_shard(index)
        return self._global_ids[index]

    def shard_of(self, point_id: int) -> int:
        """The shard a global point id was assigned to."""
        if not 0 <= point_id < self.cardinality:
            raise ValidationError(
                f"point id {point_id} out of range [0, {self.cardinality})"
            )
        return int(self._assignment[point_id])

    def _check_shard(self, index: int) -> None:
        if not 0 <= index < self._shard_count:
            raise ValidationError(
                f"shard {index} out of range [0, {self._shard_count})"
            )

    # ------------------------------------------------------------------
    # cost-based planning (engine="auto")
    # ------------------------------------------------------------------
    @property
    def planner(self):
        """The facade's :class:`~repro.plan.QueryPlanner`.

        Plans over the *largest* shard's database (the representative
        slice: per-shard cost is what the scatter pays per worker) and
        reports the non-empty shard count as the plan fan-out.
        """
        if self._planner is None:
            from ..plan import QueryPlanner

            populated = [db for db in self._shard_dbs if db is not None]
            base = max(populated, key=lambda db: db.cardinality)
            self._planner = QueryPlanner(
                base,
                model=self._plan_model,
                fanout=len(populated),
                spans_owner=self,
            )
        return self._planner

    def set_plan_model(self, model) -> None:
        """Install a :class:`~repro.plan.PlanModel` (e.g. a loaded sidecar)."""
        self._plan_model = model
        self._planner = None

    def plan_query(
        self,
        kind: str,
        k: int,
        n_range,
        batched: bool = False,
        mode: str = "exact",
        target_recall: Optional[float] = None,
    ):
        """The :class:`~repro.plan.QueryPlan` ``engine="auto"`` would use.

        ``k`` is clamped to the planning shard's cardinality — shards
        smaller than ``k`` contribute their whole point set, so that is
        the cost actually paid per shard.
        """
        planner = self.planner
        shard_k = min(int(k), planner.db.cardinality)
        return planner.plan(
            kind, shard_k, n_range, batched=batched, mode=mode,
            target_recall=target_recall,
        )

    def _resolve_engine(self, name, kind, k, n_range, batched=False):
        """Resolve ``engine=`` to ``(concrete name or None, plan|None)``.

        ``None`` means "per-shard default" exactly as before; ``"auto"``
        (explicit or the facade default) is planned here, before the
        scatter, so every shard runs the same concrete engine.
        """
        choice = name if name is not None else self._default_engine
        if choice == AUTO_ENGINE:
            plan = self.plan_query(kind, k, n_range, batched=batched)
            return plan.engine, plan
        if name is not None:
            validate_engine_name(name)
        return name, None

    def _observe_plan(self, plan, results, started) -> None:
        """Export one executed plan; feed per-shard cost back to the model."""
        seconds = time.perf_counter() - started
        count = max(1, len(results))
        cells = sum(r.stats.attributes_retrieved for r in results)
        if self._metrics is not None:
            from ..obs.instrument import observe_plan_decision

            observe_plan_decision(
                self._metrics,
                engine=plan.engine,
                kind=plan.kind,
                predicted_seconds=plan.predicted_seconds,
                actual_seconds=seconds / count,
                fanout=plan.fanout,
            )
        # The model prices one engine call on one shard; the measured
        # retrieval spans all shards, so charge the per-shard share.
        self.planner.record_actual(
            plan, cells / count / plan.fanout, seconds / count
        )

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        engine: Optional[str] = None,
        trace: bool = False,
        mode: Optional[str] = None,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
    ) -> MatchResult:
        """The exact global k-n-match (Definition 3), scatter-gathered.

        ``mode="approx"`` switches to the approximate tier: each shard
        runs its approx engine under a proportional share of the budget
        and the gather keeps the *weakest* shard certificate, so the
        merged ``certified_recall`` is sound for the global answer.
        Without any approx argument the call is byte-identical to
        before the tier existed.
        """
        if (
            mode is not None
            or budget is not None
            or target_recall is not None
            or candidate_multiplier is not None
        ):
            from ..approx import validate_approx_params

            mode, budget, target_recall, candidate_multiplier = (
                validate_approx_params(
                    mode, budget, target_recall, candidate_multiplier
                )
            )
            if mode == "approx":
                return self._k_n_match_approx(
                    query, k, n, engine, trace, budget, target_recall,
                    candidate_multiplier,
                )
        query, k, n = validation.validate_match_args(
            query, k, n, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(engine, "k_n_match", k, (n, n))
        started = time.perf_counter() if (trace or plan is not None) else 0.0
        result = self._coordinator.k_n_match(query, k, n, engine=engine)
        if plan is not None:
            self._observe_plan(plan, [result], started)
        if trace:
            result.trace = self._build_trace(
                engine, "k_n_match", k, (n, n), result.stats, started
            )
        return result

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
        trace: bool = False,
        mode: Optional[str] = None,
    ) -> FrequentMatchResult:
        """The exact global frequent k-n-match (Definition 4).

        ``mode="approx"`` is rejected, exactly as on the flat facade.
        """
        if mode is not None:
            from ..approx import APPROX_FREQUENT_MESSAGE, validate_mode

            if validate_mode(mode) == "approx":
                raise ValidationError(APPROX_FREQUENT_MESSAGE)
        if n_range is None:
            n_range = (1, self.dimensionality)
        query, k, n_range = validation.validate_frequent_args(
            query, k, n_range, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range
        )
        started = time.perf_counter() if (trace or plan is not None) else 0.0
        result = self._coordinator.frequent_k_n_match(
            query, k, n_range, engine=engine, keep_answer_sets=keep_answer_sets
        )
        if plan is not None:
            self._observe_plan(plan, [result], started)
        if trace:
            result.trace = self._build_trace(
                engine, "frequent_k_n_match", k, n_range, result.stats, started
            )
        return result

    def k_n_match_batch(
        self,
        queries,
        k: int,
        n: int,
        engine: Optional[str] = None,
        mode: Optional[str] = None,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
    ) -> List[MatchResult]:
        """One exact global k-n-match per row of ``queries``.

        Each shard runs the whole batch through its engine's native
        batch path; shards execute concurrently on the coordinator's
        thread pool.  ``mode="approx"`` runs each query through the
        budget-split scatter of :meth:`k_n_match` instead.
        """
        if (
            mode is not None
            or budget is not None
            or target_recall is not None
            or candidate_multiplier is not None
        ):
            from ..approx import validate_approx_params

            mode, budget, target_recall, candidate_multiplier = (
                validate_approx_params(
                    mode, budget, target_recall, candidate_multiplier
                )
            )
            if mode == "approx":
                return self._k_n_match_batch_approx(
                    queries, k, n, engine, budget, target_recall,
                    candidate_multiplier,
                )
        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "k_n_match", k, (n, n), batched=True
        )
        started = time.perf_counter() if plan is not None else 0.0
        results = self._coordinator.k_n_match_batch(
            queries, k, n, engine=engine
        )
        if plan is not None and results:
            self._observe_plan(plan, results, started)
        return results

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
        mode: Optional[str] = None,
    ) -> List[FrequentMatchResult]:
        """One exact global frequent k-n-match per row of ``queries``."""
        if mode is not None:
            from ..approx import APPROX_FREQUENT_MESSAGE, validate_mode

            if validate_mode(mode) == "approx":
                raise ValidationError(APPROX_FREQUENT_MESSAGE)
        if n_range is None:
            n_range = (1, self.dimensionality)
        queries, k, n_range = validation.validate_batch_frequent_args(
            queries, k, n_range, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range, batched=True
        )
        started = time.perf_counter() if plan is not None else 0.0
        results = self._coordinator.frequent_k_n_match_batch(
            queries, k, n_range, engine=engine,
            keep_answer_sets=keep_answer_sets,
        )
        if plan is not None and results:
            self._observe_plan(plan, results, started)
        return results

    # ------------------------------------------------------------------
    # approximate tier (mode="approx")
    # ------------------------------------------------------------------
    def _resolve_approx_engine(self, name, k, n, target_recall):
        """Resolve ``engine=`` under ``mode="approx"`` to (name, plan|None)."""
        from ..approx import DEFAULT_APPROX_ENGINE, validate_approx_engine

        choice = name if name is not None else DEFAULT_APPROX_ENGINE
        if choice != AUTO_ENGINE:
            return validate_approx_engine(choice), None
        plan = self.plan_query(
            "k_n_match", k, (n, n), mode="approx", target_recall=target_recall
        )
        return plan.engine, plan

    def _approx_shard_budgets(self, budget: Optional[int]) -> List[Optional[int]]:
        """Split a global attribute budget across shards by cardinality.

        Cumulative rounding (``budget * cum // total``) so the shares
        sum to exactly ``budget``, deterministically.  ``None`` (no
        budget) passes through so every shard resolves its own default.
        """
        if budget is None:
            return [None] * self._shard_count
        total = self.cardinality
        shares: List[Optional[int]] = []
        cum = 0
        allotted = 0
        for gids in self._global_ids:
            cum += int(gids.size)
            share = budget * cum // total - allotted
            allotted += share
            shares.append(share)
        return shares

    def _approx_scatter(
        self, query, k, n, engine_name, budget, target_recall, multiplier
    ):
        """One approximate query: scatter, gather, certify the merge.

        Each shard answers under its budget share with ``k`` clamped to
        its cardinality; the gather takes the global top-k of the union
        and certifies against the *weakest* shard bound ``L``:

        * a shard whose answer is exact (certificate 1.0) contributes
          ``+inf`` — its unreturned points cannot displace any merged
          answer that beats its own top-k (and if the merged answer
          does not beat it, the shard's k returned candidates already
          outrank it in the merge);
        * a budgeted shard contributes its frontier bound — every
          unreturned point there costs at least that much;
        * an uncertified shard (pivot-sketch without a full scan)
          contributes ``-inf``, collapsing the merged certificate to 0.

        Any merged difference ``<= L`` is then provably within the
        exact tie-aware global top-k.
        """
        from ..approx import ApproxResult

        shard_budgets = self._approx_shard_budgets(budget)
        shard_results = []
        gid_arrays = []
        for index, (db, gids) in enumerate(
            zip(self._shard_dbs, self._global_ids)
        ):
            if db is None:
                continue
            engine = db._approx_engine(engine_name)
            result = engine.k_n_match(
                query,
                min(k, db.cardinality),
                n,
                budget=shard_budgets[index],
                target_recall=target_recall,
                candidate_multiplier=multiplier,
            )
            shard_results.append(result)
            gid_arrays.append(gids)

        bounds = []
        for result in shard_results:
            if result.exact:
                bounds.append(np.inf)
            elif result.unseen_lower_bound is None:
                bounds.append(-np.inf)
            else:
                bounds.append(result.unseen_lower_bound)
        limit = min(bounds) if bounds else np.inf

        all_ids = np.concatenate(
            [
                gids[np.asarray(result.ids, dtype=np.int64)]
                for result, gids in zip(shard_results, gid_arrays)
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        all_diffs = np.concatenate(
            [
                np.asarray(result.differences, dtype=np.float64)
                for result in shard_results
            ]
            or [np.empty(0, dtype=np.float64)]
        )
        order = np.lexsort((all_ids, all_diffs))[:k]
        out_ids = all_ids[order]
        out_diffs = all_diffs[order]
        certified_count = int(np.count_nonzero(out_diffs <= limit))

        from ..core.types import SearchStats

        stats = SearchStats(
            attributes_retrieved=sum(
                r.stats.attributes_retrieved for r in shard_results
            ),
            total_attributes=self.cardinality * self.dimensionality,
            heap_pops=sum(r.stats.heap_pops for r in shard_results),
            binary_search_probes=sum(
                r.stats.binary_search_probes for r in shard_results
            ),
            candidates_refined=sum(
                r.stats.candidates_refined for r in shard_results
            ),
            approximation_entries_scanned=sum(
                r.stats.approximation_entries_scanned for r in shard_results
            ),
        )
        return ApproxResult(
            ids=[int(pid) for pid in out_ids],
            differences=[float(dif) for dif in out_diffs],
            k=k,
            n=n,
            engine=engine_name,
            certified_recall=certified_count / k,
            certified_count=certified_count,
            unseen_lower_bound=None if not np.isfinite(limit) else float(limit),
            exact=certified_count == k,
            budget=budget,
            stats=stats,
        )

    def _k_n_match_approx(
        self, query, k, n, engine, trace, budget, target_recall,
        candidate_multiplier,
    ):
        from ..approx import DEFAULT_TARGET_RECALL

        query, k, n = validation.validate_match_args(
            query, k, n, self.cardinality, self.dimensionality
        )
        if (
            budget is None
            and target_recall is None
            and candidate_multiplier is None
        ):
            target_recall = DEFAULT_TARGET_RECALL
        resolved, plan = self._resolve_approx_engine(
            engine, k, n, target_recall
        )
        started = time.perf_counter()
        spans = self._spans
        if spans is None:
            result = self._approx_scatter(
                query, k, n, resolved, budget, target_recall,
                candidate_multiplier,
            )
        else:
            with spans.span(
                "sharded/k_n_match",
                k=k,
                n=n,
                mode="approx",
                engine=resolved,
            ):
                result = self._approx_scatter(
                    query, k, n, resolved, budget, target_recall,
                    candidate_multiplier,
                )
                spans.annotate(
                    certified_recall=round(result.certified_recall, 4)
                )
        seconds = time.perf_counter() - started
        if self._metrics is not None:
            from ..obs import observe_approx_query

            observe_approx_query(
                self._metrics,
                resolved,
                "k_n_match",
                result.stats,
                seconds,
                self.dimensionality,
                result.certified_recall,
            )
        if plan is not None:
            self._observe_plan(plan, [result], started)
            self.planner.record_recall(plan.engine, result.certified_recall)
        if trace:
            result.trace = self._build_trace(
                resolved, "k_n_match", k, (n, n), result.stats, started
            )
        return result

    def _k_n_match_batch_approx(
        self, queries, k, n, engine, budget, target_recall,
        candidate_multiplier,
    ):
        from ..approx import DEFAULT_TARGET_RECALL

        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        if (
            budget is None
            and target_recall is None
            and candidate_multiplier is None
        ):
            target_recall = DEFAULT_TARGET_RECALL
        resolved, plan = self._resolve_approx_engine(
            engine, k, n, target_recall
        )
        started = time.perf_counter()
        results = [
            self._approx_scatter(
                query, k, n, resolved, budget, target_recall,
                candidate_multiplier,
            )
            for query in queries
        ]
        if self._metrics is not None:
            from ..obs import observe_approx_query

            seconds = time.perf_counter() - started
            for result in results:
                observe_approx_query(
                    self._metrics,
                    resolved,
                    "k_n_match",
                    result.stats,
                    seconds / len(results),
                    self.dimensionality,
                    result.certified_recall,
                )
        if plan is not None and results:
            self._observe_plan(plan, results, started)
            mean_recall = sum(
                result.certified_recall for result in results
            ) / len(results)
            self.planner.record_recall(plan.engine, mean_recall)
        return results

    # ------------------------------------------------------------------
    def _build_trace(self, engine, kind, k, n_range, stats, started):
        from ..obs import QueryTrace

        label = (
            f"sharded[{self._shard_count}x{engine or self._default_engine}"
            f"/{self._partitioner.name}]"
        )
        spans = self._spans
        return QueryTrace.from_stats(
            engine=label,
            kind=kind,
            k=k,
            n_range=n_range,
            stats=stats,
            wall_time_seconds=time.perf_counter() - started,
            dimensionality=self.dimensionality,
            trace_id=(
                spans.capture_context("trace_id")
                if spans is not None
                else None
            ),
        )

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedMatchDatabase(cardinality={self.cardinality}, "
            f"dimensionality={self.dimensionality}, "
            f"shards={self._shard_count}, "
            f"partitioner={self._partitioner.describe()!r}, "
            f"default_engine={self._default_engine!r})"
        )
