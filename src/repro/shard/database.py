"""The sharded database facade: partition, scatter, gather, exactly.

:class:`ShardedMatchDatabase` mirrors the
:class:`~repro.core.engine.MatchDatabase` query surface but holds one
independent ``MatchDatabase`` per shard, each over a disjoint slice of
the point set chosen by a :class:`~repro.shard.partition.Partitioner`.
Queries fan out through a
:class:`~repro.shard.coordinator.ScatterGatherCoordinator` and come back
merged into the exact global answer — ids, differences, frequencies and
answer sets bit-identical to a single unsharded database for the
canonical-tie-break engines (``naive``, ``block-ad``,
``batch-block-ad``; the heap ``ad`` engine agrees wherever its
within-tie discovery order does, i.e. always on tie-free data).

Shard membership is materialised in ascending global id order, so each
shard's local id ``j`` maps to ``global_ids(s)[j]`` and local id order
preserves global id order — the invariant the merge tie-break relies
on.  Empty shards (more shards than points, or an unlucky hash) are
tracked for :meth:`shard_sizes` but never queried; shards smaller than
``k`` simply contribute their whole point set.

Metrics (``metrics=``) are recorded by the shard layer itself — one
logical query produces shard-labelled ``repro_shard_*`` counters plus
the scatter executor's batch metrics — rather than by the per-shard
engines, so aggregate query counters keep counting *logical* queries,
not ``shards``-times-inflated ones.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core import validation
from ..core.engine import (
    AUTO_ENGINE,
    MatchDatabase,
    validate_engine_choice,
    validate_engine_name,
)
from ..core.types import FrequentMatchResult, MatchResult
from ..errors import ValidationError
from ..parallel import BatchStats
from .coordinator import ScatterGatherCoordinator
from .partition import (
    DEFAULT_PARTITIONER,
    Partitioner,
    make_partitioner,
    validate_shard_count,
)

__all__ = ["ShardedMatchDatabase"]


class ShardedMatchDatabase:
    """Scatter-gather k-n-match over a partitioned point set.

    >>> import numpy as np
    >>> from repro.shard import ShardedMatchDatabase
    >>> db = ShardedMatchDatabase(np.arange(20.0).reshape(10, 2), shards=3)
    >>> db.k_n_match([8.0, 9.0], k=2, n=2).ids
    [4, 3]
    """

    def __init__(
        self,
        data,
        shards: int = 4,
        partitioner: Union[str, Partitioner] = DEFAULT_PARTITIONER,
        default_engine: str = "ad",
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
        workers: Optional[int] = None,
        backend: str = "thread",
        **partitioner_options,
    ) -> None:
        array = validation.as_database_array(data)
        validate_engine_choice(default_engine)
        shards = validate_shard_count(shards)
        if isinstance(partitioner, Partitioner):
            if partitioner_options:
                raise ValidationError(
                    "partitioner options are only accepted with a "
                    "partitioner name, not a Partitioner instance"
                )
            self._partitioner = partitioner
        else:
            self._partitioner = make_partitioner(
                partitioner, **partitioner_options
            )
        assignment = self._checked_assignment(array, shards)
        self._data = array
        self._assignment = assignment
        self._shard_count = shards
        self._default_engine = default_engine
        self._metrics = metrics
        self._spans = spans
        self._planner = None
        self._plan_model = None
        self._global_ids: List[np.ndarray] = [
            np.flatnonzero(assignment == s) for s in range(shards)
        ]
        # An "auto" facade default is resolved *before* the scatter, so
        # per-shard databases always hold a concrete engine default.
        shard_default = (
            "block-ad" if default_engine == AUTO_ENGINE else default_engine
        )
        self._shard_dbs: List[Optional[MatchDatabase]] = [
            MatchDatabase(array[gids], default_engine=shard_default)
            if gids.size
            else None
            for gids in self._global_ids
        ]
        self._coordinator = ScatterGatherCoordinator(
            [
                (s, db, gids)
                for s, (db, gids) in enumerate(
                    zip(self._shard_dbs, self._global_ids)
                )
                if db is not None
            ],
            total_attributes=array.shape[0] * array.shape[1],
            workers=workers,
            metrics=metrics,
            spans=spans,
            partitioner=self._partitioner.name,
            backend=backend,
        )

    def _checked_assignment(
        self, array: np.ndarray, shards: int
    ) -> np.ndarray:
        """Run the partitioner and validate its output defensively.

        Custom partitioners are user code; a malformed assignment would
        otherwise surface as silently wrong answers, the one failure
        mode this subsystem exists to rule out.
        """
        assignment = np.asarray(self._partitioner.assign(array, shards))
        if assignment.shape != (array.shape[0],):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} returned "
                f"shape {assignment.shape}; expected ({array.shape[0]},)"
            )
        if not np.issubdtype(assignment.dtype, np.integer):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} returned "
                f"dtype {assignment.dtype}; expected integers"
            )
        assignment = assignment.astype(np.int64)
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= shards
        ):
            raise ValidationError(
                f"partitioner {self._partitioner.describe()!r} assigned "
                f"shards outside [0, {shards})"
            )
        return assignment

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The full ``(cardinality, dimensionality)`` array (global ids)."""
        return self._data

    @property
    def cardinality(self) -> int:
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._data.shape[1]

    @property
    def shard_count(self) -> int:
        """Number of shards, including empty ones."""
        return self._shard_count

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Points per shard (zeros mark empty shards)."""
        return tuple(int(gids.size) for gids in self._global_ids)

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    @property
    def assignment(self) -> np.ndarray:
        """The ``point id -> shard`` map (treat as read-only)."""
        return self._assignment

    @property
    def default_engine(self) -> str:
        return self._default_engine

    @property
    def workers(self) -> int:
        """Fan-out pool size (threads or processes) of the coordinator."""
        return self._coordinator.workers

    @property
    def backend(self) -> str:
        """The fan-out backend, ``"thread"`` or ``"process"``."""
        return self._coordinator.backend

    def set_backend(
        self, backend: str, workers: Optional[int] = None
    ) -> None:
        """Switch the fan-out backend (see the coordinator's docs).

        Answers stay bit-identical; only where the per-shard engine
        calls execute changes.
        """
        self._coordinator.set_backend(backend, workers=workers)

    def close(self) -> None:
        """Release backend resources (idempotent; queries still work).

        With the process backend this shuts the worker pool down and
        unlinks the shared-memory segments; the next query transparently
        restarts them.  The thread backend holds nothing releasable.
        """
        self._coordinator.close()

    def __enter__(self) -> "ShardedMatchDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    def set_metrics(self, registry) -> None:
        """Install (or remove, with ``None``) a metrics registry.

        Only the shard layer records (see the module docstring); the
        per-shard engines stay unmetered so logical query counts are
        not inflated by the shard count.
        """
        self._metrics = registry
        self._coordinator.metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    def set_spans(self, collector) -> None:
        """Install (or remove, with ``None``) a span collector.

        Like metrics, only the shard layer traces: each logical query
        becomes a ``sharded/<kind>`` root with ``shard_fanout`` and
        ``merge`` phases plus per-shard ``shard_call`` spans on the
        fan-out worker threads.
        """
        self._spans = collector
        self._coordinator.spans = collector

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """The :class:`BatchStats` of the most recent ``*_batch`` call."""
        return self._coordinator.last_batch_stats

    def shard(self, index: int) -> Optional[MatchDatabase]:
        """The per-shard database (``None`` for an empty shard)."""
        self._check_shard(index)
        return self._shard_dbs[index]

    def global_ids(self, index: int) -> np.ndarray:
        """Ascending global ids of the points in one shard."""
        self._check_shard(index)
        return self._global_ids[index]

    def shard_of(self, point_id: int) -> int:
        """The shard a global point id was assigned to."""
        if not 0 <= point_id < self.cardinality:
            raise ValidationError(
                f"point id {point_id} out of range [0, {self.cardinality})"
            )
        return int(self._assignment[point_id])

    def _check_shard(self, index: int) -> None:
        if not 0 <= index < self._shard_count:
            raise ValidationError(
                f"shard {index} out of range [0, {self._shard_count})"
            )

    # ------------------------------------------------------------------
    # cost-based planning (engine="auto")
    # ------------------------------------------------------------------
    @property
    def planner(self):
        """The facade's :class:`~repro.plan.QueryPlanner`.

        Plans over the *largest* shard's database (the representative
        slice: per-shard cost is what the scatter pays per worker) and
        reports the non-empty shard count as the plan fan-out.
        """
        if self._planner is None:
            from ..plan import QueryPlanner

            populated = [db for db in self._shard_dbs if db is not None]
            base = max(populated, key=lambda db: db.cardinality)
            self._planner = QueryPlanner(
                base,
                model=self._plan_model,
                fanout=len(populated),
                spans_owner=self,
            )
        return self._planner

    def set_plan_model(self, model) -> None:
        """Install a :class:`~repro.plan.PlanModel` (e.g. a loaded sidecar)."""
        self._plan_model = model
        self._planner = None

    def plan_query(self, kind: str, k: int, n_range, batched: bool = False):
        """The :class:`~repro.plan.QueryPlan` ``engine="auto"`` would use.

        ``k`` is clamped to the planning shard's cardinality — shards
        smaller than ``k`` contribute their whole point set, so that is
        the cost actually paid per shard.
        """
        planner = self.planner
        shard_k = min(int(k), planner.db.cardinality)
        return planner.plan(kind, shard_k, n_range, batched=batched)

    def _resolve_engine(self, name, kind, k, n_range, batched=False):
        """Resolve ``engine=`` to ``(concrete name or None, plan|None)``.

        ``None`` means "per-shard default" exactly as before; ``"auto"``
        (explicit or the facade default) is planned here, before the
        scatter, so every shard runs the same concrete engine.
        """
        choice = name if name is not None else self._default_engine
        if choice == AUTO_ENGINE:
            plan = self.plan_query(kind, k, n_range, batched=batched)
            return plan.engine, plan
        if name is not None:
            validate_engine_name(name)
        return name, None

    def _observe_plan(self, plan, results, started) -> None:
        """Export one executed plan; feed per-shard cost back to the model."""
        seconds = time.perf_counter() - started
        count = max(1, len(results))
        cells = sum(r.stats.attributes_retrieved for r in results)
        if self._metrics is not None:
            from ..obs.instrument import observe_plan_decision

            observe_plan_decision(
                self._metrics,
                engine=plan.engine,
                kind=plan.kind,
                predicted_seconds=plan.predicted_seconds,
                actual_seconds=seconds / count,
                fanout=plan.fanout,
            )
        # The model prices one engine call on one shard; the measured
        # retrieval spans all shards, so charge the per-shard share.
        self.planner.record_actual(
            plan, cells / count / plan.fanout, seconds / count
        )

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        engine: Optional[str] = None,
        trace: bool = False,
    ) -> MatchResult:
        """The exact global k-n-match (Definition 3), scatter-gathered."""
        query, k, n = validation.validate_match_args(
            query, k, n, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(engine, "k_n_match", k, (n, n))
        started = time.perf_counter() if (trace or plan is not None) else 0.0
        result = self._coordinator.k_n_match(query, k, n, engine=engine)
        if plan is not None:
            self._observe_plan(plan, [result], started)
        if trace:
            result.trace = self._build_trace(
                engine, "k_n_match", k, (n, n), result.stats, started
            )
        return result

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = True,
        trace: bool = False,
    ) -> FrequentMatchResult:
        """The exact global frequent k-n-match (Definition 4)."""
        if n_range is None:
            n_range = (1, self.dimensionality)
        query, k, n_range = validation.validate_frequent_args(
            query, k, n_range, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range
        )
        started = time.perf_counter() if (trace or plan is not None) else 0.0
        result = self._coordinator.frequent_k_n_match(
            query, k, n_range, engine=engine, keep_answer_sets=keep_answer_sets
        )
        if plan is not None:
            self._observe_plan(plan, [result], started)
        if trace:
            result.trace = self._build_trace(
                engine, "frequent_k_n_match", k, n_range, result.stats, started
            )
        return result

    def k_n_match_batch(
        self,
        queries,
        k: int,
        n: int,
        engine: Optional[str] = None,
    ) -> List[MatchResult]:
        """One exact global k-n-match per row of ``queries``.

        Each shard runs the whole batch through its engine's native
        batch path; shards execute concurrently on the coordinator's
        thread pool.
        """
        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "k_n_match", k, (n, n), batched=True
        )
        started = time.perf_counter() if plan is not None else 0.0
        results = self._coordinator.k_n_match_batch(
            queries, k, n, engine=engine
        )
        if plan is not None and results:
            self._observe_plan(plan, results, started)
        return results

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Union[Tuple[int, int], None] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
    ) -> List[FrequentMatchResult]:
        """One exact global frequent k-n-match per row of ``queries``."""
        if n_range is None:
            n_range = (1, self.dimensionality)
        queries, k, n_range = validation.validate_batch_frequent_args(
            queries, k, n_range, self.cardinality, self.dimensionality
        )
        engine, plan = self._resolve_engine(
            engine, "frequent_k_n_match", k, n_range, batched=True
        )
        started = time.perf_counter() if plan is not None else 0.0
        results = self._coordinator.frequent_k_n_match_batch(
            queries, k, n_range, engine=engine,
            keep_answer_sets=keep_answer_sets,
        )
        if plan is not None and results:
            self._observe_plan(plan, results, started)
        return results

    # ------------------------------------------------------------------
    def _build_trace(self, engine, kind, k, n_range, stats, started):
        from ..obs import QueryTrace

        label = (
            f"sharded[{self._shard_count}x{engine or self._default_engine}"
            f"/{self._partitioner.name}]"
        )
        return QueryTrace.from_stats(
            engine=label,
            kind=kind,
            k=k,
            n_range=n_range,
            stats=stats,
            wall_time_seconds=time.perf_counter() - started,
            dimensionality=self.dimensionality,
        )

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedMatchDatabase(cardinality={self.cardinality}, "
            f"dimensionality={self.dimensionality}, "
            f"shards={self._shard_count}, "
            f"partitioner={self._partitioner.describe()!r}, "
            f"default_engine={self._default_engine!r})"
        )
