"""Stand-in for the Co-occurrence Texture dataset (UCI KDD archive).

The paper's real dataset: 68,040 points, 16 dimensions, values
normalised to [0,1], and *highly skewed* — the property behind Fig. 15's
"when n1 = 16, there is only 25% of the attributes retrieved due to the
high skew of the real data".

Co-occurrence texture features are products of gray-level co-occurrence
statistics; their marginals are heavy-tailed and mutually correlated.
The stand-in reproduces both properties: heavy-tailed marginals (gamma
with small shape, per-dimension skew varying) over a handful of shared
latent factors (correlation), then min-max normalised.  Queries drawn
from the data land in the dense bulk, which is what makes the AD
algorithm's windows small even at ``n1 = d``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .normalize import float32_exact, normalize_unit

__all__ = ["TEXTURE_CARDINALITY", "TEXTURE_DIMENSIONALITY", "make_texture_like"]

TEXTURE_CARDINALITY = 68040
TEXTURE_DIMENSIONALITY = 16


def make_texture_like(
    cardinality: int = TEXTURE_CARDINALITY,
    dimensionality: int = TEXTURE_DIMENSIONALITY,
    seed: int = 68040,
    latent_factors: int = 4,
    noise_weight: float = 0.25,
) -> np.ndarray:
    """Generate the skewed, correlated texture stand-in.

    ``cardinality``/``dimensionality`` default to the real dataset's
    shape; tests use smaller values for speed.  ``noise_weight`` balances
    the shared latent factors against per-dimension idiosyncratic skew;
    the 0.25 default is calibrated so that the AD algorithm retrieves
    ~25% of the attributes at ``n1 = d`` on the full-size dataset —
    Fig. 15(b)'s headline number for the real Texture data.
    """
    if cardinality < 1 or dimensionality < 1:
        raise ValidationError("cardinality and dimensionality must be >= 1")
    if latent_factors < 1:
        raise ValidationError(f"latent_factors must be >= 1; got {latent_factors}")
    if noise_weight < 0:
        raise ValidationError(f"noise_weight must be >= 0; got {noise_weight}")
    rng = np.random.default_rng(seed)

    # Shared heavy-tailed latent factors induce the cross-dimension
    # correlation of co-occurrence statistics.
    factors = rng.gamma(0.8, 1.0, size=(cardinality, latent_factors))
    loadings = rng.uniform(0.2, 1.0, size=(latent_factors, dimensionality))
    base = factors @ loadings

    # Per-dimension idiosyncratic skew: gamma shapes between 0.4 (very
    # skewed) and 1.5 (mildly skewed).
    shapes = rng.uniform(0.4, 1.5, size=dimensionality)
    noise = np.empty((cardinality, dimensionality))
    for j in range(dimensionality):
        noise[:, j] = rng.gamma(shapes[j], 1.0, size=cardinality)

    raw = base + noise_weight * noise
    return float32_exact(normalize_unit(raw))
