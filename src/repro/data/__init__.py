"""Dataset generators: synthetic workloads and paper-dataset stand-ins."""

from .coil import (
    ASPECTS,
    PARTIAL_MATCH_IMAGE,
    QUERY_IMAGE,
    SCALED_VARIANT_IMAGE,
    CoilLikeDataset,
    make_coil_like,
)
from .normalize import float32_exact, normalize_unit
from .synthetic import (
    anticorrelated_dataset,
    correlated_dataset,
    gaussian_clusters,
    perturbed_queries,
    sample_queries,
    skewed_dataset,
    uniform_dataset,
)
from .texture import (
    TEXTURE_CARDINALITY,
    TEXTURE_DIMENSIONALITY,
    make_texture_like,
)
from .uci import (
    DATASET_PROFILES,
    UCI_SPECS,
    ClassDataset,
    make_all_standins,
    make_uci_standin,
)

__all__ = [
    "normalize_unit",
    "float32_exact",
    "uniform_dataset",
    "gaussian_clusters",
    "skewed_dataset",
    "correlated_dataset",
    "anticorrelated_dataset",
    "sample_queries",
    "perturbed_queries",
    "ClassDataset",
    "UCI_SPECS",
    "DATASET_PROFILES",
    "make_uci_standin",
    "make_all_standins",
    "CoilLikeDataset",
    "make_coil_like",
    "QUERY_IMAGE",
    "PARTIAL_MATCH_IMAGE",
    "SCALED_VARIANT_IMAGE",
    "ASPECTS",
    "make_texture_like",
    "TEXTURE_CARDINALITY",
    "TEXTURE_DIMENSIONALITY",
]
