"""Normalisation helpers shared by all dataset generators.

The paper: "The data values are all normalized to the range [0,1]."
Additionally, every generator rounds its output through float32: the disk
substrate stores 4-byte attributes (as the 2006 systems did), and the
round-trip guarantees the in-memory engines (float64) and the disk
engines (float32 pages) see bit-identical values, so cross-engine
equality tests are exact rather than tolerance-based.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["normalize_unit", "float32_exact"]


def normalize_unit(data) -> np.ndarray:
    """Min-max normalise each dimension into [0, 1].

    Constant dimensions map to 0.5 (no information, but no NaNs either).
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValidationError("normalize_unit expects a 2-D array")
    lo = array.min(axis=0)
    hi = array.max(axis=0)
    span = hi - lo
    out = np.empty_like(array)
    constant = span == 0
    varying = ~constant
    out[:, varying] = (array[:, varying] - lo[varying]) / span[varying]
    out[:, constant] = 0.5
    return out


def float32_exact(data) -> np.ndarray:
    """Round values through float32 and return float64 again.

    Guarantees every value is exactly representable in the 4-byte
    attribute format used by the page-level storage.
    """
    return np.asarray(data, dtype=np.float32).astype(np.float64)
