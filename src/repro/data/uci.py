"""Class-labelled stand-ins for the five UCI datasets of Table 4.

The paper evaluates effectiveness with the *class stripping* technique on
five UCI machine-learning datasets.  Those files are not available in
this offline environment, so we generate stand-ins with the same
cardinality, dimensionality and class count (the paper's own figures —
note it cites "image segmentation: 300 points", the size of the UCI
*training* split), and with the structural property the paper's argument
rests on: objects of a class agree on *most* dimensions, but individual
readings are occasionally corrupted ("bad pixels, wrong readings or
noise in a signal"), and some dimensions carry no class signal at all.

Under that structure a distance that aggregates every dimension (kNN)
is dragged around by the corrupted readings; a technique that counts
near-matching dimensions (frequent k-n-match) is not.  IGrid, which
restricts aggregation to same-grid-cell dimensions, sits in between.
The absolute accuracies of Table 4 are not reproducible without the real
data; this generator is built to reproduce the *ordering* honestly, not
to inflate the gap — corruption and noise rates are modest and identical
across techniques.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from .normalize import float32_exact

__all__ = ["ClassDataset", "UCI_SPECS", "make_uci_standin", "make_all_standins"]


@dataclass
class ClassDataset:
    """A labelled dataset for class-stripping evaluation."""

    name: str
    data: np.ndarray  # (c, d) in [0, 1]
    labels: np.ndarray  # (c,) int class tags
    classes: int

    @property
    def cardinality(self) -> int:
        return self.data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self.data.shape[1]


#: name -> (cardinality, dimensionality, classes), as reported in Sec. 5.1.2.
UCI_SPECS: Dict[str, Tuple[int, int, int]] = {
    "ionosphere": (351, 34, 2),
    "segmentation": (300, 19, 7),
    "wdbc": (569, 30, 2),
    "glass": (214, 9, 7),
    "iris": (150, 4, 3),
}

#: Default generator profile per dataset: (noise sigma, corruption rate,
#: irrelevant-dimension fraction).  Sensor/image data (radar returns,
#: segment statistics, cell measurements, refractive indices) get a high
#: bad-reading rate and some uninformative dimensions; iris — famously
#: clean, hand-measured, 4-dimensional — gets tight clusters and a modest
#: corruption rate.  At d=4, heavy corruption makes every technique's
#: answer a coin flip, which reproduces nothing.
DATASET_PROFILES: Dict[str, Tuple[float, float, float]] = {
    "ionosphere": (0.06, 0.20, 0.10),
    "segmentation": (0.06, 0.20, 0.10),
    "wdbc": (0.06, 0.20, 0.10),
    "glass": (0.06, 0.20, 0.10),
    "iris": (0.04, 0.15, 0.0),
}


def make_uci_standin(
    name: str,
    seed: int = 2006,
    noise_scale: Optional[float] = None,
    corruption_rate: Optional[float] = None,
    irrelevant_fraction: Optional[float] = None,
) -> ClassDataset:
    """Generate the stand-in for one UCI dataset.

    Parameters
    ----------
    name:
        One of :data:`UCI_SPECS`.
    seed:
        Base RNG seed; each dataset name hashes to its own stream.
    noise_scale:
        Gaussian sigma of honest per-dimension measurement noise.
        Defaults to the dataset's :data:`DATASET_PROFILES` entry.
    corruption_rate:
        Probability that any single reading is replaced by a uniform
        value (the paper's "bad pixels / wrong readings").  Profile
        default as above.
    irrelevant_fraction:
        Fraction of dimensions that carry no class signal (uniform for
        every class).  Profile default as above.
    """
    if name not in UCI_SPECS:
        raise ValidationError(
            f"unknown dataset {name!r}; choose from {sorted(UCI_SPECS)}"
        )
    profile = DATASET_PROFILES[name]
    if noise_scale is None:
        noise_scale = profile[0]
    if corruption_rate is None:
        corruption_rate = profile[1]
    if irrelevant_fraction is None:
        irrelevant_fraction = profile[2]
    if not 0 <= corruption_rate < 1:
        raise ValidationError(
            f"corruption_rate must be in [0, 1); got {corruption_rate}"
        )
    if not 0 <= irrelevant_fraction < 1:
        raise ValidationError(
            f"irrelevant_fraction must be in [0, 1); got {irrelevant_fraction}"
        )
    c, d, classes = UCI_SPECS[name]
    # zlib.crc32 is stable across processes (unlike hash(), which is
    # salted per interpreter run) so datasets are reproducible.
    rng = np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])

    prototypes = rng.uniform(0.15, 0.85, size=(classes, d))
    irrelevant = rng.random(d) < irrelevant_fraction
    labels = rng.integers(0, classes, size=c)

    data = prototypes[labels] + rng.normal(0.0, noise_scale, (c, d))
    data[:, irrelevant] = rng.random((c, int(irrelevant.sum())))
    corrupted = rng.random((c, d)) < corruption_rate
    data[corrupted] = rng.random(int(corrupted.sum()))
    data = float32_exact(np.clip(data, 0.0, 1.0))
    return ClassDataset(name=name, data=data, labels=labels, classes=classes)


def make_all_standins(seed: int = 2006) -> Dict[str, ClassDataset]:
    """All five stand-ins, keyed by name."""
    return {name: make_uci_standin(name, seed=seed) for name in UCI_SPECS}
