"""COIL-100-like image-feature dataset for Tables 2 and 3.

The paper extracts 54 features (colour histograms, moments of area, ...)
from the 100 COIL-100 images and shows, with query image 42:

* Euclidean kNN returns images "not that similar ... in any aspects"
  because one very dissimilar aspect dominates the aggregated distance;
* the k-n-match query surfaces **image 78** — "a boat which is obviously
  more similar to image 42", identical in shape/texture but differently
  coloured — across many values of ``n``, while kNN misses it "even when
  finding 20 nearest neighbors";
* **image 3** — "a yellow color and bigger version of image 42" — shows
  up in k-n-match for some ``n`` only, motivating the frequent variant.

The real images are unavailable offline; only the geometry of the
feature vectors matters to the algorithms, so this generator builds 100
objects over three feature *aspects* (colour: 18 dims, texture: 18,
shape: 18) with exactly those planted relationships:

* object 78 copies object 42's texture and shape aspects (tiny jitter)
  but gets a far-away colour aspect;
* object 3 is object 42 shifted moderately in *every* dimension (same
  object, different colour and scale — close but nowhere identical);
* a handful of "kNN favourite" objects sit at a moderate distance from
  object 42 in every dimension, with no aspect matching well;
* the rest are unrelated random objects.

``QUERY_IMAGE = 42`` and the planted ids mirror the paper's narrative so
the Table 2/3 reproduction reads like the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .normalize import float32_exact

__all__ = [
    "CoilLikeDataset",
    "make_coil_like",
    "QUERY_IMAGE",
    "PARTIAL_MATCH_IMAGE",
    "SCALED_VARIANT_IMAGE",
    "ASPECTS",
]

#: the paper's query object
QUERY_IMAGE = 42
#: the paper's "boat with a different colour" (partial match kNN misses)
PARTIAL_MATCH_IMAGE = 78
#: the paper's "yellow, bigger version" (close everywhere, exact nowhere)
SCALED_VARIANT_IMAGE = 3
#: feature blocks: aspect name -> (first dim, last dim exclusive)
ASPECTS: Dict[str, Tuple[int, int]] = {
    "color": (0, 18),
    "texture": (18, 36),
    "shape": (36, 54),
}


@dataclass
class CoilLikeDataset:
    """100 objects x 54 features, with the planted relationships."""

    data: np.ndarray
    knn_favourites: Tuple[int, ...]

    @property
    def cardinality(self) -> int:
        return self.data.shape[0]

    @property
    def dimensionality(self) -> int:
        return self.data.shape[1]

    def query(self) -> np.ndarray:
        """The feature vector of the query image (object 42)."""
        return self.data[QUERY_IMAGE].copy()


def make_coil_like(seed: int = 100, jitter: float = 0.004) -> CoilLikeDataset:
    """Build the synthetic COIL-100 stand-in (see module docstring).

    Real image-feature vectors are concentrated — colour histograms and
    moments of 100 household objects cluster around common values rather
    than filling [0, 1]^54 uniformly.  That concentration is what lets a
    single wildly-divergent aspect dominate a Euclidean distance, so the
    generator draws the population around a global mean with sigma 0.09
    and plants the special objects against that background.
    """
    rng = np.random.default_rng(seed)
    count, dims = 100, 54

    mean = rng.uniform(0.35, 0.65, dims)
    data = np.clip(mean + rng.normal(0.0, 0.09, (count, dims)), 0.0, 1.0)

    query = data[QUERY_IMAGE].copy()

    # Object 78: texture and shape aspects nearly identical to 42,
    # colour aspect pushed to the far side of the domain -> the 18 colour
    # differences (~0.4 each) dominate the Euclidean distance, while 36
    # of 54 dimensions match almost exactly.
    for aspect in ("texture", "shape"):
        lo, hi = ASPECTS[aspect]
        data[PARTIAL_MATCH_IMAGE, lo:hi] = query[lo:hi] + rng.uniform(
            -jitter, jitter, hi - lo
        )
    lo, hi = ASPECTS["color"]
    away = np.where(query[lo:hi] >= 0.5, 0.0, 1.0)
    data[PARTIAL_MATCH_IMAGE, lo:hi] = query[lo:hi] + 0.85 * (
        away - query[lo:hi]
    ) + rng.uniform(-0.02, 0.02, hi - lo)

    # Object 3: same object, different colour and scale.  The colour
    # aspect is moderately shifted and everything else slightly shifted:
    # close in many dimensions, identical in none, Euclidean-middling.
    offsets = rng.uniform(0.03, 0.07, dims) * rng.choice([-1.0, 1.0], dims)
    lo, hi = ASPECTS["color"]
    offsets[lo:hi] = rng.uniform(0.18, 0.28, hi - lo) * rng.choice(
        [-1.0, 1.0], hi - lo
    )
    data[SCALED_VARIANT_IMAGE] = np.clip(query + offsets, 0.0, 1.0)

    # kNN favourites: moderate distance in *every* dimension.  Their
    # Euclidean distance to 42 is small (no single bad aspect), but no
    # aspect matches closely -- the paper's images 13, 64, 85, 88.
    favourites = (13, 64, 85, 88, 96, 35)
    for pid in favourites:
        data[pid] = np.clip(
            query + rng.uniform(0.05, 0.10, dims) * rng.choice([-1.0, 1.0], dims),
            0.0,
            1.0,
        )

    data[QUERY_IMAGE] = query
    return CoilLikeDataset(data=float32_exact(data), knn_favourites=favourites)
