"""Synthetic workload generators.

The efficiency study (Sec. 5.2.2-5.2.3) uses "uniformly distributed data
sets of various dimensionalities", 100,000 points each, values in [0,1].
Alongside the uniform generator this module provides clustered and skewed
generators for the effectiveness experiments and ablations, plus query
samplers.  All generators are deterministic in their ``seed`` and emit
float32-exact values (see :mod:`repro.data.normalize`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError
from .normalize import float32_exact, normalize_unit

__all__ = [
    "uniform_dataset",
    "gaussian_clusters",
    "skewed_dataset",
    "correlated_dataset",
    "anticorrelated_dataset",
    "sample_queries",
    "perturbed_queries",
]


def _check_shape(cardinality: int, dimensionality: int) -> None:
    if cardinality < 1:
        raise ValidationError(f"cardinality must be >= 1; got {cardinality}")
    if dimensionality < 1:
        raise ValidationError(
            f"dimensionality must be >= 1; got {dimensionality}"
        )


def uniform_dataset(
    cardinality: int, dimensionality: int, seed: int = 0
) -> np.ndarray:
    """Uniform [0, 1] points — the paper's synthetic workload."""
    _check_shape(cardinality, dimensionality)
    rng = np.random.default_rng(seed)
    return float32_exact(rng.random((cardinality, dimensionality)))


def gaussian_clusters(
    cardinality: int,
    dimensionality: int,
    clusters: int = 10,
    spread: float = 0.05,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Clustered data: points around ``clusters`` uniform centroids.

    Returns ``(data, labels)``.  Useful for effectiveness experiments —
    Beyer et al.'s caveat (the paper's [8]) that clustered data keeps
    nearest neighbours meaningful applies here.
    """
    _check_shape(cardinality, dimensionality)
    if clusters < 1:
        raise ValidationError(f"clusters must be >= 1; got {clusters}")
    if spread < 0:
        raise ValidationError(f"spread must be >= 0; got {spread}")
    rng = np.random.default_rng(seed)
    centroids = rng.uniform(0.1, 0.9, size=(clusters, dimensionality))
    labels = rng.integers(0, clusters, size=cardinality)
    data = centroids[labels] + rng.normal(0.0, spread, (cardinality, dimensionality))
    return float32_exact(np.clip(data, 0.0, 1.0)), labels


def skewed_dataset(
    cardinality: int,
    dimensionality: int,
    seed: int = 0,
    shape: float = 1.0,
) -> np.ndarray:
    """Heavily skewed data (exponential marginals, min-max normalised).

    Stands in for the Co-occurrence Texture set's skew; see
    :mod:`repro.data.texture` for the full-size stand-in.  Smaller
    ``shape`` means heavier skew.
    """
    _check_shape(cardinality, dimensionality)
    if shape <= 0:
        raise ValidationError(f"shape must be positive; got {shape}")
    rng = np.random.default_rng(seed)
    raw = rng.gamma(shape, 1.0, size=(cardinality, dimensionality))
    return float32_exact(normalize_unit(raw))


def correlated_dataset(
    cardinality: int,
    dimensionality: int,
    correlation: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Uniform marginals with a tunable common-factor correlation.

    A Gaussian copula: each point is a shared factor blended with
    per-dimension noise, then mapped back to uniform [0, 1] marginals
    through the normal CDF.  ``correlation = 0`` reproduces independent
    uniforms; ``correlation -> 1`` makes all dimensions move together.
    Useful for ablations: dimension correlation is exactly what lets the
    AD algorithm finish early (points close in one dimension tend to be
    close in the others, so appearance counts concentrate).
    """
    _check_shape(cardinality, dimensionality)
    if not 0.0 <= correlation < 1.0:
        raise ValidationError(
            f"correlation must be within [0, 1); got {correlation}"
        )
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal((cardinality, 1))
    noise = rng.standard_normal((cardinality, dimensionality))
    latent = np.sqrt(correlation) * shared + np.sqrt(1.0 - correlation) * noise
    # Standard normal CDF via erf keeps scipy optional here.
    from math import sqrt

    uniforms = 0.5 * (1.0 + _erf(latent / sqrt(2.0)))
    return float32_exact(np.clip(uniforms, 0.0, 1.0))


def anticorrelated_dataset(
    cardinality: int,
    dimensionality: int,
    spread: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """Anti-correlated data: good in one dimension means bad in others.

    The classic skyline-literature workload (Borzsonyi et al. [9]):
    points scatter around the hyperplane of constant coordinate sum, so
    per-point deviations sum to zero and pairwise correlations are
    negative.  Skylines explode on such data — useful for contrasting
    the skyline query's fixed answer set with k-n-match's k-sized one
    (Sec. 2.1).
    """
    _check_shape(cardinality, dimensionality)
    if spread <= 0:
        raise ValidationError(f"spread must be positive; got {spread}")
    rng = np.random.default_rng(seed)
    # The plane position must vary far less than the in-plane spread, or
    # the common factor re-induces positive correlation.
    plane = rng.normal(0.5, spread / 6.0, size=(cardinality, 1))
    noise = rng.normal(0.0, spread, size=(cardinality, dimensionality))
    # Project the noise onto the sum-zero subspace: deviations in one
    # dimension are balanced by the others.
    noise -= noise.mean(axis=1, keepdims=True)
    return float32_exact(np.clip(plane + noise, 0.0, 1.0))


def _erf(values: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz & Stegun 7.1.26, |e|<1.5e-7)."""
    sign = np.sign(values)
    x = np.abs(values)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-x * x))


def sample_queries(
    data: np.ndarray, count: int, seed: int = 0
) -> np.ndarray:
    """Queries drawn from the dataset itself (the paper's protocol:
    "queries which are sampled randomly from the data sets")."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValidationError("data must be a non-empty 2-D array")
    if count < 1:
        raise ValidationError(f"count must be >= 1; got {count}")
    rng = np.random.default_rng(seed)
    picks = rng.choice(data.shape[0], size=count, replace=count > data.shape[0])
    return data[picks].copy()


def perturbed_queries(
    data: np.ndarray,
    count: int,
    noise: float = 0.01,
    seed: int = 0,
) -> np.ndarray:
    """Dataset points plus small uniform noise, clipped to [0, 1].

    Exercises the no-exact-match case: every difference is non-zero, so
    tie-heavy shortcuts cannot mask bugs.
    """
    if noise < 0:
        raise ValidationError(f"noise must be >= 0; got {noise}")
    rng = np.random.default_rng(seed)
    base = sample_queries(data, count, seed=seed + 1)
    jitter = rng.uniform(-noise, noise, size=base.shape)
    return float32_exact(np.clip(base + jitter, 0.0, 1.0))
