"""Batch query execution: vectorised multi-query engines and threading.

Two independent, composable layers:

* :class:`BatchBlockADEngine` — grows the epsilon windows of a whole
  query batch in lock-step, sharing each round's sorted-column passes
  across the batch (one :func:`numpy.searchsorted` per dimension per
  round for all queries).  Answers and stats are bit-identical to the
  serial :class:`~repro.core.ad_block.BlockADEngine`.
* :class:`ParallelBatchExecutor` — shards any engine's batch across a
  thread pool with work-stealing slack, aggregating per-shard
  :class:`~repro.core.types.SearchStats` into a :class:`BatchStats`.

See ``docs/batching.md`` for the design discussion.
"""

from .batch_block_ad import BatchBlockADEngine
from .executor import ParallelBatchExecutor
from .stats import BatchStats

__all__ = ["BatchBlockADEngine", "BatchStats", "ParallelBatchExecutor"]
