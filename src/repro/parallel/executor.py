"""Thread-pool batch executor over any k-n-match engine.

:class:`ParallelBatchExecutor` shards a query batch across a
``ThreadPoolExecutor`` and reassembles the per-query results in query
order.  Each shard runs the wrapped engine's own batch method when it
has one (so a sharded :class:`~repro.parallel.BatchBlockADEngine` keeps
its lock-step vectorisation within every shard) and falls back to a
per-query loop otherwise — either way the answers are exactly the ones
serial execution would produce, because the engines are pure readers of
a shared immutable :class:`~repro.sorted_lists.SortedColumns` build and
every query is independent.

Threads (not processes) are the right pool here: the hot loops sit
inside numpy ufuncs that release the GIL, and processes would have to
copy the sorted-column build into every worker.  See
``docs/batching.md`` for the full rationale and measured scaling.

With a :class:`~repro.obs.MetricsRegistry` installed (``metrics=``), the
executor additionally records shard-size and shard-latency histograms, a
per-batch straggler ratio (slowest shard over mean shard time) and
per-worker busy-time/utilisation — the signals needed to tune
``workers``/``chunk_size`` on real workloads.  With no registry the
per-shard timing is skipped entirely.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import validation
from ..core.types import FrequentMatchResult, MatchResult, SearchStats
from ..errors import ValidationError
from .stats import BatchStats

__all__ = ["ParallelBatchExecutor"]

#: shards per worker; >1 gives the pool work-stealing slack so one slow
#: shard (a straggler query with many epsilon rounds) does not leave the
#: other workers idle for the rest of the batch.
_SHARDS_PER_WORKER = 4


class ParallelBatchExecutor:
    """Shard query batches over a thread pool, results in query order."""

    def __init__(
        self,
        engine,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        """Wrap ``engine`` for parallel batch execution.

        Parameters
        ----------
        engine:
            Any object exposing ``k_n_match``/``frequent_k_n_match``
            (and optionally their ``*_batch`` variants, which each shard
            will use when present).
        workers:
            Thread-pool size; defaults to ``os.cpu_count()``.
        chunk_size:
            Queries per shard; defaults to splitting the batch into
            ``workers * 4`` shards (minimum one query each) so the pool
            can rebalance around slow shards.
        metrics:
            Optional :class:`~repro.obs.MetricsRegistry` for shard and
            worker-utilisation metrics.
        spans:
            Optional :class:`~repro.obs.SpanCollector`; each shard then
            opens a ``batch_shard`` span on its worker thread (a root of
            its own trace — span stacks are thread-confined), with the
            wrapped engine's phases nested underneath when it shares the
            collector.
        """
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValidationError(f"workers must be >= 1; got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1 or None; got {chunk_size}"
            )
        self._engine = engine
        self._workers = int(workers)
        self._chunk_size = None if chunk_size is None else int(chunk_size)
        self._metrics = metrics
        self._spans = spans
        self._last_batch_stats: Optional[BatchStats] = None

    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self._engine

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """The :class:`BatchStats` of the most recent batch call."""
        return self._last_batch_stats

    # ------------------------------------------------------------------
    def k_n_match_batch(self, queries, k: int, n: int) -> List[MatchResult]:
        """One k-n-match per row of ``queries``, sharded over the pool."""
        queries, k, n = self._validate_batch(queries, k, n=n)

        def run_shard(shard: np.ndarray) -> Sequence[MatchResult]:
            batch = getattr(self._engine, "k_n_match_batch", None)
            if batch is not None:
                return batch(shard, k, n)
            return [self._engine.k_n_match(query, k, n) for query in shard]

        return self._run(queries, run_shard)

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = False,
    ) -> List[FrequentMatchResult]:
        """One frequent k-n-match per row, sharded over the pool."""
        queries, k, n_range = self._validate_batch(queries, k, n_range=n_range)

        def run_shard(shard: np.ndarray) -> Sequence[FrequentMatchResult]:
            batch = getattr(self._engine, "frequent_k_n_match_batch", None)
            if batch is not None:
                return batch(
                    shard, k, n_range, keep_answer_sets=keep_answer_sets
                )
            return [
                self._engine.frequent_k_n_match(
                    query, k, n_range, keep_answer_sets=keep_answer_sets
                )
                for query in shard
            ]

        return self._run(queries, run_shard)

    # ------------------------------------------------------------------
    def _validate_batch(self, queries, k, n=None, n_range=None):
        """Validate batch arguments once, up front, in the canonical order.

        Engines validate again inside each shard (harmless — validation
        is idempotent), but doing it here guarantees the same
        :class:`ValidationError` for the same bad input on *every*
        engine, including for empty batches where no shard ever runs.
        """
        c = getattr(self._engine, "cardinality", None)
        d = getattr(self._engine, "dimensionality", None)
        if c is None or d is None:
            # Duck-typed engine without shape metadata: best effort.
            queries = np.asarray(queries, dtype=np.float64)
            if queries.ndim != 2:
                raise ValidationError(
                    "queries must be a 2-D array (one row each); "
                    f"got ndim={queries.ndim}"
                )
            return queries, k, n if n_range is None else n_range
        if n_range is None:
            return validation.validate_batch_match_args(queries, k, n, c, d)
        return validation.validate_batch_frequent_args(queries, k, n_range, c, d)

    def _run(self, queries: np.ndarray, run_shard) -> List:
        count = queries.shape[0]
        started = time.perf_counter()
        if count == 0:
            self._last_batch_stats = BatchStats(
                queries=0, shards=0, workers=self._workers
            )
            return []

        registry = self._metrics
        spans = self._spans
        bounds = self._shard_bounds(count)
        shards = [queries[lo:hi] for lo, hi in bounds]
        shard_seconds: List[float] = [0.0] * len(shards)
        worker_busy: Dict[int, float] = {}
        if registry is not None or spans is not None:
            inner = run_shard
            # Captured on the calling thread; worker-thread roots carry
            # it so cross-thread traces stay request-correlated.
            trace_id = (
                spans.capture_context("trace_id")
                if spans is not None
                else None
            )

            def run_shard(item):
                index, shard = item
                shard_started = (
                    time.perf_counter() if registry is not None else 0.0
                )
                if spans is None:
                    output = inner(shard)
                else:
                    # A root span on the worker thread: span stacks are
                    # thread-confined, so each shard traces separately.
                    shard_meta = dict(
                        shard=index, queries=int(shard.shape[0])
                    )
                    if trace_id is not None:
                        shard_meta["trace_id"] = trace_id
                    with spans.span("batch_shard", **shard_meta):
                        output = inner(shard)
                if registry is not None:
                    elapsed = time.perf_counter() - shard_started
                    shard_seconds[index] = elapsed
                    ident = threading.get_ident()
                    # Per-thread slot writes race only with themselves:
                    # each pool thread touches exactly its own key.
                    worker_busy[ident] = worker_busy.get(ident, 0.0) + elapsed
                return output

            work: Sequence = list(enumerate(shards))
        else:
            work = shards

        if len(shards) == 1 or self._workers == 1:
            # No point paying pool overhead for a single runnable unit.
            outputs = [run_shard(item) for item in work]
        else:
            with ThreadPoolExecutor(max_workers=self._workers) as pool:
                outputs = list(pool.map(run_shard, work))

        results: List = []
        for output in outputs:
            results.extend(output)
        elapsed = time.perf_counter() - started
        self._last_batch_stats = BatchStats(
            queries=count,
            shards=len(shards),
            workers=self._workers,
            wall_time_seconds=elapsed,
            total=SearchStats.aggregate([result.stats for result in results]),
        )
        if registry is not None:
            from ..obs import observe_batch

            observe_batch(
                registry,
                getattr(self._engine, "name", "unknown"),
                count,
                [hi - lo for lo, hi in bounds],
                shard_seconds,
                sorted(worker_busy.values(), reverse=True),
                elapsed,
            )
        return results

    def _shard_bounds(self, count: int) -> List[Tuple[int, int]]:
        """Split ``count`` queries into contiguous, near-equal shards.

        For small batches (``count < workers * 4``) this degenerates to
        one query per shard — never an empty shard, and the shard list
        always partitions ``[0, count)`` exactly.
        """
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, -(-count // (self._workers * _SHARDS_PER_WORKER)))
        return [(lo, min(lo + size, count)) for lo in range(0, count, size)]
