"""Aggregate statistics for one batch execution.

Per-query work counters stay on each result's :class:`SearchStats`
(exactly as in serial execution — the parallel paths are bit-identical);
:class:`BatchStats` is the roll-up the executor reports for the batch as
a whole: how the work was sharded, how long the batch took wall-clock,
and the component-wise total of every per-query counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.types import SearchStats

__all__ = ["BatchStats"]


@dataclass
class BatchStats:
    """Execution summary of one batch run.

    Attributes
    ----------
    queries:
        Number of queries in the batch.
    shards:
        Number of work units the batch was split into (1 when the whole
        batch ran as a single engine call).
    workers:
        Thread-pool size used (1 for in-line execution).
    wall_time_seconds:
        End-to-end wall-clock time of the batch, including sharding and
        result reassembly.
    total:
        Component-wise sum of every query's :class:`SearchStats` (via
        ``SearchStats.aggregate``; ``total_attributes`` is the max, since
        all queries ran against the same database).
    backend:
        Execution backend the fan-out ran on: ``"thread"`` for the
        in-process pools (the executor's own, and the shard
        coordinator's default), ``"process"`` for the shared-memory
        worker pool of :mod:`repro.shard.procpool`.
    """

    queries: int = 0
    shards: int = 0
    workers: int = 1
    wall_time_seconds: float = 0.0
    total: SearchStats = field(default_factory=SearchStats)
    backend: str = "thread"

    @property
    def queries_per_second(self) -> float:
        """Batch throughput; 0.0 when the wall time is unmeasurably small."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.queries / self.wall_time_seconds
