"""Vectorised multi-query Block-AD: one numpy pass per round, whole batch.

:class:`~repro.core.ad_block.BlockADEngine` already replaces the
attribute-at-a-time heap walk with epsilon windows, but it still runs one
query at a time: every epsilon round costs ``2d`` `searchsorted` calls,
``d`` scatter-adds and a handful of ``O(c)`` reductions *per query*, and
every round re-adds the whole window from scratch.  For a batch of ``q``
queries that interpreter overhead multiplies by ``q`` even though all
queries bisect the same ``d`` sorted columns.

:class:`BatchBlockADEngine` grows the per-query epsilons in **lock-step**
and shares the column passes across the batch:

1. Per round, per dimension, one ``searchsorted`` locates the window
   bounds of *all* active queries at once (a ``(q, d)`` bound matrix).
2. Because each query's epsilon only grows, its windows nest round over
   round — so only the **delta** (the newly admitted ends of each window)
   is scattered into the per-query count matrix.  Across a whole query
   this retrieves each window attribute once instead of once per round.
3. Per-query early-exit masks drop finished queries from the lock-step
   round so a straggler query never forces work for the rest.

Answers are **bit-identical** to the serial engines: the epsilon schedule
(initial threshold, adaptive growth factor, stop rule) reproduces
``BlockADEngine`` exactly, the candidate sets are therefore the same, and
the final exact refinement (sorted difference profiles + the shared
deterministic ``lexsort``/:func:`rank_by_frequency` tie-breaking) is the
same code path.  Even if the schedule ever diverged, correctness would
not: the refinement recomputes exact n-match differences for a candidate
superset, so the windows only decide *how much* work is done, never
*which* answers come back.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core import validation
from ..core.ad_block import BlockADEngine
from ..core.types import (
    FrequentMatchResult,
    MatchResult,
    SearchStats,
    rank_by_frequency,
)
from ..sorted_lists import SortedColumns

__all__ = ["BatchBlockADEngine"]


class BatchBlockADEngine:
    """Lock-step vectorised Block-AD over a whole query batch."""

    name = "batch-block-ad"

    #: growth clamps — identical to :class:`BlockADEngine` so the
    #: epsilon schedules (and hence the stats) match the serial engine.
    MIN_GROWTH = BlockADEngine.MIN_GROWTH
    MAX_GROWTH = BlockADEngine.MAX_GROWTH

    #: default lock-step group size.  Each in-flight query owns a
    #: ``c``-element count row that the scatter and threshold passes
    #: sweep every round, so the group working set is ``chunk * 8c``
    #: bytes; past the last-level cache the rows thrash and the scatter
    #: slows ~2x.  32 rows balances that against amortising each
    #: round's column bisections over more queries (measured optimum on
    #: a 50k x 32 database; 16 is within a few percent).
    DEFAULT_CHUNK = 32

    def __init__(
        self,
        data: Union[np.ndarray, SortedColumns],
        chunk_size: Union[int, None] = None,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)
        # Serial engine for single-query calls and the rare zero-epsilon
        # fallback; shares the same build.  It keeps metrics=None: the
        # batch engine records its own events (including for delegated
        # single-query calls) so nothing is double-counted.  Spans *are*
        # shared: delegated single-query calls trace as the serial
        # engine's phases, which is what they run.
        self._serial = BlockADEngine(self._columns, spans=spans)
        self._metrics = metrics
        self._spans = spans
        # (d, c) view shared by every batch round's bound searches.
        self._values_matrix = self._columns.values_matrix
        # Narrow id copy: point ids fit int32, and the delta scatters are
        # memory-bound, so halving the id width measurably helps.  One
        # extra 4*c*d-byte array per engine, built once.  Kept as a list
        # of per-dimension rows: 1-D slicing is the hot path.
        self._ids_narrow = self._columns.ids_matrix.astype(np.int32)
        self._ids_rows = list(self._ids_narrow)
        if chunk_size is None:
            chunk_size = self.DEFAULT_CHUNK
        elif chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
        self._chunk_size = int(chunk_size)

    # ------------------------------------------------------------------
    @property
    def columns(self) -> SortedColumns:
        return self._columns

    @property
    def data(self) -> np.ndarray:
        return self._columns.data

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector
        self._serial.spans = collector

    # ------------------------------------------------------------------
    # single-query API (delegates to the serial engine, same answers)
    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        registry = self._metrics
        started = time.perf_counter() if registry is not None else 0.0
        result = self._serial.k_n_match(query, k, n)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "k_n_match", result.stats,
                time.perf_counter() - started, self.dimensionality,
            )
        return result

    def frequent_k_n_match(
        self, query, k: int, n_range: Tuple[int, int], keep_answer_sets: bool = True
    ) -> FrequentMatchResult:
        registry = self._metrics
        started = time.perf_counter() if registry is not None else 0.0
        result = self._serial.frequent_k_n_match(
            query, k, n_range, keep_answer_sets=keep_answer_sets
        )
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "frequent_k_n_match", result.stats,
                time.perf_counter() - started, self.dimensionality,
            )
        return result

    # ------------------------------------------------------------------
    # batch API
    # ------------------------------------------------------------------
    def k_n_match_batch(self, queries, k: int, n: int) -> List[MatchResult]:
        """One k-n-match per row of ``queries`` in one lock-step run."""
        c, d = self.cardinality, self.dimensionality
        queries, k, n = validation.validate_batch_match_args(
            queries, k, n, c, d
        )
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            results = self._k_n_match_batch_impl(queries, k, n)
        else:
            with spans.span(
                f"{self.name}/k_n_match_batch",
                batch=int(queries.shape[0]), k=k, n=n,
            ):
                results = self._k_n_match_batch_impl(queries, k, n)
        if registry is not None:
            self._observe_batch(registry, "k_n_match", results, started)
        return results

    def _k_n_match_batch_impl(
        self, queries: np.ndarray, k: int, n: int
    ) -> List[MatchResult]:
        """The lock-step run plus per-query conversion to MatchResult."""
        frequents = self._frequent_batch_impl(
            queries, k, n, n, keep_answer_sets=True
        )
        data = self._columns.data
        results: List[MatchResult] = []
        for query, freq in zip(queries, frequents):
            ids = freq.answer_sets[n]
            differences = [
                float(np.partition(np.abs(data[pid] - query), n - 1)[n - 1])
                for pid in ids
            ]
            results.append(
                MatchResult(
                    ids=list(ids),
                    differences=differences,
                    k=freq.k,
                    n=n,
                    stats=freq.stats,
                )
            )
        return results

    def frequent_k_n_match_batch(
        self,
        queries,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = False,
    ) -> List[FrequentMatchResult]:
        """One frequent k-n-match per row of ``queries``, lock-step."""
        c, d = self.cardinality, self.dimensionality
        queries, k, (n0, n1) = validation.validate_batch_frequent_args(
            queries, k, n_range, c, d
        )
        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        if spans is None:
            results = self._frequent_batch_impl(
                queries, k, n0, n1, keep_answer_sets=keep_answer_sets
            )
        else:
            with spans.span(
                f"{self.name}/frequent_k_n_match_batch",
                batch=int(queries.shape[0]), k=k, n0=n0, n1=n1,
            ):
                results = self._frequent_batch_impl(
                    queries, k, n0, n1, keep_answer_sets=keep_answer_sets
                )
        if registry is not None:
            self._observe_batch(
                registry, "frequent_k_n_match", results, started
            )
        return results

    def _observe_batch(self, registry, kind, results, started: float) -> None:
        """Record one event per batched query, amortising the wall time.

        The batch runs lock-step, so individual query latencies do not
        exist; each query is charged the batch mean (documented in
        ``docs/observability.md``).  Cost counters come from each
        query's own :class:`SearchStats`, so totals are exact.
        """
        from ..obs import observe_query

        if not results:
            return
        share = (time.perf_counter() - started) / len(results)
        d = self.dimensionality
        for result in results:
            observe_query(registry, self.name, kind, result.stats, share, d)

    def _frequent_batch_impl(
        self,
        queries: np.ndarray,
        k: int,
        n0: int,
        n1: int,
        keep_answer_sets: bool,
    ) -> List[FrequentMatchResult]:
        """The lock-step batch body (arguments pre-validated)."""
        a = queries.shape[0]
        if a == 0:
            return []
        if a > self._chunk_size:
            # Queries are independent (each has its own epsilon
            # schedule), so grouping only bounds the cache working set —
            # the per-query answers and stats are unaffected.
            results: List[FrequentMatchResult] = []
            for start in range(0, a, self._chunk_size):
                results.extend(
                    self._frequent_batch_impl(
                        queries[start : start + self._chunk_size],
                        k,
                        n0,
                        n1,
                        keep_answer_sets=keep_answer_sets,
                    )
                )
            return results

        spans = self._spans
        if spans is None:
            masks, final_attrs, rounds = self._grow_windows_batch(
                queries, k, n0, n1
            )
            return self._finalize_batch(
                queries, k, n0, n1, keep_answer_sets, masks, final_attrs,
                rounds,
            )
        with spans.span("lockstep", queries=a):
            masks, final_attrs, rounds = self._grow_windows_batch(
                queries, k, n0, n1
            )
            spans.annotate(rounds=int(max(rounds)))
        with spans.span("finalize"):
            return self._finalize_batch(
                queries, k, n0, n1, keep_answer_sets, masks, final_attrs,
                rounds,
            )

    def _finalize_batch(
        self,
        queries: np.ndarray,
        k: int,
        n0: int,
        n1: int,
        keep_answer_sets: bool,
        masks: np.ndarray,
        final_attrs,
        rounds,
    ) -> List[FrequentMatchResult]:
        """Exact refinement + result assembly after the lock-step rounds."""
        c, d = self.cardinality, self.dimensionality
        a = queries.shape[0]
        data = self._columns.data
        results: List[FrequentMatchResult] = []
        for i in range(a):
            # Exact refinement — verbatim the serial engine's code path so
            # tie-breaking (lexsort on (id, difference)) is bit-identical.
            candidates = np.flatnonzero(masks[i])
            profiles = np.sort(np.abs(data[candidates] - queries[i]), axis=1)
            answer_sets: Dict[int, List[int]] = {}
            for n in range(n0, n1 + 1):
                column = profiles[:, n - 1]
                order = np.lexsort((candidates, column))
                answer_sets[n] = [int(candidates[pos]) for pos in order[:k]]
            chosen, frequencies = rank_by_frequency(answer_sets, k)
            stats = SearchStats(
                attributes_retrieved=int(final_attrs[i] + candidates.shape[0] * d),
                total_attributes=c * d,
                binary_search_probes=int(d + 2 * d * rounds[i]),
                candidates_refined=int(candidates.shape[0]),
            )
            results.append(
                FrequentMatchResult(
                    ids=chosen,
                    frequencies=frequencies,
                    k=k,
                    n_range=(n0, n1),
                    answer_sets=answer_sets if keep_answer_sets else None,
                    stats=stats,
                )
            )
        return results

    # ------------------------------------------------------------------
    # lock-step epsilon growth
    # ------------------------------------------------------------------
    def _grow_windows_batch(
        self, queries: np.ndarray, k: int, n0: int, n1: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grow every query's epsilon until its ``n1`` level is satisfied.

        Returns ``(candidate masks (a, c) bool, attributes consumed at
        each query's final eps (a,), rounds per query (a,))``.  The mask
        of query ``i`` is exactly the union, over ``n in [n0, n1]``, of
        ``counts >= n`` at the *earliest* round where at least ``k``
        points reached ``n`` window hits — the same set the serial
        engine derives from its round history.
        """
        c, d = self.cardinality, self.dimensionality
        a = queries.shape[0]
        vals = self._values_matrix
        # One row list per delta side, matching the interleaved (2d,)
        # start/stop layout built each round.
        ids_twice = self._ids_rows + self._ids_rows

        # Per-query state, indexed by original query position.  The
        # count rows are int32 *and* the scatter addend is np.int32(1):
        # ``ufunc.at`` only has a no-cast fast path when the accumulator
        # and operand dtypes match (a python-int 1 against a narrow row
        # measures ~30x slower), and the narrow rows halve the working
        # set the scatter and threshold passes sweep every round.
        one = np.int32(1)
        eps = [float(e) for e in self._initial_epsilons(queries, k, n1)]
        counts = [np.zeros(c, dtype=np.int32) for _ in range(a)]
        # level[i]: the smallest n level not yet satisfied for query i;
        # monotone because, within one round, "k points reached >= n
        # window hits" can only get harder as n grows.
        level = [n0] * a
        masks = np.zeros((a, c), dtype=bool)
        final_attrs = [0] * a
        rounds = [0] * a

        # Lock-step state, compacted to the still-active queries so a
        # straggler query never forces O(batch) work for the rest.
        active: List[int] = list(range(a))
        q_act = queries
        old_lo = old_hi = None  # (len(active), d) bound matrices

        while active:
            na = len(active)
            eps_vec = np.array([eps[gi] for gi in active])
            new_lo = np.empty((na, d), dtype=np.int64)
            new_hi = np.empty((na, d), dtype=np.int64)
            # One bisection pass per dimension serves the whole batch.
            for j in range(d):
                new_lo[:, j] = np.searchsorted(
                    vals[j], q_act[:, j] - eps_vec, side="left"
                )
                new_hi[:, j] = np.searchsorted(
                    vals[j], q_act[:, j] + eps_vec, side="right"
                )
            if old_lo is None:
                # First round: the whole window is the delta.
                old_lo = new_lo
                old_hi = new_lo
            attrs_now = (new_hi - new_lo).sum(axis=1).tolist()
            # Delta ranges, interleaved (2d,) per query: the left deltas
            # [new_lo, old_lo) then the right deltas [old_hi, new_hi).
            starts = np.concatenate([new_lo, old_hi], axis=1).tolist()
            stops = np.concatenate([old_lo, new_hi], axis=1).tolist()

            still: List[int] = []
            for pos in range(na):
                gi = active[pos]
                row = counts[gi]
                # Windows nest (eps only grows), so scatter only the
                # deltas (the newly admitted window ends).  Across a
                # whole query this touches each window attribute once
                # instead of once per round, and the per-query count row
                # stays cache-resident for the scatter.
                pieces = [
                    idr[s:t]
                    for idr, s, t in zip(ids_twice, starts[pos], stops[pos])
                    if t > s
                ]
                if pieces:
                    delta = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
                    np.add.at(row, delta, one)
                rounds[gi] += 1
                final_attrs[gi] = attrs_now[pos]

                # Advance the n pointer while its level is satisfied;
                # OR-ing the mask at the first newly satisfied level
                # reproduces the serial engine's "earliest sufficient
                # round per n" scan (that level's count set contains
                # every higher level's).
                lev = first = level[gi]
                sat = int(np.count_nonzero(row >= lev)) if lev <= n1 else 0
                while lev <= n1 and sat >= k:
                    lev += 1
                    if lev <= n1:
                        sat = int(np.count_nonzero(row >= lev))
                if lev > first:
                    masks[gi] |= row >= first
                level[gi] = lev

                if lev > n1:
                    continue  # satisfied through n1 -> query finished
                if attrs_now[pos] >= c * d:
                    # Defensive, like the serial engine: whole database
                    # consumed yet some level never reached k matches.
                    masks[gi] = True
                    continue
                # Adaptive growth, identical to the serial engine: the
                # count of points matching in >= n1 dimensions scales
                # roughly like eps^n1 locally, so the deficit suggests
                # the factor still needed.
                sat_n1 = sat if lev == n1 else int(np.count_nonzero(row >= n1))
                needed = (k / max(sat_n1, 0.5)) ** (1.0 / n1)
                eps[gi] = eps[gi] * min(
                    self.MAX_GROWTH, max(self.MIN_GROWTH, needed)
                )
                still.append(pos)

            if len(still) != na:
                active = [active[pos] for pos in still]
                q_act = q_act[still]
                old_lo = new_lo[still]
                old_hi = new_hi[still]
            else:
                old_lo, old_hi = new_lo, new_hi

        return masks, final_attrs, rounds

    def _initial_epsilons(self, queries: np.ndarray, k: int, n1: int) -> np.ndarray:
        """Vectorised :meth:`BlockADEngine._initial_epsilon` for a batch.

        Per dimension, gathers the ``2m`` attributes around every query's
        split position (inf-padded at the array edges) and takes the
        ``m``-th smallest per-dimension difference; the batch starting
        threshold is the per-query minimum over dimensions — the same
        under-shooting start as the serial engine.
        """
        c, d = self.cardinality, self.dimensionality
        a = queries.shape[0]
        m = min(c, max(1, -(-k * n1 // d)))  # ceil(k*n1/d)
        vals = self._values_matrix
        splits = np.empty((a, d), dtype=np.int64)
        for j in range(d):
            splits[:, j] = np.searchsorted(vals[j], queries[:, j], side="left")
        offsets = np.arange(2 * m, dtype=np.int64)[None, :]
        best = np.full(a, np.inf)
        for j in range(d):
            lo = np.maximum(0, splits[:, j] - m)
            hi = np.minimum(c, splits[:, j] + m)
            pos = lo[:, None] + offsets  # (a, 2m)
            valid = pos < hi[:, None]
            window = np.abs(
                vals[j][np.minimum(pos, c - 1)] - queries[:, j][:, None]
            )
            window[~valid] = np.inf
            # Window sizes are always >= m (m <= c), so the m-th smallest
            # over the inf-padded rows equals the serial per-window value.
            best = np.minimum(best, np.partition(window, m - 1, axis=1)[:, m - 1])
        eps = best.copy()
        fallback = ~np.isfinite(best) | (best <= 0)
        if fallback.any():
            values = [self._columns.column_values(j) for j in range(d)]
            for i in np.flatnonzero(fallback):
                eps[i] = self._serial._smallest_positive(queries[i], values)
        return eps
