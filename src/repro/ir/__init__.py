"""Multiple-system information retrieval model (Fagin [11], Sec. 3)."""

from .middleware import MatchMiddleware, SystemCursor
from .system import ScoreSystem

__all__ = ["ScoreSystem", "MatchMiddleware", "SystemCursor"]
