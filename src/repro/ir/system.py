"""One scoring system of the multiple-system retrieval model.

Sec. 3's motivating setting (Fagin's model [11]): "objects are stored in
different systems and given scores by each system.  Each system will sort
the objects according to their scores.  A query retrieves the scores of
objects (by sorted access) from different systems ... the major cost is
the retrieval of the scores from the systems, which is proportional to
the number of scores retrieved."

A :class:`ScoreSystem` owns one score per object, serves them in sorted
order, and counts every access — the per-system bill the middleware
reports and the optimality theorem is stated against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["ScoreSystem"]


class ScoreSystem:
    """A named system serving sorted access over its object scores."""

    def __init__(self, name: str, scores) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1 or scores.size == 0:
            raise ValidationError(
                f"system {name!r} needs a non-empty 1-D score array"
            )
        if not np.isfinite(scores).all():
            raise ValidationError(f"system {name!r} has non-finite scores")
        self.name = name
        self._scores = scores
        order = np.argsort(scores, kind="stable")
        self._sorted_ids = order
        self._sorted_scores = scores[order]
        self.sorted_accesses = 0
        self.random_accesses = 0

    @property
    def size(self) -> int:
        return self._scores.shape[0]

    def sorted_entry(self, rank: int) -> Tuple[int, float]:
        """The ``rank``-th smallest score as ``(object id, score)``.

        Counts one sorted access: in Fagin's model this is the unit the
        query pays for.
        """
        if not 0 <= rank < self.size:
            raise ValidationError(
                f"rank {rank} out of range [0, {self.size})"
            )
        self.sorted_accesses += 1
        return int(self._sorted_ids[rank]), float(self._sorted_scores[rank])

    def random_access(self, object_id: int) -> float:
        """Fetch one object's score directly (counted separately)."""
        if not 0 <= object_id < self.size:
            raise ValidationError(
                f"object {object_id} out of range [0, {self.size})"
            )
        self.random_accesses += 1
        return float(self._scores[object_id])

    def locate(self, score: float) -> int:
        """Rank of the first sorted score ``>= score`` (free of charge:
        a system-side binary search, not a score retrieval)."""
        return int(np.searchsorted(self._sorted_scores, score, side="left"))

    def reset_counters(self) -> None:
        self.sorted_accesses = 0
        self.random_accesses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ScoreSystem(name={self.name!r}, size={self.size})"
