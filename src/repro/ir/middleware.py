"""k-n-match middleware over multiple scoring systems.

Implements similarity search across ``m`` independent systems as the
paper proposes: "the scores from different systems become the attributes
of different dimensions in the (frequent) k-n-match problem, and the
algorithmic goal is to minimize the number of attributes retrieved."

The middleware runs the very same AD consumption loop as the in-memory
engine, but each attribute comes from a counted
:meth:`~repro.ir.system.ScoreSystem.sorted_entry` call, so the result's
``attributes_retrieved`` equals the sum of the systems' sorted-access
bills — the quantity Thm 3.2 proves minimal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import validation
from ..core.matchloop import run_frequent_k_n_match, run_k_n_match
from ..core.types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency
from ..errors import ValidationError
from ..sorted_lists import AscendingDifferenceFrontier
from .system import ScoreSystem

__all__ = ["MatchMiddleware", "SystemCursor"]


class SystemCursor:
    """One-directional sorted-access walk over one system.

    The middleware analogue of the column cursor: yields ``(object id,
    |score - target|)`` in ascending difference order within its
    direction, paying one sorted access per step.
    """

    __slots__ = ("system", "direction", "_rank", "_target", "retrieved")

    def __init__(
        self, system: ScoreSystem, direction: int, start_rank: int, target: float
    ) -> None:
        if direction not in (-1, +1):
            raise ValueError(f"direction must be -1 or +1; got {direction}")
        self.system = system
        self.direction = direction
        self._rank = start_rank
        self._target = target
        self.retrieved = 0

    @property
    def exhausted(self) -> bool:
        return not 0 <= self._rank < self.system.size

    def next(self) -> Optional[Tuple[int, float]]:
        if self.exhausted:
            return None
        object_id, score = self.system.sorted_entry(self._rank)
        self._rank += self.direction
        self.retrieved += 1
        return object_id, abs(score - self._target)


class MatchMiddleware:
    """Aggregates m systems' scores with the (frequent) k-n-match query."""

    def __init__(self, systems: Sequence[ScoreSystem]) -> None:
        if not systems:
            raise ValidationError("at least one system is required")
        sizes = {system.size for system in systems}
        if len(sizes) != 1:
            raise ValidationError(
                f"all systems must score the same object set; got sizes {sorted(sizes)}"
            )
        names = [system.name for system in systems]
        if len(set(names)) != len(names):
            raise ValidationError(f"system names must be unique; got {names}")
        self._systems = list(systems)
        self._size = sizes.pop()

    @property
    def systems(self) -> List[ScoreSystem]:
        return list(self._systems)

    @property
    def object_count(self) -> int:
        return self._size

    @property
    def system_count(self) -> int:
        return len(self._systems)

    # ------------------------------------------------------------------
    def k_n_match(self, target_scores, k: int, n: int) -> MatchResult:
        """The k objects matching the target scores in n systems best."""
        m = len(self._systems)
        k = validation.validate_k(k, self._size)
        n = validation.validate_n(n, m)
        targets = validation.as_query_array(target_scores, m)

        frontier = AscendingDifferenceFrontier(self._make_cursors(targets))
        ids, differences = run_k_n_match(frontier, self._size, k, n)
        return MatchResult(
            ids=ids,
            differences=differences,
            k=k,
            n=n,
            stats=self._make_stats(frontier),
        )

    def frequent_k_n_match(
        self,
        target_scores,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Frequent k-n-match across the systems."""
        m = len(self._systems)
        k = validation.validate_k(k, self._size)
        n0, n1 = validation.validate_n_range(n_range, m)
        targets = validation.as_query_array(target_scores, m)

        frontier = AscendingDifferenceFrontier(self._make_cursors(targets))
        sets = run_frequent_k_n_match(frontier, self._size, k, n0, n1)
        answer_sets = {n: ids[:k] for n, ids in sets.items()}
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=self._make_stats(frontier),
        )

    def access_bill(self) -> Dict[str, int]:
        """Per-system sorted-access counts since the last reset."""
        return {system.name: system.sorted_accesses for system in self._systems}

    def reset_counters(self) -> None:
        for system in self._systems:
            system.reset_counters()

    # ------------------------------------------------------------------
    def _make_cursors(self, targets: np.ndarray) -> List[SystemCursor]:
        cursors: List[SystemCursor] = []
        for j, system in enumerate(self._systems):
            target = float(targets[j])
            split = system.locate(target)
            cursors.append(SystemCursor(system, -1, split - 1, target))
            cursors.append(SystemCursor(system, +1, split, target))
        return cursors

    def _make_stats(self, frontier: AscendingDifferenceFrontier) -> SearchStats:
        return SearchStats(
            attributes_retrieved=frontier.attributes_retrieved,
            total_attributes=self._size * len(self._systems),
            heap_pops=frontier.pops,
            binary_search_probes=len(self._systems),
        )
