"""A thread-safe, generation-keyed LRU cache for encoded query results.

The cache stores the **canonical response bytes** of finished queries,
keyed on everything that determines the answer::

    (db_generation, engine, kind, k, n-or-range, query-bytes)

``db_generation`` is the database facade's mutation counter (static
facades never change, so theirs is the constant 0; a
:class:`~repro.core.dynamic.DynamicMatchDatabase` bumps it on every
insert/delete/compact).  A mutation therefore *implicitly* invalidates
every cached answer — stale keys can never be looked up again and age
out of the LRU — which keeps a cache hit bit-identical to a cold query
at every moment, with no explicit invalidation hooks to forget.

``query-bytes`` is the raw float64 buffer of the (coerced) query, so
two textually different JSON spellings of the same vector (``1`` vs
``1.0``) share an entry, while any numeric difference — however small —
does not.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["ResultCache", "cache_key", "query_fingerprint"]


def query_fingerprint(query) -> bytes:
    """The byte identity of a query vector or batch.

    The shape prefix keeps a ``(2, 3)`` batch distinct from a ``(3, 2)``
    one with the same flat buffer.
    """
    array = np.ascontiguousarray(np.asarray(query, dtype=np.float64))
    return repr(array.shape).encode("ascii") + array.tobytes()


def cache_key(
    generation: int,
    engine: str,
    kind: str,
    k: object,
    n_spec: object,
    fingerprint: bytes,
) -> Tuple:
    """The full identity of one cacheable query execution."""
    return (generation, engine, kind, k, n_spec, fingerprint)


class ResultCache:
    """Thread-safe LRU over canonical response bytes.

    ``capacity`` is the maximum number of entries; 0 disables caching
    entirely (every :meth:`get` misses, every :meth:`put` is a no-op).
    Hit/miss/eviction totals are tracked here; the serving layer mirrors
    them into the metrics registry.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise ValidationError(
                f"capacity must be an integer; got {capacity!r}"
            )
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0; got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[bytes]:
        """The cached bytes for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Tuple, value: bytes) -> int:
        """Store ``value``; returns how many entries were evicted."""
        if self.capacity == 0:
            return 0
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        return evicted

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
