"""Admission control: bounded concurrency with deadline-aware shedding.

A production query server must degrade *predictably* under overload:
beyond a concurrency limit, extra requests should wait briefly and then
be rejected with a clear signal (HTTP 429), never pile up unboundedly or
hang.  :class:`AdmissionController` implements exactly that:

* a **max-in-flight semaphore** — at most ``max_inflight`` requests
  execute concurrently;
* a **per-request deadline budget** — a request waits for a slot at
  most its deadline (the server default, or the request's own
  ``deadline_ms``); if the wait exhausts the budget the request is
  *shed* with :class:`ShedError` and never touches the database;
* **queue-wait accounting** — every admitted request knows how long it
  queued (:attr:`Ticket.queue_seconds`), which the server exports as
  the ``repro_serve_queue_seconds`` histogram and an
  ``X-Repro-Queue-Ms`` response header.

Admission happens before cache lookup and query execution, so a shed
request costs one semaphore wait and nothing else.  Execution itself is
never preempted: the deadline bounds *queueing*, not engine work — by
the time a request holds a slot, finishing it is the cheapest outcome.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from ..errors import ReproError, ValidationError

__all__ = ["AdmissionController", "ShedError", "Ticket"]

#: Exponential-moving-average weight for observed queue waits: small
#: enough to smooth single outliers, large enough that a sustained
#: overload moves the average within a handful of requests.
_QUEUE_WAIT_EWMA_ALPHA = 0.3

#: Default per-request deadline budget (seconds) when neither the
#: server configuration nor the request specifies one.
DEFAULT_DEADLINE_SECONDS = 1.0


class ShedError(ReproError):
    """A request was rejected by admission control (maps to HTTP 429)."""

    def __init__(self, reason: str, message: str, queue_seconds: float) -> None:
        self.reason = reason
        self.queue_seconds = queue_seconds
        super().__init__(message)


@dataclass(frozen=True)
class Ticket:
    """Proof of admission: one in-flight slot, plus queue accounting."""

    queue_seconds: float
    deadline_seconds: float

    @property
    def remaining_seconds(self) -> float:
        """Deadline budget left after the queue wait."""
        return max(0.0, self.deadline_seconds - self.queue_seconds)


class AdmissionController:
    """Gate requests through a bounded in-flight slot pool.

    >>> controller = AdmissionController(max_inflight=2)
    >>> ticket = controller.admit()
    >>> controller.inflight
    1
    >>> controller.release()
    >>> controller.inflight
    0
    """

    def __init__(
        self,
        max_inflight: int = 64,
        deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
    ) -> None:
        if not isinstance(max_inflight, int) or isinstance(max_inflight, bool):
            raise ValidationError(
                f"max_inflight must be an integer; got {max_inflight!r}"
            )
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1; got {max_inflight}"
            )
        if deadline_seconds <= 0:
            raise ValidationError(
                f"deadline_seconds must be > 0; got {deadline_seconds}"
            )
        self.max_inflight = max_inflight
        self.deadline_seconds = float(deadline_seconds)
        self._semaphore = threading.BoundedSemaphore(max_inflight)
        self._inflight = 0
        self._lock = threading.Lock()
        self._sheds = 0
        self._queue_wait_ewma = 0.0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        return self._inflight

    @property
    def sheds(self) -> int:
        """Total requests shed since construction."""
        return self._sheds

    def admit(self, deadline_seconds: float = None) -> Ticket:
        """Wait for a slot within the deadline budget, or shed.

        Returns a :class:`Ticket` recording the queue wait; raises
        :class:`ShedError` when no slot frees up in time.  Callers must
        pair every successful ``admit`` with exactly one
        :meth:`release`.
        """
        budget = (
            self.deadline_seconds
            if deadline_seconds is None
            else float(deadline_seconds)
        )
        if budget <= 0:
            raise ValidationError(
                f"deadline_seconds must be > 0; got {budget}"
            )
        started = time.perf_counter()
        acquired = self._semaphore.acquire(timeout=budget)
        waited = time.perf_counter() - started
        self._observe_queue_wait(waited)
        if not acquired:
            with self._lock:
                self._sheds += 1
            raise ShedError(
                "queue_full",
                f"no in-flight slot freed within the {budget * 1000:.0f}ms "
                f"deadline ({self.max_inflight} in flight); retry later",
                waited,
            )
        if waited >= budget:
            # Acquired exactly at the deadline edge: the budget is gone,
            # so running the query now can only miss it further.
            self._semaphore.release()
            with self._lock:
                self._sheds += 1
            raise ShedError(
                "deadline",
                f"deadline budget ({budget * 1000:.0f}ms) consumed while "
                f"queued ({waited * 1000:.0f}ms); retry later",
                waited,
            )
        with self._lock:
            self._inflight += 1
        return Ticket(queue_seconds=waited, deadline_seconds=budget)

    def release(self) -> None:
        """Return one slot (exactly once per successful :meth:`admit`)."""
        with self._lock:
            self._inflight -= 1
        self._semaphore.release()

    # ------------------------------------------------------------------
    def _observe_queue_wait(self, waited: float) -> None:
        with self._lock:
            self._queue_wait_ewma += _QUEUE_WAIT_EWMA_ALPHA * (
                waited - self._queue_wait_ewma
            )

    @property
    def queue_wait_ewma_seconds(self) -> float:
        """Smoothed queue wait over recent admits *and* sheds."""
        return self._queue_wait_ewma

    def retry_after_seconds(self, queue_seconds: float = 0.0) -> int:
        """Honest ``Retry-After`` for a shed request (whole seconds, >= 1).

        Derived from the load actually observed — the larger of this
        request's own queue wait and the smoothed recent wait — rounded
        *up*, so a retry earlier than the advertised delay is never the
        controller's suggestion.  An idle controller says 1, the
        protocol minimum.
        """
        observed = max(float(queue_seconds), self._queue_wait_ewma)
        return max(1, math.ceil(observed))

    def wait_idle(self, timeout_seconds: float) -> bool:
        """Block until nothing is in flight; ``False`` on timeout.

        Used by graceful drain: stop admitting, then wait for the
        in-flight tail to finish.
        """
        deadline = time.perf_counter() + timeout_seconds
        while self._inflight > 0:
            if time.perf_counter() >= deadline:
                return False
            time.sleep(0.005)
        return True
