"""The HTTP query server: ThreadingHTTPServer around a framework-free app.

Two layers, deliberately separated:

* :class:`ServeApp` — the whole request lifecycle as a pure function
  ``(method, path, body) -> (status, headers, body)``: routing, JSON
  parsing, admission control, the generation-keyed result cache, query
  execution against *any* database facade (:class:`~repro.core.engine.
  MatchDatabase`, :class:`~repro.shard.ShardedMatchDatabase`,
  :class:`~repro.core.dynamic.DynamicMatchDatabase`), canonical
  encoding and error mapping.  No sockets anywhere, so every behaviour
  is unit-testable in-process.
* :class:`MatchServer` — a ``ThreadingHTTPServer`` that owns one
  :class:`ServeApp` and does nothing but move bytes.  ``start()`` runs
  it on a background thread (tests, benchmarks); ``run()`` serves on
  the calling thread with SIGTERM/SIGINT triggering a graceful drain
  (the CLI path).

Endpoints::

    POST /v1/query              one k-n-match
    POST /v1/frequent           one frequent k-n-match
    POST /v1/batch              a batch of k-n-matches
    POST /v1/insert             insert one point (mutable facades)
    POST /v1/delete             delete one point by id (mutable facades)
    GET  /healthz               liveness + database generation
    GET  /metrics               Prometheus 0.0.4 text (the repro.obs exporter)
    GET  /v1/debug/flight       the flight recorder's retained records
    GET  /v1/debug/trace/<id>   one record by trace id (?format=chrome)

Observability: the app always owns a
:class:`~repro.obs.MetricsRegistry` (``/metrics`` must have something
to export) and records ``repro_serve_*`` series through the canonical
helpers in :mod:`repro.obs.instrument`; with ``instrument_database=True``
(the default) the registry — and the span collector, when one is passed
— is also installed on the facade, so engine-level counters and
``serve_handle``/``serve_cache`` phase spans land in the same registry
a scrape sees.

Request tracing: every request gets a :class:`~repro.obs.TraceContext`
— minted deterministically, or adopted from the client's
``X-Repro-Trace`` header (W3C-traceparent layout) — echoed back in the
response headers, attached to the ``serve_handle`` span root, and keyed
into the flight recorder, which retains the complete record (span tree,
plan/engine/mode, cache event, queue/handle ms) of every slow, shed or
failed query for the debug endpoints above.  ``access_log`` streams one
canonical-JSON line per request.  See ``docs/observability.md``.
"""

from __future__ import annotations

import inspect
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import validation
from ..core.engine import validate_engine_choice
from ..errors import ValidationError
from ..obs import (
    FlightRecorder,
    MetricsRegistry,
    TRACE_HEADER,
    TraceContext,
    TraceIdGenerator,
    observe_serve_cache,
    observe_serve_request,
    observe_serve_shed,
    parse_trace_header,
    render_prometheus,
    serve_inflight_gauge,
)
from . import protocol
from .admission import AdmissionController, ShedError
from .cache import ResultCache, cache_key, query_fingerprint

__all__ = ["ServeApp", "MatchServer"]

_JSON = "application/json"

#: Endpoint label used for paths that match no route, so the metrics
#: registry's label cardinality stays bounded no matter what clients
#: send.
_UNKNOWN_ENDPOINT = "unknown"

_POST_ENDPOINTS = (
    "/v1/query", "/v1/frequent", "/v1/batch", "/v1/insert", "/v1/delete",
)
#: The subset of POST endpoints that mutate the database; they bypass
#: the result cache and stamp the new generation on the response.
_MUTATION_ENDPOINTS = ("/v1/insert", "/v1/delete")
_GET_ENDPOINTS = ("/healthz", "/metrics", "/v1/debug/flight")
#: Prefix route for one-record lookup: ``/v1/debug/trace/<trace_id>``.
_TRACE_PREFIX = "/v1/debug/trace/"


class ServeApp:
    """The request lifecycle, independent of any socket (see module doc)."""

    def __init__(
        self,
        db,
        default_engine: Optional[str] = None,
        max_inflight: int = 64,
        deadline_ms: float = 1000.0,
        cache_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[object] = None,
        instrument_database: bool = True,
        default_mode: Optional[str] = None,
        default_budget: Optional[int] = None,
        default_target_recall: Optional[float] = None,
        default_candidate_multiplier: Optional[int] = None,
        slow_threshold_seconds: Optional[float] = None,
        flight_capacity: int = 64,
        access_log: Optional[object] = None,
        trace_seed: int = 0,
    ) -> None:
        self._db = db
        signature = inspect.signature(db.k_n_match).parameters
        self._supports_engine = "engine" in signature
        self._supports_approx = "mode" in signature
        frequent = getattr(db, "frequent_k_n_match", None)
        self._supports_frequent_mode = (
            frequent is not None
            and "mode" in inspect.signature(frequent).parameters
        )
        self._supports_mutation = hasattr(db, "insert") and hasattr(
            db, "delete"
        )
        approx_defaults = (
            default_mode, default_budget, default_target_recall,
            default_candidate_multiplier,
        )
        if any(value is not None for value in approx_defaults):
            from ..approx import (
                APPROX_UNSUPPORTED_MESSAGE,
                validate_approx_params,
            )

            if not self._supports_approx:
                raise ValidationError(APPROX_UNSUPPORTED_MESSAGE)
            (
                default_mode, default_budget, default_target_recall,
                default_candidate_multiplier,
            ) = validate_approx_params(*approx_defaults)
        self._default_mode = default_mode
        self._default_budget = default_budget
        self._default_target_recall = default_target_recall
        self._default_candidate_multiplier = default_candidate_multiplier
        if default_engine is not None:
            if default_mode == "approx" and default_engine != "auto":
                from ..approx import validate_approx_engine

                validate_approx_engine(default_engine)
            else:
                validate_engine_choice(default_engine)
            if not self._supports_engine:
                raise ValidationError(
                    "default_engine was given but this database does not "
                    "support per-query engine selection"
                )
        self._default_engine = default_engine
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans = spans
        self._admission = AdmissionController(
            max_inflight=max_inflight,
            deadline_seconds=deadline_ms / 1000.0,
        )
        self._cache = ResultCache(cache_size)
        self._draining = False
        if slow_threshold_seconds is not None and slow_threshold_seconds < 0:
            raise ValidationError(
                "slow_threshold_seconds must be >= 0 or None; "
                f"got {slow_threshold_seconds}"
            )
        self._slow_threshold = slow_threshold_seconds
        if spans is not None and slow_threshold_seconds is not None:
            # Wire the server's slow threshold into the collector's own
            # slow-query log so `traces()`/`slow_traces()` agree with
            # the flight recorder on what "slow" means.
            spans.slow_threshold_seconds = slow_threshold_seconds
        self._flight = FlightRecorder(flight_capacity)
        self._trace_ids = TraceIdGenerator(trace_seed)
        self._trace_lock = threading.Lock()
        self._access_log = access_log
        self._access_lock = threading.Lock()
        if instrument_database:
            if hasattr(db, "set_metrics"):
                db.set_metrics(self._metrics)
            if spans is not None and hasattr(db, "set_spans"):
                db.set_spans(spans)

    # ------------------------------------------------------------------
    @property
    def db(self):
        return self._db

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def spans(self):
        return self._spans

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def flight(self) -> FlightRecorder:
        """The flight recorder (capacity 0 means disabled)."""
        return self._flight

    @property
    def slow_threshold_seconds(self) -> Optional[float]:
        return self._slow_threshold

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new queries; in-flight ones run to completion."""
        self._draining = True

    def close(self) -> None:
        """Release the database's backend resources (idempotent).

        Matters for process-backed sharded databases, whose worker pool
        and shared-memory segments should not outlive the server; other
        databases have no ``close`` and this is a no-op.
        """
        if hasattr(self._db, "close"):
            self._db.close()

    def generation(self) -> int:
        """The facade's mutation counter (static facades pin it at 0)."""
        return int(getattr(self._db, "generation", 0))

    # ------------------------------------------------------------------
    # the one entry point
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """Process one request; returns ``(status, headers, body)``.

        ``headers`` are the incoming request headers (any casing); the
        only one the app reads is ``X-Repro-Trace``.  Omitting them
        keeps the three-argument test/bench call sites working — the
        request simply gets a freshly minted trace context.
        """
        path, _, query_string = path.partition("?")
        context = self._trace_context(headers)
        routed = (
            path in _GET_ENDPOINTS
            or path in _POST_ENDPOINTS
            or path.startswith(_TRACE_PREFIX)
        )
        if routed:
            expected = "POST" if path in _POST_ENDPOINTS else "GET"
            if method != expected:
                return self._finish(
                    path, 0.0, 0.0,
                    self._error(
                        405, "method_not_allowed",
                        f"{path} only accepts {expected}",
                        extra_headers=[("Allow", expected)],
                    ),
                    method=method,
                    context=context,
                )
        started = time.perf_counter()
        if path == "/healthz":
            response = self._handle_health()
        elif path == "/metrics":
            response = self._handle_metrics()
        elif path == "/v1/debug/flight":
            response = self._handle_flight()
        elif path.startswith(_TRACE_PREFIX):
            response = self._handle_trace(
                path[len(_TRACE_PREFIX):], query_string
            )
        elif path in _POST_ENDPOINTS:
            return self._handle_post(path, body, started, method, context)
        else:
            response = self._error(
                404, "not_found",
                f"unknown path {path!r}; endpoints: "
                f"{', '.join(_POST_ENDPOINTS + _GET_ENDPOINTS)}, "
                f"{_TRACE_PREFIX}<trace_id>",
            )
            return self._finish(
                _UNKNOWN_ENDPOINT, time.perf_counter() - started, 0.0,
                response, method=method, context=context,
            )
        return self._finish(
            path, time.perf_counter() - started, 0.0, response,
            method=method, context=context,
        )

    def _trace_context(
        self, headers: Optional[Dict[str, str]]
    ) -> TraceContext:
        """Adopt the client's trace context, or mint the next one."""
        value = None
        if headers:
            for name, header_value in headers.items():
                if name.lower() == TRACE_HEADER.lower():
                    value = header_value
                    break
        context = parse_trace_header(value)
        if context is None:
            with self._trace_lock:
                context = self._trace_ids.mint()
        return context

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------
    def _handle_health(self):
        payload = {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": "draining" if self._draining else "ok",
            "generation": self.generation(),
            "cardinality": int(self._db.cardinality),
            "dimensionality": int(self._db.dimensionality),
            "inflight": self._admission.inflight,
            "cache_entries": len(self._cache),
        }
        status = 503 if self._draining else 200
        return status, [("Content-Type", _JSON)], protocol.canonical_json(
            payload
        )

    def _handle_metrics(self):
        text = render_prometheus(self._metrics)
        return (
            200,
            [("Content-Type", "text/plain; version=0.0.4; charset=utf-8")],
            text.encode("utf-8"),
        )

    def _handle_flight(self):
        """The flight recorder's retained records, oldest first.

        Deterministic: records are ordered by the monotone ``seq``
        assigned under the recorder lock, so concurrent requests that
        raced each other still export in one total order.
        """
        payload = {
            "protocol": protocol.PROTOCOL_VERSION,
            "capacity": self._flight.capacity,
            "recorded": self._flight.recorded,
            "dropped": self._flight.dropped,
            "records": [
                record.to_dict() for record in self._flight.snapshot()
            ],
        }
        return 200, [("Content-Type", _JSON)], protocol.canonical_json(
            payload
        )

    def _handle_trace(self, trace_id: str, query_string: str):
        """One flight record by trace id; ``?format=chrome`` exports it."""
        record = self._flight.find(trace_id.strip().lower())
        if record is None:
            return self._error(
                404, "not_found",
                f"no flight record for trace id {trace_id!r}; the "
                "recorder keeps slow, shed and error requests only "
                f"(capacity {self._flight.capacity})",
            )
        if "format=chrome" in query_string:
            epoch = (
                self._spans.epoch if self._spans is not None else 0.0
            )
            payload = record.chrome_trace(epoch=epoch)
        else:
            payload = {
                "protocol": protocol.PROTOCOL_VERSION,
                "record": record.to_dict(),
            }
        return 200, [("Content-Type", _JSON)], protocol.canonical_json(
            payload
        )

    # ------------------------------------------------------------------
    # POST endpoints
    # ------------------------------------------------------------------
    def _handle_post(
        self,
        path: str,
        body: bytes,
        started: float,
        method: str = "POST",
        context: Optional[TraceContext] = None,
    ):
        # ``detail`` rides along to the access log and flight recorder;
        # a non-None detail is also what marks the request as a query
        # (only those are flight-recorded).
        detail: Dict[str, object] = {}
        if self._draining:
            return self._finish(
                path, time.perf_counter() - started, 0.0,
                self._error(
                    503, "draining", "server is draining; no new queries"
                ),
                method=method, context=context, detail=detail,
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._finish(
                path, time.perf_counter() - started, 0.0,
                self._error(400, "bad_json", f"request body is not JSON: {error}"),
                method=method, context=context, detail=detail,
            )
        try:
            if path == "/v1/query":
                request = protocol.parse_query_request(payload)
            elif path == "/v1/frequent":
                request = protocol.parse_frequent_request(payload)
            elif path == "/v1/insert":
                request = protocol.parse_insert_request(payload)
            elif path == "/v1/delete":
                request = protocol.parse_delete_request(payload)
            else:
                request = protocol.parse_batch_request(payload)
        except ValidationError as error:
            return self._finish(
                path, time.perf_counter() - started, 0.0,
                self._error(400, "validation", str(error)),
                method=method, context=context, detail=detail,
            )

        detail["engine"] = self._engine_label(request)
        deadline = (
            None if request.deadline_ms is None
            else request.deadline_ms / 1000.0
        )
        try:
            ticket = self._admission.admit(deadline)
        except ShedError as error:
            registry = self._metrics
            observe_serve_shed(registry, path, error.reason)
            # An honest Retry-After: the queue wait this request (and
            # its recent peers) actually observed, rounded up — not a
            # hardcoded constant that under-advises loaded servers.
            retry_after = self._admission.retry_after_seconds(
                error.queue_seconds
            )
            return self._finish(
                path, time.perf_counter() - started, error.queue_seconds,
                self._error(
                    429, "shed", str(error),
                    extra_headers=[("Retry-After", str(retry_after))],
                ),
                method=method, context=context, detail=detail,
            )
        serve_inflight_gauge(self._metrics).set(self._admission.inflight)
        root = None
        try:
            spans = self._spans
            if spans is None:
                response = self._answer(path, request, detail)
            else:
                trace_id = (
                    context.trace_id if context is not None else ""
                )
                with spans.span(
                    "serve_handle", endpoint=path, trace_id=trace_id
                ) as root:
                    response = self._answer(path, request, detail)
        finally:
            self._admission.release()
            serve_inflight_gauge(self._metrics).set(self._admission.inflight)
        return self._finish(
            path, time.perf_counter() - started, ticket.queue_seconds,
            response, method=method, context=context, detail=detail,
            root=root,
        )

    def _answer(self, path: str, request, detail: Optional[Dict] = None):
        """Cache lookup -> (maybe) execute -> encode, inside admission."""
        spans = self._spans
        if detail is None:
            detail = {}
        detail["kind"] = {
            "/v1/query": "k_n_match",
            "/v1/frequent": "frequent_k_n_match",
            "/v1/batch": "k_n_match_batch",
            "/v1/insert": "insert",
            "/v1/delete": "delete",
        }[path]
        if path in _MUTATION_ENDPOINTS:
            # Mutations never touch the result cache: the generation
            # bump they cause is itself what invalidates cached answers
            # (every cache key embeds the generation it was computed
            # under).
            return self._mutate(path, request, detail)
        try:
            key = self._cache_key(path, request)
        except ValidationError as error:
            return self._error(400, "validation", str(error))
        if self._cache.enabled:
            if spans is None:
                cached = self._cache.get(key[1])
            else:
                with spans.span("serve_cache", op="get"):
                    cached = self._cache.get(key[1])
            if cached is not None:
                observe_serve_cache(self._metrics, path, "hit")
                if spans is not None:
                    spans.annotate(cache="hit")
                detail["cache"] = "hit"
                headers = [("Content-Type", _JSON), ("X-Repro-Cache", "hit")]
                # Replayed approx answers re-derive the recall header
                # from the cached canonical bytes, so hit and miss
                # responses are indistinguishable header-for-header.
                if (
                    path != "/v1/frequent"
                    and self._approx_kwargs(request).get("mode") == "approx"
                ):
                    recall = self._payload_recall(json.loads(cached))
                    if recall is not None:
                        detail["certified_recall"] = recall
                        headers.append(("X-Repro-Recall", f"{recall:.6f}"))
                return (200, headers, cached)
        generation_before = key[0]
        try:
            payload = self._execute(path, request)
        except ValidationError as error:
            return self._error(400, "validation", str(error))
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            return self._error(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        body = protocol.canonical_json(payload)
        if self._cache.enabled:
            event = "miss"
            # Only cache what is still current: if a writer bumped the
            # generation while we computed, the answer may reflect a
            # mix of states and must not be replayed.
            if self.generation() == generation_before:
                if spans is None:
                    evicted = self._cache.put(key[1], body)
                else:
                    with spans.span("serve_cache", op="put"):
                        evicted = self._cache.put(key[1], body)
            else:
                evicted = 0
            observe_serve_cache(self._metrics, path, event, evicted)
        else:
            event = "bypass"
        if spans is not None:
            spans.annotate(cache=event)
        detail["cache"] = event
        if "mode" in payload:
            detail["mode"] = payload["mode"]
        headers = [("Content-Type", _JSON), ("X-Repro-Cache", event)]
        recall = self._payload_recall(payload)
        if recall is not None:
            detail["certified_recall"] = recall
            headers.append(("X-Repro-Recall", f"{recall:.6f}"))
        return (200, headers, body)

    def _mutate(self, path: str, request, detail: Dict):
        """Execute one mutation and encode its canonical response."""
        if not self._supports_mutation:
            return self._error(
                400, "validation",
                "this database does not support mutations; serve a "
                "DynamicMatchDatabase or an LSM store (--store)",
            )
        db = self._db
        try:
            if path == "/v1/insert":
                pid = db.insert(request.point)
            else:
                pid = request.pid
                db.delete(pid)
        except ValidationError as error:
            return self._error(400, "validation", str(error))
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            return self._error(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        generation = self.generation()
        detail["pid"] = pid
        detail["generation"] = generation
        payload = {
            "protocol": protocol.PROTOCOL_VERSION,
            "kind": detail["kind"],
            "pid": int(pid),
            "generation": generation,
            "cardinality": int(db.cardinality),
        }
        headers = [
            ("Content-Type", _JSON),
            ("X-Repro-Generation", str(generation)),
        ]
        return (200, headers, protocol.canonical_json(payload))

    @staticmethod
    def _payload_recall(payload: Dict) -> Optional[float]:
        """The certificate an approx payload carries (batch: the weakest)."""
        if payload.get("mode") != "approx":
            return None
        if "result" in payload:
            return float(payload["result"]["certified_recall"])
        results = payload.get("results") or []
        if not results:
            return None
        return min(float(entry["certified_recall"]) for entry in results)

    # ------------------------------------------------------------------
    def _approx_kwargs(self, request) -> Dict:
        """The approximate-tier kwargs this request resolves to.

        Request fields win outright; the server defaults apply only
        when the request sets *none* of them (mixing per-request fields
        with half-applied defaults would make ``budget`` vs
        ``target_recall`` exclusivity unpredictable from the client
        side).  Facades without the approx surface reject everything
        but a redundant explicit ``mode="exact"``.
        """
        fields = {
            "mode": request.mode,
            "budget": request.budget,
            "target_recall": request.target_recall,
            "candidate_multiplier": request.candidate_multiplier,
        }
        if all(value is None for value in fields.values()):
            fields = {
                "mode": self._default_mode,
                "budget": self._default_budget,
                "target_recall": self._default_target_recall,
                "candidate_multiplier": self._default_candidate_multiplier,
            }
        fields = {
            name: value for name, value in fields.items() if value is not None
        }
        if fields and not self._supports_approx:
            if fields == {"mode": "exact"}:
                return {}
            from ..approx import APPROX_UNSUPPORTED_MESSAGE

            raise ValidationError(APPROX_UNSUPPORTED_MESSAGE)
        return fields

    def _engine_kwargs(self, request, approx: Optional[Dict] = None) -> Dict:
        engine = request.engine or self._default_engine
        if engine is None:
            return {}
        if not self._supports_engine:
            raise ValidationError(
                "this database does not support per-query engine "
                "selection; drop the 'engine' field"
            )
        if approx and approx.get("mode") == "approx":
            if engine != "auto":
                from ..approx import validate_approx_engine

                validate_approx_engine(engine)
        else:
            validate_engine_choice(engine)
        return {"engine": engine}

    def _engine_label(self, request) -> str:
        # Mutation requests have no engine field: their label is empty.
        if not hasattr(request, "engine"):
            return ""
        return (
            request.engine
            or self._default_engine
            or getattr(self._db, "default_engine", "")
            or ""
        )

    def _resolved_n_range(self, request) -> Tuple:
        if request.n_range is not None:
            return (request.n_range[0], request.n_range[1])
        return (1, int(self._db.dimensionality))

    def _cache_key(self, path: str, request):
        """``(generation, key)`` for this request, fingerprinting the query."""
        generation = self.generation()
        engine = self._engine_label(request)
        if path == "/v1/query":
            spec = self._approx_spec(request, request.n)
            fingerprint = query_fingerprint(request.query)
            kind = "k_n_match"
        elif path == "/v1/frequent":
            spec = (self._resolved_n_range(request), request.keep_answer_sets)
            if request.mode is not None:
                spec = spec + (request.mode,)
            fingerprint = query_fingerprint(request.query)
            kind = "frequent_k_n_match"
        else:
            spec = self._approx_spec(request, request.n)
            fingerprint = query_fingerprint(self._batch_array(request))
            kind = "k_n_match_batch"
        return generation, cache_key(
            generation, engine, kind, request.k, spec, fingerprint
        )

    def _approx_spec(self, request, spec):
        """Fold resolved approx fields into a cache spec.

        Requests with no approx surface keep the pre-approx spec, so
        existing cache keys (and their byte-identity property) are
        untouched.
        """
        approx = self._approx_kwargs(request)
        if not approx:
            return spec
        return (spec, tuple(sorted(approx.items())))

    def _batch_array(self, request) -> np.ndarray:
        if not request.queries:
            return np.empty((0, int(self._db.dimensionality)))
        try:
            return np.asarray(request.queries, dtype=np.float64)
        except ValueError:
            raise ValidationError(
                "queries rows must all have the same length"
            ) from None

    def _execute(self, path: str, request) -> Dict:
        db = self._db
        if path == "/v1/query":
            approx = self._approx_kwargs(request)
            kwargs = self._engine_kwargs(request, approx)
            result = db.k_n_match(
                request.query, request.k, request.n, **kwargs, **approx
            )
            if approx.get("mode") == "approx":
                return {
                    "protocol": protocol.PROTOCOL_VERSION,
                    "kind": "k_n_match",
                    "mode": "approx",
                    "result": protocol.encode_approx_result(result),
                }
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "kind": "k_n_match",
                "result": protocol.encode_match_result(result),
            }
        if path == "/v1/frequent":
            kwargs = self._engine_kwargs(request)
            if request.mode is not None:
                if self._supports_frequent_mode:
                    kwargs["mode"] = request.mode
                elif request.mode != "exact":
                    from ..approx import APPROX_UNSUPPORTED_MESSAGE

                    raise ValidationError(APPROX_UNSUPPORTED_MESSAGE)
            result = db.frequent_k_n_match(
                request.query,
                request.k,
                self._resolved_n_range(request),
                keep_answer_sets=request.keep_answer_sets,
                **kwargs,
            )
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "kind": "frequent_k_n_match",
                "result": protocol.encode_frequent_result(result),
            }
        approx = self._approx_kwargs(request)
        kwargs = self._engine_kwargs(request, approx)
        queries = self._batch_array(request)
        native = getattr(db, "k_n_match_batch", None)
        if native is not None:
            results = native(queries, request.k, request.n, **kwargs, **approx)
        else:
            # Facades without a batch surface (the dynamic database) loop;
            # k/n are validated up front so an empty batch still rejects
            # bad parameters exactly like the batch-native facades.
            k = validation.validate_k(request.k, db.cardinality)
            n = validation.validate_n(request.n, db.dimensionality)
            results = [db.k_n_match(row, k, n, **approx) for row in queries]
        if approx.get("mode") == "approx":
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "kind": "k_n_match_batch",
                "mode": "approx",
                "count": len(results),
                "results": [
                    protocol.encode_approx_result(result)
                    for result in results
                ],
            }
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "kind": "k_n_match_batch",
            "count": len(results),
            "results": [
                protocol.encode_match_result(result) for result in results
            ],
        }

    # ------------------------------------------------------------------
    def _error(
        self,
        status: int,
        error_type: str,
        message: str,
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ):
        body = protocol.canonical_json(
            protocol.error_payload(error_type, message)
        )
        headers = [("Content-Type", _JSON)] + (extra_headers or [])
        return status, headers, body

    def _finish(
        self,
        endpoint: str,
        wall_seconds: float,
        queue_seconds: float,
        response,
        method: str = "POST",
        context: Optional[TraceContext] = None,
        detail: Optional[Dict[str, object]] = None,
        root=None,
    ):
        status, headers, body = response
        observe_serve_request(
            self._metrics, endpoint, status, wall_seconds, queue_seconds
        )
        if endpoint in _POST_ENDPOINTS:
            # Uniform on every query response — cache hits and early
            # 4xx included — so clients can always parse it (0.000
            # means "never queued").
            headers = headers + [
                ("X-Repro-Queue-Ms", f"{queue_seconds * 1000:.3f}")
            ]
        if context is not None:
            headers = headers + [(TRACE_HEADER, context.header_value())]
            # Only query requests carry a non-None detail; GETs and
            # unrouted paths are never flight-recorded.
            if detail is not None:
                reason = self._flight_reason(status, wall_seconds)
                if reason is not None and self._flight.enabled:
                    self._flight.record(
                        trace_id=context.trace_id,
                        reason=reason,
                        method=method,
                        path=endpoint,
                        status=status,
                        queue_ms=queue_seconds * 1000,
                        handle_ms=wall_seconds * 1000,
                        detail=detail,
                        span=root,
                    )
            if self._access_log is not None:
                self._write_access_log(
                    context, method, endpoint, status,
                    queue_seconds, wall_seconds, detail,
                )
        return status, headers, body

    def _flight_reason(
        self, status: int, wall_seconds: float
    ) -> Optional[str]:
        """Why this request deserves a flight record, or ``None``."""
        if status == 429:
            return "shed"
        if status >= 400:
            return "error"
        threshold = self._slow_threshold
        if threshold is not None and wall_seconds >= threshold:
            return "slow"
        return None

    def _write_access_log(
        self,
        context: TraceContext,
        method: str,
        endpoint: str,
        status: int,
        queue_seconds: float,
        wall_seconds: float,
        detail: Optional[Dict[str, object]],
    ) -> None:
        entry: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "trace_id": context.trace_id,
            "method": method,
            "path": endpoint,
            "status": status,
            "queue_ms": round(queue_seconds * 1000, 3),
            "handle_ms": round(wall_seconds * 1000, 3),
        }
        for name in (
            "engine", "kind", "mode", "cache", "certified_recall",
            "pid", "generation",
        ):
            if detail and name in detail:
                entry[name] = detail[name]
        line = protocol.canonical_json(entry).decode("utf-8")
        with self._access_lock:
            self._access_log.write(line + "\n")
            flush = getattr(self._access_log, "flush", None)
            if flush is not None:
                flush()


# ----------------------------------------------------------------------
# the HTTP shell
# ----------------------------------------------------------------------
class _ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET", b"")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        self._dispatch("POST", body)

    def _dispatch(self, method: str, body: bytes) -> None:
        status, headers, payload = self.server.app.handle(
            method, self.path, body, dict(self.headers.items())
        )
        self.send_response(status)
        for name, value in headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # request logging is the metrics registry's job


class MatchServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`ServeApp`.

    ``start()``/``stop()`` run it on a background thread (usable as a
    context manager); ``run()`` serves on the calling thread until
    SIGTERM/SIGINT, then drains gracefully: stop admitting, wait for
    in-flight requests, close the socket.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _ServeHandler)
        self.app = app
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        return self.server_address[1]

    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.1) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def start(self) -> "MatchServer":
        """Serve on a daemon thread; returns immediately."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self, drain_seconds: float = 5.0) -> None:
        """Graceful drain: reject new queries, wait, then shut down."""
        self.app.begin_drain()
        self.app.admission.wait_idle(drain_seconds)
        if self._serving:
            self.shutdown()
        self._close()
        if self._thread is not None:
            self._thread.join(timeout=drain_seconds)
            self._thread = None

    def run(self, drain_seconds: float = 5.0) -> None:
        """Serve on this thread until SIGTERM/SIGINT (the CLI path)."""
        previous = {}

        def _on_signal(signum, frame) -> None:
            # stop() must run off the serving thread: shutdown() blocks
            # until serve_forever returns.
            threading.Thread(
                target=self.stop,
                kwargs={"drain_seconds": drain_seconds},
                daemon=True,
            ).start()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _on_signal)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        try:
            self.serve_forever()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._close()

    def _close(self) -> None:
        if not self._closed:
            self._closed = True
            self.server_close()
            self.app.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "MatchServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
