"""The serve wire protocol: versioned JSON requests and responses.

Everything the HTTP layer reads or writes is defined here, so the
protocol can be tested without a socket and the client/server can never
drift apart.  Five request shapes (one per POST endpoint)::

    POST /v1/query     {"query": [..], "k": 5, "n": 8}
    POST /v1/frequent  {"query": [..], "k": 5, "n_range": [4, 12]}
    POST /v1/batch     {"queries": [[..], ..], "k": 5, "n": 8}
    POST /v1/insert    {"point": [..]}
    POST /v1/delete    {"pid": 17}

The two mutation endpoints require a mutable facade
(:class:`~repro.core.dynamic.DynamicMatchDatabase` or
:class:`~repro.lsm.LsmMatchDatabase`); their responses carry the new
mutation generation both in the body and in the ``X-Repro-Generation``
header, which is what invalidates every result-cache entry keyed under
the previous generation.

All three accept optional ``"engine"`` (a registry engine name or
``"auto"`` for the cost-based planner, only for facades that support
per-query engine selection), ``"deadline_ms"``
(per-request admission budget, overriding the server default) and
``"protocol"`` (must equal :data:`PROTOCOL_VERSION` when present).  The
frequent endpoint additionally accepts ``"keep_answer_sets"``.

``/v1/query`` and ``/v1/batch`` also accept the approximate-tier
fields ``"mode"`` (``"exact"`` or ``"approx"``), ``"budget"``,
``"target_recall"`` and ``"candidate_multiplier"`` — forwarded to the
facade, whose canonical :mod:`repro.approx` validation messages come
back verbatim as 400s.  ``/v1/frequent`` accepts ``"mode"`` only so
that ``mode="approx"`` is rejected with the same message a direct call
raises.  Approximate responses carry the certificate fields of
:class:`~repro.approx.ApproxResult` and the server adds an
``X-Repro-Recall`` header.

Responses are **canonically encoded** — ``sort_keys=True``, compact
separators, floats via Python ``repr`` (shortest round-trip, so decoded
differences are bit-identical to the engine's float64 output).  The
result cache stores the canonical bytes, which makes "a cache hit is
byte-identical to a cold query" trivially auditable.

Errors map to structured bodies::

    {"protocol": 1, "error": {"type": "validation", "message": "..."}}

with the *message* taken verbatim from the library's canonical
:mod:`repro.core.validation` errors, so a bad ``k`` rejected over HTTP
reads exactly like the same bad ``k`` rejected by a direct facade call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.types import FrequentMatchResult, MatchResult, SearchStats
from ..errors import ValidationError

__all__ = [
    "PROTOCOL_VERSION",
    "QueryRequest",
    "FrequentRequest",
    "BatchRequest",
    "InsertRequest",
    "DeleteRequest",
    "parse_query_request",
    "parse_frequent_request",
    "parse_batch_request",
    "parse_insert_request",
    "parse_delete_request",
    "encode_stats",
    "encode_match_result",
    "encode_approx_result",
    "encode_frequent_result",
    "decode_match_result",
    "decode_approx_result",
    "decode_frequent_result",
    "canonical_json",
    "error_payload",
]

#: Bump when a request or response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: ``SearchStats`` integer fields, in dataclass order; the stats wire
#: encoding is exactly this mapping.
_STATS_FIELDS = (
    "attributes_retrieved",
    "total_attributes",
    "heap_pops",
    "binary_search_probes",
    "sequential_page_reads",
    "random_page_reads",
    "candidates_refined",
    "approximation_entries_scanned",
    "inverted_list_entries",
    "points_scanned",
)


@dataclass(frozen=True)
class QueryRequest:
    """A parsed ``POST /v1/query`` body."""

    query: List[float]
    k: object
    n: object
    engine: Optional[str] = None
    deadline_ms: Optional[float] = None
    mode: Optional[str] = None
    budget: Optional[int] = None
    target_recall: Optional[float] = None
    candidate_multiplier: Optional[int] = None


@dataclass(frozen=True)
class FrequentRequest:
    """A parsed ``POST /v1/frequent`` body."""

    query: List[float]
    k: object
    n_range: Optional[Tuple[object, object]] = None
    engine: Optional[str] = None
    keep_answer_sets: bool = False
    deadline_ms: Optional[float] = None
    mode: Optional[str] = None


@dataclass(frozen=True)
class InsertRequest:
    """A parsed ``POST /v1/insert`` body."""

    point: List[float]
    deadline_ms: Optional[float] = None


@dataclass(frozen=True)
class DeleteRequest:
    """A parsed ``POST /v1/delete`` body."""

    pid: int
    deadline_ms: Optional[float] = None


@dataclass(frozen=True)
class BatchRequest:
    """A parsed ``POST /v1/batch`` body."""

    queries: List[List[float]]
    k: object
    n: object
    engine: Optional[str] = None
    deadline_ms: Optional[float] = None
    mode: Optional[str] = None
    budget: Optional[int] = None
    target_recall: Optional[float] = None
    candidate_multiplier: Optional[int] = None


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
def _check_shape(payload: Dict, required, optional) -> None:
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request body must be a JSON object; got {type(payload).__name__}"
        )
    version = payload.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ValidationError(
            f"unsupported protocol version {version!r}; "
            f"this server speaks version {PROTOCOL_VERSION}"
        )
    for name in required:
        if name not in payload:
            raise ValidationError(f"missing required field {name!r}")
    allowed = set(required) | set(optional) | {"protocol"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown field {unknown[0]!r}; "
            f"expected {sorted(allowed)}"
        )


def _as_vector(value, name: str) -> List[float]:
    if not isinstance(value, list):
        raise ValidationError(
            f"{name} must be a JSON array of numbers; "
            f"got {type(value).__name__}"
        )
    for index, item in enumerate(value):
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ValidationError(
                f"{name}[{index}] must be a number; got {item!r}"
            )
    return [float(item) for item in value]


def _as_engine(value) -> Optional[str]:
    if value is None:
        return None
    if not isinstance(value, str):
        raise ValidationError(
            f"engine must be a string engine name; got {value!r}"
        )
    return value


def _approx_fields(payload: Dict) -> Dict:
    """JSON-level validation of the approximate-tier fields.

    Each present field runs through the canonical :mod:`repro.approx`
    validator so HTTP rejections read exactly like direct-call ones;
    *cross*-field rules (mutual exclusivity, extras requiring
    ``mode="approx"``) stay with the facade for the same reason.
    """
    from ..approx import (
        validate_budget,
        validate_candidate_multiplier,
        validate_mode,
        validate_target_recall,
    )

    mode = payload.get("mode")
    if mode is not None:
        validate_mode(mode)
    return {
        "mode": mode,
        "budget": validate_budget(payload.get("budget")),
        "target_recall": validate_target_recall(payload.get("target_recall")),
        "candidate_multiplier": validate_candidate_multiplier(
            payload.get("candidate_multiplier")
        ),
    }


def _as_deadline(value) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"deadline_ms must be a positive number; got {value!r}"
        )
    if value <= 0:
        raise ValidationError(
            f"deadline_ms must be a positive number; got {value!r}"
        )
    return float(value)


def parse_query_request(payload: Dict) -> QueryRequest:
    """Validate the JSON-level shape of a ``/v1/query`` body.

    Numeric *range* validation (``1 <= k <= c``...) is deliberately left
    to the database facade, so its canonical messages flow back
    unchanged.
    """
    _check_shape(
        payload,
        ("query", "k", "n"),
        (
            "engine", "deadline_ms", "mode", "budget", "target_recall",
            "candidate_multiplier",
        ),
    )
    return QueryRequest(
        query=_as_vector(payload["query"], "query"),
        k=payload["k"],
        n=payload["n"],
        engine=_as_engine(payload.get("engine")),
        deadline_ms=_as_deadline(payload.get("deadline_ms")),
        **_approx_fields(payload),
    )


def parse_frequent_request(payload: Dict) -> FrequentRequest:
    """Validate the JSON-level shape of a ``/v1/frequent`` body."""
    _check_shape(
        payload,
        ("query", "k"),
        ("n_range", "engine", "keep_answer_sets", "deadline_ms", "mode"),
    )
    n_range = payload.get("n_range")
    if n_range is not None:
        if not isinstance(n_range, list) or len(n_range) != 2:
            raise ValidationError(
                f"n_range must be a two-element array [n0, n1]; "
                f"got {n_range!r}"
            )
        n_range = (n_range[0], n_range[1])
    keep = payload.get("keep_answer_sets", False)
    if not isinstance(keep, bool):
        raise ValidationError(
            f"keep_answer_sets must be a boolean; got {keep!r}"
        )
    mode = payload.get("mode")
    if mode is not None:
        from ..approx import validate_mode

        validate_mode(mode)
    return FrequentRequest(
        query=_as_vector(payload["query"], "query"),
        k=payload["k"],
        n_range=n_range,
        engine=_as_engine(payload.get("engine")),
        keep_answer_sets=keep,
        deadline_ms=_as_deadline(payload.get("deadline_ms")),
        mode=mode,
    )


def parse_batch_request(payload: Dict) -> BatchRequest:
    """Validate the JSON-level shape of a ``/v1/batch`` body."""
    _check_shape(
        payload,
        ("queries", "k", "n"),
        (
            "engine", "deadline_ms", "mode", "budget", "target_recall",
            "candidate_multiplier",
        ),
    )
    queries = payload["queries"]
    if not isinstance(queries, list):
        raise ValidationError(
            f"queries must be a JSON array of query rows; "
            f"got {type(queries).__name__}"
        )
    rows = [_as_vector(row, f"queries[{index}]") for index, row in enumerate(queries)]
    return BatchRequest(
        queries=rows,
        k=payload["k"],
        n=payload["n"],
        engine=_as_engine(payload.get("engine")),
        deadline_ms=_as_deadline(payload.get("deadline_ms")),
        **_approx_fields(payload),
    )


def parse_insert_request(payload: Dict) -> InsertRequest:
    """Validate the JSON-level shape of a ``/v1/insert`` body.

    Dimensionality validation stays with the mutable facade, so its
    canonical message comes back unchanged.
    """
    _check_shape(payload, ("point",), ("deadline_ms",))
    return InsertRequest(
        point=_as_vector(payload["point"], "point"),
        deadline_ms=_as_deadline(payload.get("deadline_ms")),
    )


def parse_delete_request(payload: Dict) -> DeleteRequest:
    """Validate the JSON-level shape of a ``/v1/delete`` body."""
    _check_shape(payload, ("pid",), ("deadline_ms",))
    pid = payload["pid"]
    if isinstance(pid, bool) or not isinstance(pid, int):
        raise ValidationError(f"pid must be an integer; got {pid!r}")
    return DeleteRequest(
        pid=pid,
        deadline_ms=_as_deadline(payload.get("deadline_ms")),
    )


# ----------------------------------------------------------------------
# result encoding / decoding
# ----------------------------------------------------------------------
def encode_stats(stats: SearchStats) -> Dict:
    """``SearchStats`` as a plain dict of its integer counters."""
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def decode_stats(payload: Dict) -> SearchStats:
    return SearchStats(**{name: payload[name] for name in _STATS_FIELDS})


def encode_match_result(result: MatchResult) -> Dict:
    return {
        "ids": list(result.ids),
        "differences": [float(d) for d in result.differences],
        "k": result.k,
        "n": result.n,
        "stats": encode_stats(result.stats),
    }


def decode_match_result(payload: Dict) -> MatchResult:
    return MatchResult(
        ids=list(payload["ids"]),
        differences=list(payload["differences"]),
        k=payload["k"],
        n=payload["n"],
        stats=decode_stats(payload["stats"]),
    )


def encode_approx_result(result) -> Dict:
    """An :class:`~repro.approx.ApproxResult` as a wire dict.

    A strict superset of :func:`encode_match_result`, so clients that
    only know the exact shape still find ``ids``/``differences`` where
    they expect them.
    """
    bound = result.unseen_lower_bound
    return {
        "ids": list(result.ids),
        "differences": [float(d) for d in result.differences],
        "k": result.k,
        "n": result.n,
        "engine": result.engine,
        "certified_recall": float(result.certified_recall),
        "certified_count": int(result.certified_count),
        "unseen_lower_bound": None if bound is None else float(bound),
        "exact": bool(result.exact),
        "budget": result.budget,
        "stats": encode_stats(result.stats),
    }


def decode_approx_result(payload: Dict):
    from ..approx import ApproxResult

    return ApproxResult(
        ids=list(payload["ids"]),
        differences=list(payload["differences"]),
        k=payload["k"],
        n=payload["n"],
        engine=payload["engine"],
        certified_recall=payload["certified_recall"],
        certified_count=payload["certified_count"],
        unseen_lower_bound=payload["unseen_lower_bound"],
        exact=payload["exact"],
        budget=payload["budget"],
        stats=decode_stats(payload["stats"]),
    )


def encode_frequent_result(result: FrequentMatchResult) -> Dict:
    answer_sets = None
    if result.answer_sets is not None:
        # JSON object keys are strings; n is recovered on decode.
        answer_sets = {
            str(n): list(ids) for n, ids in result.answer_sets.items()
        }
    return {
        "ids": list(result.ids),
        "frequencies": list(result.frequencies),
        "k": result.k,
        "n_range": [result.n_range[0], result.n_range[1]],
        "answer_sets": answer_sets,
        "stats": encode_stats(result.stats),
    }


def decode_frequent_result(payload: Dict) -> FrequentMatchResult:
    answer_sets = payload.get("answer_sets")
    if answer_sets is not None:
        answer_sets = {
            int(n): list(ids) for n, ids in answer_sets.items()
        }
    return FrequentMatchResult(
        ids=list(payload["ids"]),
        frequencies=list(payload["frequencies"]),
        k=payload["k"],
        n_range=(payload["n_range"][0], payload["n_range"][1]),
        answer_sets=answer_sets,
        stats=decode_stats(payload["stats"]),
    )


# ----------------------------------------------------------------------
# canonical bytes and errors
# ----------------------------------------------------------------------
def canonical_json(payload: Dict) -> bytes:
    """The one byte encoding of a response body.

    Deterministic (sorted keys, compact separators) so that equal
    payloads are equal bytes — the property the result cache's
    byte-identity guarantee rests on.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def error_payload(error_type: str, message: str) -> Dict:
    """The structured body sent with every non-2xx response."""
    return {
        "protocol": PROTOCOL_VERSION,
        "error": {"type": error_type, "message": message},
    }
