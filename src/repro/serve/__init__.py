"""repro.serve — an HTTP query-serving subsystem (stdlib only).

Fronts any database facade (:class:`~repro.core.engine.MatchDatabase`,
:class:`~repro.shard.ShardedMatchDatabase`,
:class:`~repro.core.dynamic.DynamicMatchDatabase`) with a versioned
JSON protocol, admission control (bounded in-flight slots with
deadline-aware 429 shedding) and a generation-keyed LRU result cache
whose hits are byte-identical to cold queries.

Layers (each independently testable):

* :mod:`~repro.serve.protocol` — request/response shapes, canonical
  JSON encoding, structured errors;
* :mod:`~repro.serve.admission` — :class:`AdmissionController`,
  :class:`ShedError`, queue-wait :class:`Ticket`;
* :mod:`~repro.serve.cache` — :class:`ResultCache`,
  :func:`cache_key`, :func:`query_fingerprint`;
* :mod:`~repro.serve.server` — the socket-free :class:`ServeApp`
  request lifecycle and the :class:`MatchServer` HTTP shell;
* :mod:`~repro.serve.client` — :class:`ServeClient`, a facade-shaped
  remote client, and :class:`ServeError`.

See ``docs/serving.md`` for the endpoint reference, protocol examples
and operational guidance; ``repro serve`` runs a server from the CLI.
"""

from .admission import AdmissionController, ShedError, Ticket
from .cache import ResultCache, cache_key, query_fingerprint
from .client import ServeClient, ServeError
from .protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    FrequentRequest,
    QueryRequest,
    canonical_json,
    decode_approx_result,
    decode_frequent_result,
    decode_match_result,
    encode_approx_result,
    encode_frequent_result,
    encode_match_result,
    error_payload,
    parse_batch_request,
    parse_frequent_request,
    parse_query_request,
)
from .server import MatchServer, ServeApp

__all__ = [
    "PROTOCOL_VERSION",
    "ServeApp",
    "MatchServer",
    "ServeClient",
    "ServeError",
    "AdmissionController",
    "ShedError",
    "Ticket",
    "ResultCache",
    "cache_key",
    "query_fingerprint",
    "QueryRequest",
    "FrequentRequest",
    "BatchRequest",
    "parse_query_request",
    "parse_frequent_request",
    "parse_batch_request",
    "encode_match_result",
    "encode_frequent_result",
    "encode_approx_result",
    "decode_match_result",
    "decode_frequent_result",
    "decode_approx_result",
    "canonical_json",
    "error_payload",
]
