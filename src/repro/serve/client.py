"""ServeClient: a stdlib (urllib) client for the repro serve protocol.

The client mirrors the facade surface — :meth:`ServeClient.query` /
:meth:`~ServeClient.frequent` / :meth:`~ServeClient.batch` return real
:class:`~repro.core.types.MatchResult` / :class:`~repro.core.types.
FrequentMatchResult` objects decoded from the wire, so code written
against a local :class:`~repro.core.engine.MatchDatabase` ports to a
remote server by swapping the object.  Differences survive the
round-trip bit-identically (the server encodes floats via ``repr``,
the shortest exact round-trip).

Server-side rejections raise :class:`ServeError` carrying the HTTP
status and the structured error body (``type`` + ``message``), so a bad
``k`` rejected remotely reads exactly like the local
:class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import FrequentMatchResult, MatchResult
from ..errors import ReproError
from . import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """A non-2xx response from the server, decoded from the error body."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        self.status = status
        self.error_type = error_type
        super().__init__(message)


class ServeClient:
    """Talk the serve protocol to one server.

    >>> client = ServeClient("127.0.0.1", 8080)   # doctest: +SKIP
    >>> client.query([1.0, 2.0], k=3, n=2).ids    # doctest: +SKIP
    """

    def __init__(
        self, host: str, port: int, timeout_seconds: float = 30.0
    ) -> None:
        self._base = f"http://{host}:{port}"
        self.timeout_seconds = timeout_seconds

    # ------------------------------------------------------------------
    # raw transport
    # ------------------------------------------------------------------
    def post_raw(
        self, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """POST raw bytes; returns ``(status, headers, body)`` verbatim.

        Unlike the typed methods this never raises on 4xx/5xx — tests
        use it to assert exact wire bytes and headers.
        """
        request = urllib.request.Request(
            self._base + path,
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        return self._send(request)

    def get_raw(self, path: str) -> Tuple[int, Dict[str, str], bytes]:
        """GET; returns ``(status, headers, body)`` without raising."""
        request = urllib.request.Request(self._base + path, method="GET")
        return self._send(request)

    def _send(self, request) -> Tuple[int, Dict[str, str], bytes]:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                return (
                    response.status,
                    dict(response.headers.items()),
                    response.read(),
                )
        except urllib.error.HTTPError as error:
            with error:
                return error.code, dict(error.headers.items()), error.read()

    # ------------------------------------------------------------------
    def _post_json(self, path: str, payload: Dict) -> Dict:
        status, _, body = self.post_raw(
            path, protocol.canonical_json(payload)
        )
        decoded = json.loads(body.decode("utf-8"))
        if status != 200:
            error = decoded.get("error", {})
            raise ServeError(
                status,
                error.get("type", "unknown"),
                error.get("message", f"server returned HTTP {status}"),
            )
        return decoded

    @staticmethod
    def _request_payload(**fields) -> Dict:
        payload = {"protocol": protocol.PROTOCOL_VERSION}
        payload.update(
            {name: value for name, value in fields.items() if value is not None}
        )
        return payload

    # ------------------------------------------------------------------
    # the facade-shaped surface
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[float],
        k: int,
        n: int,
        engine: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> MatchResult:
        """One k-n-match against the remote database."""
        decoded = self._post_json(
            "/v1/query",
            self._request_payload(
                query=[float(value) for value in query],
                k=k,
                n=n,
                engine=engine,
                deadline_ms=deadline_ms,
            ),
        )
        return protocol.decode_match_result(decoded["result"])

    def frequent(
        self,
        query: Sequence[float],
        k: int,
        n_range: Optional[Tuple[int, int]] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> FrequentMatchResult:
        """One frequent k-n-match against the remote database."""
        decoded = self._post_json(
            "/v1/frequent",
            self._request_payload(
                query=[float(value) for value in query],
                k=k,
                n_range=None if n_range is None else list(n_range),
                engine=engine,
                keep_answer_sets=keep_answer_sets or None,
                deadline_ms=deadline_ms,
            ),
        )
        return protocol.decode_frequent_result(decoded["result"])

    def batch(
        self,
        queries: Sequence[Sequence[float]],
        k: int,
        n: int,
        engine: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[MatchResult]:
        """A batch of k-n-matches against the remote database."""
        decoded = self._post_json(
            "/v1/batch",
            self._request_payload(
                queries=[
                    [float(value) for value in row] for row in queries
                ],
                k=k,
                n=n,
                engine=engine,
                deadline_ms=deadline_ms,
            ),
        )
        return [
            protocol.decode_match_result(result)
            for result in decoded["results"]
        ]

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """The decoded ``/healthz`` body (any status)."""
        _, _, body = self.get_raw("/healthz")
        return json.loads(body.decode("utf-8"))

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, _, body = self.get_raw("/metrics")
        if status != 200:
            raise ServeError(status, "metrics", f"GET /metrics -> {status}")
        return body.decode("utf-8")
