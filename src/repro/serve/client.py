"""ServeClient: a stdlib (urllib) client for the repro serve protocol.

The client mirrors the facade surface — :meth:`ServeClient.query` /
:meth:`~ServeClient.frequent` / :meth:`~ServeClient.batch` return real
:class:`~repro.core.types.MatchResult` / :class:`~repro.core.types.
FrequentMatchResult` objects decoded from the wire, so code written
against a local :class:`~repro.core.engine.MatchDatabase` ports to a
remote server by swapping the object.  Differences survive the
round-trip bit-identically (the server encodes floats via ``repr``,
the shortest exact round-trip).

Server-side rejections raise :class:`ServeError` carrying the HTTP
status and the structured error body (``type`` + ``message``), so a bad
``k`` rejected remotely reads exactly like the local
:class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.types import FrequentMatchResult, MatchResult
from ..errors import ReproError
from ..obs import TRACE_HEADER, TraceContext, parse_trace_header
from . import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """A non-2xx response from the server, decoded from the error body."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        self.status = status
        self.error_type = error_type
        super().__init__(message)


class ServeClient:
    """Talk the serve protocol to one server.

    >>> client = ServeClient("127.0.0.1", 8080)   # doctest: +SKIP
    >>> client.query([1.0, 2.0], k=3, n=2).ids    # doctest: +SKIP
    """

    def __init__(
        self, host: str, port: int, timeout_seconds: float = 30.0
    ) -> None:
        self._base = f"http://{host}:{port}"
        self.timeout_seconds = timeout_seconds
        #: The trace context the *last* response carried (parsed from
        #: its ``X-Repro-Trace`` header), or ``None``.  This is how a
        #: caller of the typed methods learns the server-minted id for
        #: a later ``debug_trace`` lookup.
        self.last_trace: Optional[TraceContext] = None
        #: The mutation generation the last ``insert``/``delete``
        #: response carried (the ``X-Repro-Generation`` header), or
        #: ``None`` before the first mutation.
        self.last_generation: Optional[int] = None

    # ------------------------------------------------------------------
    # raw transport
    # ------------------------------------------------------------------
    def post_raw(
        self, path: str, body: bytes, trace: Optional[object] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """POST raw bytes; returns ``(status, headers, body)`` verbatim.

        Unlike the typed methods this never raises on 4xx/5xx — tests
        use it to assert exact wire bytes and headers.  ``trace`` (a
        :class:`TraceContext` or a pre-formatted header string)
        propagates the caller's trace context to the server.
        """
        headers = {"Content-Type": "application/json"}
        if trace is not None:
            headers[TRACE_HEADER] = (
                trace.header_value()
                if isinstance(trace, TraceContext)
                else str(trace)
            )
        request = urllib.request.Request(
            self._base + path, data=body, method="POST", headers=headers
        )
        return self._send(request)

    def get_raw(self, path: str) -> Tuple[int, Dict[str, str], bytes]:
        """GET; returns ``(status, headers, body)`` without raising."""
        request = urllib.request.Request(self._base + path, method="GET")
        return self._send(request)

    def _send(self, request) -> Tuple[int, Dict[str, str], bytes]:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                headers = dict(response.headers.items())
                self._record_trace(headers)
                return response.status, headers, response.read()
        except urllib.error.HTTPError as error:
            with error:
                headers = dict(error.headers.items())
                self._record_trace(headers)
                return error.code, headers, error.read()

    def _record_trace(self, headers: Dict[str, str]) -> None:
        for name, value in headers.items():
            if name.lower() == TRACE_HEADER.lower():
                self.last_trace = parse_trace_header(value)
                return

    # ------------------------------------------------------------------
    def _post_json(
        self, path: str, payload: Dict, trace: Optional[object] = None
    ) -> Dict:
        status, _, body = self.post_raw(
            path, protocol.canonical_json(payload), trace=trace
        )
        decoded = json.loads(body.decode("utf-8"))
        if status != 200:
            error = decoded.get("error", {})
            raise ServeError(
                status,
                error.get("type", "unknown"),
                error.get("message", f"server returned HTTP {status}"),
            )
        return decoded

    @staticmethod
    def _request_payload(**fields) -> Dict:
        payload = {"protocol": protocol.PROTOCOL_VERSION}
        payload.update(
            {name: value for name, value in fields.items() if value is not None}
        )
        return payload

    # ------------------------------------------------------------------
    # the facade-shaped surface
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[float],
        k: int,
        n: int,
        engine: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> MatchResult:
        """One k-n-match against the remote database."""
        decoded = self._post_json(
            "/v1/query",
            self._request_payload(
                query=[float(value) for value in query],
                k=k,
                n=n,
                engine=engine,
                deadline_ms=deadline_ms,
            ),
            trace=trace,
        )
        return protocol.decode_match_result(decoded["result"])

    def frequent(
        self,
        query: Sequence[float],
        k: int,
        n_range: Optional[Tuple[int, int]] = None,
        engine: Optional[str] = None,
        keep_answer_sets: bool = False,
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> FrequentMatchResult:
        """One frequent k-n-match against the remote database."""
        decoded = self._post_json(
            "/v1/frequent",
            self._request_payload(
                query=[float(value) for value in query],
                k=k,
                n_range=None if n_range is None else list(n_range),
                engine=engine,
                keep_answer_sets=keep_answer_sets or None,
                deadline_ms=deadline_ms,
            ),
            trace=trace,
        )
        return protocol.decode_frequent_result(decoded["result"])

    def batch(
        self,
        queries: Sequence[Sequence[float]],
        k: int,
        n: int,
        engine: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> List[MatchResult]:
        """A batch of k-n-matches against the remote database."""
        decoded = self._post_json(
            "/v1/batch",
            self._request_payload(
                queries=[
                    [float(value) for value in row] for row in queries
                ],
                k=k,
                n=n,
                engine=engine,
                deadline_ms=deadline_ms,
            ),
            trace=trace,
        )
        return [
            protocol.decode_match_result(result)
            for result in decoded["results"]
        ]

    # ------------------------------------------------------------------
    # mutations (servers fronting a mutable facade)
    # ------------------------------------------------------------------
    def insert(
        self,
        point: Sequence[float],
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> int:
        """Insert one point; returns its stable id.

        The response's generation lands in :attr:`last_generation`, so
        callers can correlate their mutation with subsequent cache
        behaviour.
        """
        status, headers, body = self.post_raw(
            "/v1/insert",
            protocol.canonical_json(
                self._request_payload(
                    point=[float(value) for value in point],
                    deadline_ms=deadline_ms,
                )
            ),
            trace=trace,
        )
        decoded = self._decode_or_raise(status, body)
        self._record_generation(headers)
        return int(decoded["pid"])

    def delete(
        self,
        pid: int,
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> None:
        """Delete one live point by id."""
        status, headers, body = self.post_raw(
            "/v1/delete",
            protocol.canonical_json(
                self._request_payload(pid=pid, deadline_ms=deadline_ms)
            ),
            trace=trace,
        )
        self._decode_or_raise(status, body)
        self._record_generation(headers)

    def _decode_or_raise(self, status: int, body: bytes) -> Dict:
        decoded = json.loads(body.decode("utf-8"))
        if status != 200:
            error = decoded.get("error", {})
            raise ServeError(
                status,
                error.get("type", "unknown"),
                error.get("message", f"server returned HTTP {status}"),
            )
        return decoded

    def _record_generation(self, headers: Dict[str, str]) -> None:
        for name, value in headers.items():
            if name.lower() == "x-repro-generation":
                self.last_generation = int(value)
                return

    # ------------------------------------------------------------------
    def debug_flight(self) -> Dict:
        """The decoded ``/v1/debug/flight`` body (raises on non-200)."""
        status, _, body = self.get_raw("/v1/debug/flight")
        decoded = json.loads(body.decode("utf-8"))
        if status != 200:
            error = decoded.get("error", {})
            raise ServeError(
                status,
                error.get("type", "unknown"),
                error.get("message", f"GET /v1/debug/flight -> {status}"),
            )
        return decoded

    def debug_trace(self, trace_id: str, chrome: bool = False) -> Dict:
        """One flight record by trace id (``chrome=True`` for trace JSON)."""
        path = f"/v1/debug/trace/{trace_id}"
        if chrome:
            path += "?format=chrome"
        status, _, body = self.get_raw(path)
        decoded = json.loads(body.decode("utf-8"))
        if status != 200:
            error = decoded.get("error", {})
            raise ServeError(
                status,
                error.get("type", "unknown"),
                error.get("message", f"GET {path} -> {status}"),
            )
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """The decoded ``/healthz`` body (any status)."""
        _, _, body = self.get_raw("/healthz")
        return json.loads(body.decode("utf-8"))

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, _, body = self.get_raw("/metrics")
        if status != 200:
            raise ServeError(status, "metrics", f"GET /metrics -> {status}")
        return body.decode("utf-8")
