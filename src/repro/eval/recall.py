"""Recall against kNN ground truth.

Sec. 6 contrasts evaluation philosophies: DPF's accuracy "is measured by
recall of the actual kNN, that is, how many actual kNNs are included in
their answers" — the techniques there *approximate* kNN — whereas
k-n-match answers a different, exact query.  This module makes that
contrast measurable: :func:`knn_recall` computes, for any searcher, the
fraction of the true k nearest neighbours its answers contain.  A high
class-stripping accuracy with a modest kNN recall is precisely the
paper's point — matching finds *similar* objects that distance ranking
does not.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from ..baselines.knn import KnnEngine
from ..errors import ValidationError
from .class_stripping import Searcher

__all__ = ["RecallReport", "knn_recall"]


@dataclass
class RecallReport:
    """Mean kNN recall of one technique over a query sample."""

    technique: str
    queries: int
    k: int
    mean_recall: float

    def __str__(self) -> str:
        return (
            f"{self.technique}: recall of exact {self.k}-NN = "
            f"{self.mean_recall:.1%} over {self.queries} queries"
        )


def knn_recall(
    data: np.ndarray,
    searcher: Searcher,
    technique: str,
    queries: int = 50,
    k: int = 10,
    seed: int = 0,
    p: float = 2.0,
) -> RecallReport:
    """Mean overlap between ``searcher``'s answers and the exact kNN.

    Queries are sampled from the data (the paper's protocol).  Recall of
    1.0 means the searcher *is* a kNN search on this workload; lower
    values mean it ranks by a genuinely different notion of similarity.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValidationError("data must be a non-empty 2-D array")
    if queries < 1 or k < 1:
        raise ValidationError("queries and k must be >= 1")
    if k > data.shape[0]:
        raise ValidationError(
            f"k={k} exceeds the cardinality {data.shape[0]}"
        )
    rng = np.random.default_rng(seed)
    picks = rng.choice(
        data.shape[0], size=min(queries, data.shape[0]), replace=False
    )
    knn = KnnEngine(data, p=p)
    recalls = []
    for index in picks:
        query = data[index]
        truth = set(knn.top_k(query, k).ids)
        answer = set(searcher(query, k))
        if len(answer) != k:
            raise ValidationError(
                f"searcher {technique!r} returned {len(answer)} distinct "
                f"answers, expected {k}"
            )
        recalls.append(len(truth & answer) / k)
    return RecallReport(
        technique=technique,
        queries=len(picks),
        k=k,
        mean_recall=float(np.mean(recalls)),
    )
