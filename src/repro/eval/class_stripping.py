"""Class-stripping effectiveness evaluation (Sec. 5.1.2).

The paper's protocol, verbatim: "we strip this class tag from each point
and use different techniques to find the similar objects to the query
objects.  If the answer and the query belong to the same class, then the
answer is correct. ... We run 100 queries which are sampled randomly
from the data sets, k set as 20.  We count the number of the answers
with correct classification and divide it by 2000 to obtain the accuracy
rates."

A *searcher* is any callable ``(query_vector, k) -> sequence of ids``;
factories below adapt every technique in the library to that shape so
Table 4 and Figs. 8-9 can sweep them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..baselines.dpf import DPFEngine
from ..baselines.knn import KnnEngine
from ..core.ad_block import BlockADEngine
from ..errors import ValidationError
from ..data.uci import ClassDataset
from ..igrid import IGridEngine

__all__ = [
    "AccuracyReport",
    "Searcher",
    "class_stripping_accuracy",
    "frequent_knmatch_searcher",
    "knmatch_searcher",
    "knn_searcher",
    "igrid_searcher",
    "dpf_searcher",
]

Searcher = Callable[[np.ndarray, int], Sequence[int]]


@dataclass
class AccuracyReport:
    """Outcome of one class-stripping run."""

    technique: str
    dataset: str
    queries: int
    k: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of returned answers sharing the query's class."""
        total = self.queries * self.k
        return self.correct / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.technique} on {self.dataset}: "
            f"{self.accuracy:.1%} ({self.correct}/{self.queries * self.k})"
        )


def class_stripping_accuracy(
    dataset: ClassDataset,
    searcher: Searcher,
    technique: str,
    queries: int = 100,
    k: int = 20,
    seed: int = 0,
) -> AccuracyReport:
    """Run the paper's class-stripping protocol for one technique."""
    if queries < 1:
        raise ValidationError(f"queries must be >= 1; got {queries}")
    if k < 1:
        raise ValidationError(f"k must be >= 1; got {k}")
    rng = np.random.default_rng(seed)
    picks = rng.choice(dataset.cardinality, size=queries, replace=False)
    correct = 0
    for index in picks:
        answer = searcher(dataset.data[index], k)
        if len(answer) != k:
            raise ValidationError(
                f"searcher {technique!r} returned {len(answer)} answers, "
                f"expected {k}"
            )
        correct += int(
            np.sum(dataset.labels[np.asarray(answer)] == dataset.labels[index])
        )
    return AccuracyReport(
        technique=technique,
        dataset=dataset.name,
        queries=queries,
        k=k,
        correct=correct,
    )


# ----------------------------------------------------------------------
# searcher factories
# ----------------------------------------------------------------------
def frequent_knmatch_searcher(
    data: np.ndarray, n_range: Optional[Tuple[int, int]] = None
) -> Searcher:
    """Frequent k-n-match over ``n_range`` (default [1, d], as Table 4).

    Uses the vectorised block-AD engine — identical answers to the
    reference AD engine, appropriate for the 100-query sweeps.
    """
    engine = BlockADEngine(data)
    d = engine.dimensionality
    resolved = (1, d) if n_range is None else n_range

    def search(query: np.ndarray, k: int) -> Sequence[int]:
        return engine.frequent_k_n_match(
            query, k, resolved, keep_answer_sets=False
        ).ids

    return search


def knmatch_searcher(data: np.ndarray, n: int) -> Searcher:
    """Plain k-n-match at a fixed ``n``."""
    engine = BlockADEngine(data)

    def search(query: np.ndarray, k: int) -> Sequence[int]:
        return engine.k_n_match(query, k, n).ids

    return search


def knn_searcher(data: np.ndarray, p: float = 2.0) -> Searcher:
    """Classic kNN under Lp (the paper's baseline reference)."""
    engine = KnnEngine(data, p=p)

    def search(query: np.ndarray, k: int) -> Sequence[int]:
        return engine.top_k(query, k).ids

    return search


def igrid_searcher(data: np.ndarray, bins: Optional[int] = None) -> Searcher:
    """IGrid proximity search [6]."""
    engine = IGridEngine(data, bins=bins)

    def search(query: np.ndarray, k: int) -> Sequence[int]:
        return engine.top_k(query, k).ids

    return search


def dpf_searcher(data: np.ndarray, n: int, p: float = 2.0) -> Searcher:
    """Dynamic partial function search [18]."""
    engine = DPFEngine(data, p=p)

    def search(query: np.ndarray, k: int) -> Sequence[int]:
        return engine.top_k(query, k, n).ids

    return search
