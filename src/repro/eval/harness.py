"""Experiment harness utilities: table formatting and result records.

Every experiment module in :mod:`repro.experiments` produces plain data
(lists of dicts) plus a formatted table whose rows read like the paper's
tables and figure series.  The formatting lives here so benchmark output
and example scripts look identical.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "Cell"]

Cell = Union[str, int, float, None]


def _render(cell: Cell) -> str:
    if cell is None:
        return "N.A."
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "N.A."
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Plain aligned ASCII table, paper style."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    x_name: str,
    series: Mapping[str, Mapping[Cell, Cell]],
    title: str = "",
) -> str:
    """Format figure-style data: one x column, one column per series.

    ``series`` maps series name -> {x value -> y value}; x values are
    the union across series, sorted.
    """
    xs: List[Cell] = sorted({x for curve in series.values() for x in curve})
    headers = [x_name] + list(series)
    rows: List[List[Cell]] = []
    for x in xs:
        rows.append([x] + [series[name].get(x) for name in series])
    return format_table(headers, rows, title=title)
