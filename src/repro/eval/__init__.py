"""Evaluation harness: class stripping, table formatting."""

from .class_stripping import (
    AccuracyReport,
    Searcher,
    class_stripping_accuracy,
    dpf_searcher,
    frequent_knmatch_searcher,
    igrid_searcher,
    knmatch_searcher,
    knn_searcher,
)
from .ascii_plot import ascii_chart
from .export import (
    experiment_to_csv,
    experiment_to_dict,
    experiment_to_json,
    result_to_dict,
    stats_to_dict,
    write_experiment_csv,
)
from .harness import format_series, format_table
from .recall import RecallReport, knn_recall
from .approx_quality import (
    RECALL_TOLERANCE,
    answer_overlap,
    certificate_holds,
    tie_aware_match_recall,
)

__all__ = [
    "AccuracyReport",
    "Searcher",
    "class_stripping_accuracy",
    "frequent_knmatch_searcher",
    "knmatch_searcher",
    "knn_searcher",
    "igrid_searcher",
    "dpf_searcher",
    "format_table",
    "format_series",
    "RecallReport",
    "knn_recall",
    "RECALL_TOLERANCE",
    "answer_overlap",
    "certificate_holds",
    "tie_aware_match_recall",
    "ascii_chart",
    "stats_to_dict",
    "result_to_dict",
    "experiment_to_dict",
    "experiment_to_json",
    "experiment_to_csv",
    "write_experiment_csv",
]
