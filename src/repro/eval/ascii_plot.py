"""ASCII line charts for the figure experiments.

The benchmark environment has no plotting stack, but a figure's *shape*
— who is above whom, where curves cross — is exactly what the
reproduction argues about.  :func:`ascii_chart` renders series of
``x -> y`` points on a character grid with a legend, so
``python -m repro.experiments.runall --charts`` shows Fig. 13 as a
picture, not just rows.

Rendering rules: each series gets a marker character; points land on
the nearest grid cell; when two series collide on a cell the later one
wins (the legend notes the override order); axes are linear and
annotated with min/max.  No interpolation — honest dots only.
"""

from __future__ import annotations

from typing import List, Mapping

from ..errors import ValidationError

__all__ = ["ascii_chart", "MARKERS"]

#: marker characters assigned to series in order
MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Mapping[float, float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``series`` (name -> {x: y}) as a text chart."""
    if not series:
        raise ValidationError("ascii_chart needs at least one series")
    if width < 16 or height < 4:
        raise ValidationError("chart needs width >= 16 and height >= 4")
    if len(series) > len(MARKERS):
        raise ValidationError(
            f"at most {len(MARKERS)} series supported; got {len(series)}"
        )

    points = [
        (float(x), float(y), index)
        for index, curve in enumerate(series.values())
        for x, y in curve.items()
    ]
    if not points:
        raise ValidationError("every series is empty")
    xs = [x for x, _y, _s in points]
    ys = [y for _x, y, _s in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        column = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][column] = MARKERS[index]

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label) + 1)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        elif row_index == height // 2:
            label = y_label[: gutter - 1]
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    left = f"{x_lo:.4g}"
    right = f"{x_hi:.4g}"
    middle = x_label
    padding = width - len(left) - len(right) - len(middle)
    half = max(1, padding // 2)
    lines.append(
        " " * (gutter + 2)
        + left
        + " " * half
        + middle
        + " " * max(1, padding - half)
        + right
    )
    legend = "   ".join(
        f"{MARKERS[index]} = {name}" for index, name in enumerate(series)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)
