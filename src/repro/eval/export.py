"""Exporting results: dicts, JSON and CSV.

Experiment tables and search statistics are plain data; these helpers
serialise them so downstream tooling (plotting scripts, dashboards,
regression trackers) can consume a benchmark run without parsing the
pretty-printed tables.
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, List, Union

from ..core.types import FrequentMatchResult, MatchResult, SearchStats
from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker
    from ..experiments.common import ExperimentResult

__all__ = [
    "stats_to_dict",
    "result_to_dict",
    "experiment_to_dict",
    "experiment_to_json",
    "experiment_to_csv",
    "write_experiment_csv",
]


def stats_to_dict(stats: SearchStats) -> dict:
    """Flat dict of every counter, plus the derived fields."""
    payload = asdict(stats)
    payload["page_reads"] = stats.page_reads
    payload["fraction_retrieved"] = stats.fraction_retrieved
    return payload


def result_to_dict(result: Union[MatchResult, FrequentMatchResult]) -> dict:
    """Serialise a query result (either kind) with its stats."""
    if isinstance(result, MatchResult):
        return {
            "kind": "k-n-match",
            "k": result.k,
            "n": result.n,
            "ids": list(result.ids),
            "differences": list(result.differences),
            "stats": stats_to_dict(result.stats),
        }
    if isinstance(result, FrequentMatchResult):
        return {
            "kind": "frequent-k-n-match",
            "k": result.k,
            "n_range": list(result.n_range),
            "ids": list(result.ids),
            "frequencies": list(result.frequencies),
            "answer_sets": (
                {str(n): list(ids) for n, ids in result.answer_sets.items()}
                if result.answer_sets is not None
                else None
            ),
            "stats": stats_to_dict(result.stats),
        }
    raise ValidationError(
        f"cannot serialise {type(result).__name__}; expected a match result"
    )


def experiment_to_dict(result: "ExperimentResult") -> dict:
    """Serialise one regenerated table/figure."""
    return {
        "experiment": result.experiment,
        "description": result.description,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }


def experiment_to_json(result: "ExperimentResult", indent: int = 2) -> str:
    """JSON text of one experiment."""
    return json.dumps(experiment_to_dict(result), indent=indent)


def experiment_to_csv(result: "ExperimentResult") -> str:
    """CSV text (header row + data rows) of one experiment."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def write_experiment_csv(
    results: "List[ExperimentResult]", directory: Union[str, os.PathLike]
) -> List[str]:
    """Write one CSV per experiment into ``directory``; returns paths.

    File names derive from the experiment id ("Figure 12(a)" ->
    ``figure_12_a.csv``).
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for result in results:
        slug = (
            result.experiment.lower()
            .replace("(", "_")
            .replace(")", "")
            .replace(" ", "_")
            .strip("_")
        )
        path = os.path.join(directory, f"{slug}.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(experiment_to_csv(result))
        written.append(path)
    return written
