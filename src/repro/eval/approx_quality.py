"""Measured quality of approximate k-n-match answers.

The approximate tier (:mod:`repro.approx`) returns per-query *certified*
recall — a lower bound each engine proves from what it has seen.  This
module provides the matching *measured* side: given an approximate
answer and the exact answer for the same ``(query, k, n)``, how much of
the exact answer did the approximation actually deliver?

Two subtleties make a naive ``|ids ∩ exact_ids| / k`` wrong:

* **Ties.**  The exact k-th n-match difference is often shared by more
  points than fit in k (integer and clustered data especially).  Any
  point at or below that threshold is a legitimate member of *some*
  exact top-k, so an approximate answer that returns a different — but
  equally distant — point must not be scored as a miss.  Both engines
  re-rank candidates with the exact semantics, so their reported
  differences are exact and can be compared against the threshold
  directly (:func:`tie_aware_match_recall`).
* **Identity.**  When callers do want strict id agreement (e.g. the
  byte-identity acceptance path), :func:`answer_overlap` scores plain
  set overlap.

These helpers are the single implementation shared by the hypothesis
suite (``tests/test_approx_properties.py``), the approximate benchmark
(``benchmarks/bench_approx.py``) and the ``approx-info`` CLI probe, so
"measured recall" means the same thing everywhere it is printed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RECALL_TOLERANCE",
    "answer_overlap",
    "tie_aware_match_recall",
    "certificate_holds",
]

#: Absolute slack when comparing exact n-match differences.  Differences
#: come out of identical float64 pipelines, so ties are usually exact;
#: the tolerance only absorbs non-associativity across engines.
RECALL_TOLERANCE = 1e-12


def answer_overlap(answer_ids, exact_ids) -> float:
    """Plain set overlap ``|answer ∩ exact| / |exact|`` (tie-blind)."""
    exact = set(int(i) for i in np.asarray(exact_ids).ravel())
    if not exact:
        return 1.0
    answer = set(int(i) for i in np.asarray(answer_ids).ravel())
    return len(answer & exact) / len(exact)


def tie_aware_match_recall(
    answer_differences,
    exact_differences,
    tol: float = RECALL_TOLERANCE,
) -> float:
    """Fraction of the exact answer the approximation delivered.

    An approximate answer counts as a hit iff its (exact, re-ranked)
    n-match difference is within ``tol`` of the exact k-th difference —
    i.e. it belongs to some exact top-k under ties (see module doc).
    An empty exact answer is trivially recalled.
    """
    exact = np.asarray(exact_differences, dtype=np.float64).ravel()
    if exact.size == 0:
        return 1.0
    answer = np.asarray(answer_differences, dtype=np.float64).ravel()
    threshold = float(np.max(exact))
    hits = int(np.count_nonzero(answer <= threshold + tol))
    return min(1.0, hits / exact.size)


def certificate_holds(
    certified_recall: float,
    answer_differences,
    exact_differences,
    tol: float = RECALL_TOLERANCE,
) -> bool:
    """Whether a certificate is sound: measured recall >= certified."""
    measured = tie_aware_match_recall(answer_differences, exact_differences, tol)
    return measured >= float(certified_recall) - tol
