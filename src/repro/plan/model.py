"""Calibrated per-database cost curves for the query planner.

A :class:`PlanModel` answers one question: *how many seconds will engine
E take on a workload that touches roughly C cells?*  A "cell" is one
(point, dimension) attribute an engine processes — the same unit the
paper's cost analysis (Thm 3.2) and :class:`~repro.core.types.SearchStats`
count — so the curves compose directly with the advisor's sampled
fraction-retrieved estimates.

Each engine gets one :class:`CostCurve`::

    seconds(engine, cells)  =  base_seconds + cells * seconds_per_cell

deliberately linear: what separates the engines is not the shape of
their curves but the *constant* — the reference ``ad`` engine pays a
Python heap pop per cell while ``block-ad`` and ``naive`` stream cells
through numpy, a two-orders-of-magnitude gap that no plausible timing
noise can blur.  The planner only needs the argmin, not an accurate
latency forecast (though predicted-vs-actual is exported as
``repro_plan_*`` metrics so drift is visible).

Curves come from three sources, cheapest-first:

* :meth:`PlanModel.from_reports` — priors fit from the committed
  ``BENCH_*.json`` reports (the obs overhead matrix times ``ad`` and
  ``block-ad`` on known configurations);
* :meth:`PlanModel.calibrate` / :class:`~repro.plan.planner.QueryPlanner`
  probes — a few real queries per engine on *this* database, timed and
  divided by the cells they touched;
* :meth:`PlanModel.observe` — online refinement: every ``engine="auto"``
  query feeds its measured (cells, seconds) back into the curve it ran
  under, so the model tracks the machine it is actually on.

A model is persisted *alongside the index* as a JSON sidecar
(``<database>.plan.json``, see :func:`plan_model_path`): build once,
plan forever, and decisions become reproducible across processes.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional, Union

from ..errors import ValidationError

__all__ = [
    "CostCurve",
    "PlanModel",
    "plan_model_path",
    "save_plan_model",
    "load_plan_model",
]

PLAN_MODEL_VERSION = 1

#: Online updates beyond this many observations keep moving the curve
#: but stop shrinking the step, so a long-running server still adapts
#: when the machine's behaviour shifts (thermal throttling, a noisy
#: neighbour) instead of freezing on ancient history.
_OBSERVATION_WINDOW = 32


@dataclass
class CostCurve:
    """One engine's linear cost curve (see the module docstring)."""

    engine: str
    seconds_per_cell: float
    base_seconds: float = 0.0
    source: str = "probe"
    samples: int = 1
    #: Running mean of the *certified* recall observed under this curve
    #: (approx engines only; exact engines never record one, so the
    #: fields stay at their defaults and old sidecars round-trip).
    mean_recall: Optional[float] = None
    recall_samples: int = 0

    def predict(self, cells: float) -> float:
        """Predicted seconds for one query touching ``cells`` cells."""
        return self.base_seconds + cells * self.seconds_per_cell


class PlanModel:
    """A set of per-engine :class:`CostCurve`\\ s plus fit provenance."""

    def __init__(self, curves: Optional[Dict[str, CostCurve]] = None) -> None:
        self._curves: Dict[str, CostCurve] = dict(curves or {})

    # ------------------------------------------------------------------
    @property
    def engines(self):
        """Engine names with a fitted curve (sorted, deterministic)."""
        return tuple(sorted(self._curves))

    def curve(self, engine: str) -> Optional[CostCurve]:
        return self._curves.get(engine)

    def has_curve(self, engine: str) -> bool:
        return engine in self._curves

    def predict(self, engine: str, cells: float) -> Optional[float]:
        """Predicted seconds for ``engine`` on ``cells``; None if unfit."""
        curve = self._curves.get(engine)
        if curve is None:
            return None
        return curve.predict(max(0.0, float(cells)))

    # ------------------------------------------------------------------
    def fit(
        self,
        engine: str,
        cells: float,
        seconds: float,
        source: str = "probe",
    ) -> CostCurve:
        """Install (replacing) a curve from one measured (cells, seconds)."""
        cells = max(1.0, float(cells))
        curve = CostCurve(
            engine=engine,
            seconds_per_cell=max(0.0, float(seconds)) / cells,
            source=source,
            samples=1,
        )
        self._curves[engine] = curve
        return curve

    def observe(self, engine: str, cells: float, seconds: float) -> None:
        """Online update: blend one measured query into the curve.

        Unknown engines get a fresh curve (source ``"observed"``); known
        ones move by a ``1/samples`` step, with ``samples`` capped at a
        window so the model keeps adapting (see module docstring).
        """
        cells = max(1.0, float(cells))
        measured = max(0.0, float(seconds)) / cells
        curve = self._curves.get(engine)
        if curve is None:
            self._curves[engine] = CostCurve(
                engine=engine,
                seconds_per_cell=measured,
                source="observed",
            )
            return
        weight = min(curve.samples, _OBSERVATION_WINDOW)
        curve.seconds_per_cell += (measured - curve.seconds_per_cell) / (
            weight + 1
        )
        curve.samples += 1

    def observe_recall(self, engine: str, recall: float) -> None:
        """Online update: blend one certified recall into the curve.

        The same windowed-mean scheme as :meth:`observe`, kept on the
        engine's existing cost curve so recall and cost are always
        priced from the same evidence.  Unknown engines are ignored —
        a recall without a cost curve cannot influence planning.
        """
        curve = self._curves.get(engine)
        if curve is None:
            return
        recall = min(1.0, max(0.0, float(recall)))
        if curve.mean_recall is None:
            curve.mean_recall = recall
            curve.recall_samples = 1
            return
        weight = min(curve.recall_samples, _OBSERVATION_WINDOW)
        curve.mean_recall += (recall - curve.mean_recall) / (weight + 1)
        curve.recall_samples += 1

    def predict_recall(self, engine: str) -> Optional[float]:
        """Mean certified recall observed for ``engine``; None if unknown."""
        curve = self._curves.get(engine)
        if curve is None:
            return None
        return curve.mean_recall

    # ------------------------------------------------------------------
    @classmethod
    def from_reports(cls, path: Union[str, os.PathLike]) -> "PlanModel":
        """Priors from committed ``BENCH_*.json`` reports under ``path``.

        Walks every report for entries that name an engine, a
        configuration (``cardinality`` x ``dimensionality``) and a
        ``queries_per_second`` leaf, and fits each engine's curve from
        the *slowest* per-cell observation (a conservative prior: bench
        configurations touch at most every cell, so dividing by
        ``cardinality * dimensionality`` under-estimates the per-cell
        price of frontier engines; probes refine it).
        """
        import glob

        model = cls()
        if os.path.isdir(path):
            files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        else:
            files = [os.fspath(path)]
        worst: Dict[str, float] = {}
        for name in files:
            try:
                with open(name) as handle:
                    report = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            for engine, per_cell in _report_per_cell(report):
                worst[engine] = max(worst.get(engine, 0.0), per_cell)
        for engine, per_cell in worst.items():
            model._curves[engine] = CostCurve(
                engine=engine,
                seconds_per_cell=per_cell,
                source="bench",
            )
        return model

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": PLAN_MODEL_VERSION,
            "curves": {
                name: asdict(curve)
                for name, curve in sorted(self._curves.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PlanModel":
        if not isinstance(payload, dict) or "curves" not in payload:
            raise ValidationError(
                "plan model payload must be a dict with a 'curves' mapping"
            )
        if payload.get("version") != PLAN_MODEL_VERSION:
            raise ValidationError(
                f"plan model version {payload.get('version')!r} is not "
                f"readable; this build reads version {PLAN_MODEL_VERSION}"
            )
        curves = {}
        for name, fields in payload["curves"].items():
            try:
                curves[name] = CostCurve(**fields)
            except TypeError as error:
                raise ValidationError(
                    f"malformed plan-model curve {name!r}: {error}"
                ) from None
        return cls(curves)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PlanModel(engines={list(self.engines)!r})"


def _report_per_cell(report: Dict) -> Iterable:
    """Yield ``(engine, seconds_per_cell)`` observations from one report."""
    for entry in report.get("results", ()):
        if not isinstance(entry, dict):
            continue
        cells = _entry_cells(entry)
        if cells is None:
            continue
        engines = entry.get("engines")
        if isinstance(engines, dict):  # bench_obs: engines.<name>.off.qps
            for engine, modes in engines.items():
                rate = _rate(modes.get("off") if isinstance(modes, dict) else None)
                if rate:
                    yield engine, 1.0 / rate / cells
        engine = entry.get("engine")
        if isinstance(engine, str):  # bench_batch/shard: one engine per entry
            rate = _rate(entry.get("vectorised") or entry.get("serial"))
            if rate:
                yield engine, 1.0 / rate / cells


def _entry_cells(entry: Dict) -> Optional[float]:
    cardinality = entry.get("cardinality")
    dimensionality = entry.get("dimensionality")
    if isinstance(cardinality, int) and isinstance(dimensionality, int):
        return float(cardinality * dimensionality)
    return None


def _rate(leaf) -> Optional[float]:
    if isinstance(leaf, dict):
        rate = leaf.get("queries_per_second")
        if isinstance(rate, (int, float)) and rate > 0:
            return float(rate)
    return None


# ----------------------------------------------------------------------
# persistence: the sidecar next to the index
# ----------------------------------------------------------------------
def plan_model_path(database_path: Union[str, os.PathLike]) -> str:
    """The sidecar path a database's plan model is persisted at."""
    return f"{os.fspath(database_path)}.plan.json"


def save_plan_model(
    model: PlanModel, database_path: Union[str, os.PathLike]
) -> str:
    """Write ``model`` next to the index; returns the sidecar path."""
    path = plan_model_path(database_path)
    with open(path, "w") as handle:
        json.dump(model.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_plan_model(
    database_path: Union[str, os.PathLike]
) -> Optional[PlanModel]:
    """Load the sidecar model for a database, or ``None`` if absent.

    A *malformed* sidecar raises (silently ignoring it would undo the
    calibration without telling anyone); a missing one is the normal
    uncalibrated state.
    """
    path = plan_model_path(database_path)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValidationError(
            f"cannot read plan model {path!r}: {error}"
        ) from error
    return PlanModel.from_dict(payload)
