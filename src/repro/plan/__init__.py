"""Cost-based query planning: the ``engine="auto"`` subsystem.

See :mod:`repro.plan.model` for the calibrated per-database cost curves
and :mod:`repro.plan.planner` for how a decision is made.  The planner
never changes answers — every candidate engine is exact and shares the
canonical tie-break — it only chooses which one runs.
"""

from .model import (
    CostCurve,
    PlanModel,
    load_plan_model,
    plan_model_path,
    save_plan_model,
)
from .planner import FALLBACK_ENGINE, PLAN_KINDS, QueryPlan, QueryPlanner

__all__ = [
    "CostCurve",
    "PlanModel",
    "QueryPlan",
    "QueryPlanner",
    "FALLBACK_ENGINE",
    "PLAN_KINDS",
    "plan_model_path",
    "save_plan_model",
    "load_plan_model",
]
