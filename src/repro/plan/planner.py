"""Per-query engine selection: the ``engine="auto"`` planner.

The paper proves the AD algorithm optimal in *attributes retrieved*
(Thm 3.2), but its own efficiency study (Sec. 5.2) shows the wall-clock
winner flipping between AD, block-AD and a plain scan with ``k``,
``n1`` and the device profile.  :class:`QueryPlanner` makes that choice
per workload instead of per deployment:

1. estimate the fraction of attributes a frontier engine would retrieve
   for *this* (kind, k, n-range) — the advisor's sampled estimate, run
   with the query kind actually being planned;
2. convert the estimate into per-engine cell counts and price them with
   the database's calibrated :class:`~repro.plan.model.PlanModel`
   (probing any engine the model has no curve for);
3. pick the cheapest engine, deterministically (predicted seconds, then
   candidate order breaks exact ties).

**Exactness is untouched.**  The planner only chooses *which exact
engine runs*, and it chooses among the canonical-tie-break engines
(``block-ad``, ``naive``, and ``batch-block-ad`` for batches) so an
``engine="auto"`` answer is bit-identical to every manual engine choice
even on tie-heavy data.  The reference ``ad`` engine is deliberately
not a candidate: it exists to minimise attributes in the
multiple-system setting (ask ``recommend_engine(minimize="attributes")``
for it), its within-tie discovery order is heap-dependent, and
``block-ad`` dominates it in wall clock on every measured workload.

Decisions are cached per (kind, k, n-range, batched) — planning costs a
few sampled queries, so it amortises across the workload it describes —
and every planned query feeds its measured cost back into the model
(:meth:`QueryPlanner.record_actual`), keeping predictions honest.
Planning itself runs under a ``plan`` span when a collector is
installed, and the facades export each decision as ``repro_plan_*``
metrics with predicted vs actual seconds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import validation
from ..core.advisor import (
    CostEstimate,
    estimate_fraction_retrieved,
    sample_row_ids,
)
from ..errors import ValidationError
from .model import PlanModel

__all__ = ["QueryPlan", "QueryPlanner", "FALLBACK_ENGINE", "PLAN_KINDS"]

#: The engine a planner falls back to when it cannot price the
#: candidates (no curve fit and probing failed) — the all-round
#: vectorised engine, never a pathological choice.
FALLBACK_ENGINE = "block-ad"

#: Query kinds the planner understands (the facade method names).
PLAN_KINDS = ("k_n_match", "frequent_k_n_match")

#: Canonical-tie-break candidates (see the module docstring for why
#: ``ad`` is excluded).  Batch calls may additionally use the lock-step
#: batch engine.
_SINGLE_CANDIDATES = ("block-ad", "naive")
_BATCH_CANDIDATES = ("batch-block-ad", "block-ad", "naive")

#: Planning modes.  ``"approx"`` admits the :mod:`repro.approx` engines
#: as candidates — and *only* then: an exact plan never resolves to an
#: approximate engine, the caller must declare ``mode="approx"`` first.
PLAN_MODES = ("exact", "approx")

#: Queries sampled for the advisor estimate and per-engine probes; small
#: because decisions are cached per workload and refined online.
_DEFAULT_SAMPLE_QUERIES = 3
_DEFAULT_PROBE_QUERIES = 2

#: Batched workloads probe with at least this many queries, so engines
#: that amortise per-call setup across a batch are priced fairly.
_BATCH_PROBE_QUERIES = 8


@dataclass(frozen=True)
class QueryPlan:
    """One planning decision: the chosen engine plus its evidence."""

    engine: str
    kind: str
    k: int
    n_range: Tuple[int, int]
    batched: bool
    fanout: int
    cells: float
    predicted_seconds: float
    candidates: Dict[str, float] = field(hash=False)
    reason: str = ""
    fallback: bool = False
    estimate: Optional[CostEstimate] = field(default=None, hash=False)
    mode: str = "exact"
    predicted_recall: Optional[float] = None

    def describe(self) -> str:
        """One line for logs and the CLI."""
        priced = ", ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in sorted(self.candidates.items())
        )
        return (
            f"plan[{self.kind} k={self.k} n={self.n_range}"
            f"{' batch' if self.batched else ''}]: {self.engine} "
            f"({self.reason}; candidates: {priced or 'none priced'})"
        )


class QueryPlanner:
    """Plans queries for one database facade (see the module docstring).

    ``db`` is any object with the :class:`~repro.core.engine.MatchDatabase`
    estimation surface (``columns``, ``data``, ``cardinality``,
    ``dimensionality``, ``spans``); the sharded facade plans over its
    largest shard and reports the fan-out it will scatter to.
    """

    def __init__(
        self,
        db,
        model: Optional[PlanModel] = None,
        seed: int = 0,
        sample_queries: int = _DEFAULT_SAMPLE_QUERIES,
        probe_queries: int = _DEFAULT_PROBE_QUERIES,
        fanout: int = 1,
        spans_owner=None,
    ) -> None:
        if sample_queries < 1:
            raise ValidationError(
                f"sample_queries must be >= 1; got {sample_queries}"
            )
        if probe_queries < 1:
            raise ValidationError(
                f"probe_queries must be >= 1; got {probe_queries}"
            )
        self._db = db
        self._model = model if model is not None else PlanModel()
        self._seed = int(seed)
        self._sample_queries = int(sample_queries)
        self._probe_queries = int(probe_queries)
        self._fanout = max(1, int(fanout))
        # where the span collector lives: the sharded facade plans over
        # one shard's MatchDatabase but traces on the facade's collector.
        self._spans_owner = spans_owner if spans_owner is not None else db
        self._decisions: Dict[Tuple, QueryPlan] = {}
        self._lock = threading.Lock()
        self._last_plan: Optional[QueryPlan] = None

    # ------------------------------------------------------------------
    @property
    def db(self):
        """The database (or shard) the planner estimates and probes on."""
        return self._db

    @property
    def model(self) -> PlanModel:
        return self._model

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def last_plan(self) -> Optional[QueryPlan]:
        """The most recently returned plan (cached hits included)."""
        return self._last_plan

    def invalidate(self) -> None:
        """Drop every cached decision (keep the fitted model)."""
        with self._lock:
            self._decisions.clear()

    # ------------------------------------------------------------------
    def plan(
        self,
        kind: str,
        k: int,
        n_range: Tuple[int, int],
        batched: bool = False,
        mode: str = "exact",
        target_recall: Optional[float] = None,
    ) -> QueryPlan:
        """The engine to run this workload with (cached per workload).

        ``mode="approx"`` plans among the approximate engines instead
        (k-n-match only); ``target_recall`` then sizes their budgets and
        filters candidates by the recall their curves have observed.
        """
        if kind not in PLAN_KINDS:
            raise ValidationError(
                f"unknown plan kind {kind!r}; choose from {PLAN_KINDS}"
            )
        if mode not in PLAN_MODES:
            raise ValidationError(
                f"unknown plan mode {mode!r}; choose from {PLAN_MODES}"
            )
        if mode == "approx" and kind != "k_n_match":
            from ..approx import APPROX_FREQUENT_MESSAGE

            raise ValidationError(APPROX_FREQUENT_MESSAGE)
        k = validation.validate_k(k, self._db.cardinality)
        n0, n1 = validation.validate_n_range(
            n_range, self._db.dimensionality
        )
        key = (kind, k, n0, n1, bool(batched), mode, target_recall)
        with self._lock:
            cached = self._decisions.get(key)
        if cached is not None:
            self._last_plan = cached
            return cached
        spans = getattr(self._spans_owner, "spans", None)
        if spans is None:
            plan = self._plan_dispatch(
                kind, k, (n0, n1), bool(batched), mode, target_recall
            )
        else:
            with spans.span("plan", kind=kind, k=k, n0=n0, n1=n1, mode=mode):
                plan = self._plan_dispatch(
                    kind, k, (n0, n1), bool(batched), mode, target_recall
                )
                spans.annotate(
                    engine=plan.engine,
                    predicted_ms=round(plan.predicted_seconds * 1e3, 3),
                )
        with self._lock:
            self._decisions.setdefault(key, plan)
            plan = self._decisions[key]
        self._last_plan = plan
        return plan

    def _plan_dispatch(
        self, kind, k, n_range, batched, mode, target_recall
    ) -> QueryPlan:
        if mode == "approx":
            return self._plan_approx(k, n_range, target_recall)
        return self._plan_uncached(kind, k, n_range, batched)

    def record_actual(self, plan: QueryPlan, cells: float, seconds: float) -> None:
        """Feed one executed planned query back into the cost model."""
        if cells <= 0:
            cells = plan.cells
        self._model.observe(plan.engine, cells, seconds)

    def record_recall(self, engine: str, certified_recall: float) -> None:
        """Feed one executed approx query's certificate into its curve.

        The recall track is the cost curves' second output: the model
        learns what certified quality each approx engine actually
        delivers here, and later approx plans filter candidates by it.
        """
        self._model.observe_recall(engine, certified_recall)

    # ------------------------------------------------------------------
    def _plan_uncached(
        self, kind: str, k: int, n_range: Tuple[int, int], batched: bool
    ) -> QueryPlan:
        candidates = _BATCH_CANDIDATES if batched else _SINGLE_CANDIDATES
        estimate = self._estimate(kind, k, n_range)
        total = self._db.cardinality * self._db.dimensionality
        fraction = estimate.mean_fraction if estimate is not None else 1.0
        priced: Dict[str, float] = {}
        for engine in candidates:
            cells = self._engine_cells(engine, fraction, k, total)
            if not self._model.has_curve(engine):
                self._probe(engine, kind, k, n_range, batched)
            predicted = self._model.predict(engine, cells)
            if predicted is not None:
                priced[engine] = predicted
        if not priced:
            plan = QueryPlan(
                engine=FALLBACK_ENGINE,
                kind=kind,
                k=k,
                n_range=n_range,
                batched=batched,
                fanout=self._fanout,
                cells=float(total),
                predicted_seconds=0.0,
                candidates={},
                reason=(
                    "no cost curve could be fit; falling back to the "
                    "all-round vectorised engine"
                ),
                fallback=True,
                estimate=estimate,
            )
            return plan
        # deterministic argmin: predicted seconds, candidate order on ties
        chosen = min(
            priced, key=lambda name: (priced[name], candidates.index(name))
        )
        chosen_cells = self._engine_cells(chosen, fraction, k, total)
        reason = (
            f"estimated retrieval {fraction:.0%} of {total} cells; "
            f"{chosen} prices cheapest under the calibrated model"
        )
        return QueryPlan(
            engine=chosen,
            kind=kind,
            k=k,
            n_range=n_range,
            batched=batched,
            fanout=self._fanout,
            cells=chosen_cells,
            predicted_seconds=priced[chosen],
            candidates=priced,
            reason=reason,
            fallback=False,
            estimate=estimate,
        )

    def _estimate(
        self, kind: str, k: int, n_range: Tuple[int, int]
    ) -> Optional[CostEstimate]:
        try:
            return estimate_fraction_retrieved(
                self._db,
                k,
                n_range,
                sample_queries=min(self._sample_queries, self._db.cardinality),
                seed=self._seed,
                kind="frequent" if kind == "frequent_k_n_match" else "k-n-match",
                spans=getattr(self._spans_owner, "spans", None),
            )
        except ValidationError:
            raise
        except Exception:  # pragma: no cover - estimation is best-effort
            return None

    def _engine_cells(
        self, engine: str, fraction: float, k: int, total: int
    ) -> float:
        """Cells ``engine`` is expected to touch on this workload."""
        if engine == "naive":
            return float(total)
        # Frontier engines touch about the retrieved fraction, never less
        # than the k answers they must materialise.
        return float(
            min(total, max(fraction * total, k * self._db.dimensionality))
        )

    def _probe(
        self, engine: str, kind: str, k: int, n_range, batched: bool = False
    ) -> None:
        """Fit ``engine``'s curve by timing a few real queries.

        Probes run on throwaway engine instances (no metrics registry)
        so logical query counters are never inflated by planning; the
        span collector, when installed, still sees the probe phases
        nested under the ``plan`` span.  Batched workloads probe with a
        larger batch: the lock-step batch engine amortises its per-call
        setup across the batch, so a two-query probe would overstate
        its per-cell price and bias the argmin towards the loops.
        """
        from ..core.engine import make_engine

        try:
            probe = make_engine(
                engine,
                self._db.columns,
                spans=getattr(self._spans_owner, "spans", None),
            )
        except ValidationError:
            return
        probe_queries = self._probe_queries
        if batched:
            probe_queries = max(probe_queries, _BATCH_PROBE_QUERIES)
        rows = sample_row_ids(
            self._db.cardinality,
            min(probe_queries, self._db.cardinality),
            self._seed + 1,
        )
        queries = self._db.data[rows]
        cells = 0
        started = time.perf_counter()
        if kind == "frequent_k_n_match":
            native = getattr(probe, "frequent_k_n_match_batch", None)
            if native is not None:
                results = native(queries, k, n_range, keep_answer_sets=False)
            else:
                results = [
                    probe.frequent_k_n_match(
                        query, k, n_range, keep_answer_sets=False
                    )
                    for query in queries
                ]
        else:
            n = n_range[1]
            native = getattr(probe, "k_n_match_batch", None)
            if native is not None:
                results = native(queries, k, n)
            else:
                results = [probe.k_n_match(query, k, n) for query in queries]
        seconds = time.perf_counter() - started
        cells = sum(result.stats.attributes_retrieved for result in results)
        if cells <= 0:
            cells = len(results) * self._db.cardinality * self._db.dimensionality
        # fit on the per-query averages so curves are batch-size neutral
        self._model.fit(
            engine, cells / len(results), seconds / len(results)
        )

    # ------------------------------------------------------------------
    # approximate planning (mode="approx")
    # ------------------------------------------------------------------
    def _plan_approx(
        self, k: int, n_range, target_recall: Optional[float]
    ) -> QueryPlan:
        """Price the approx engines for one workload (k-n-match only).

        Candidates whose curves have *observed* a certified recall below
        the target are dropped (a cheap engine that can't deliver is no
        bargain); among the rest the cheapest predicted wall clock wins.
        Unlike exact planning there is no fallback outside the tier —
        the caller declared ``mode="approx"``, so the answer is always
        an approx engine.
        """
        from ..approx import (
            APPROX_ENGINE_NAMES,
            DEFAULT_APPROX_ENGINE,
            DEFAULT_TARGET_RECALL,
        )

        recall_goal = (
            target_recall if target_recall is not None else DEFAULT_TARGET_RECALL
        )
        total = self._db.cardinality * self._db.dimensionality
        priced: Dict[str, float] = {}
        recalls: Dict[str, Optional[float]] = {}
        for engine in APPROX_ENGINE_NAMES:
            if not self._model.has_curve(engine):
                self._probe_approx(engine, k, n_range, recall_goal)
            cells = self._approx_engine_cells(engine, k, recall_goal, total)
            predicted = self._model.predict(engine, cells)
            if predicted is not None:
                priced[engine] = predicted
                recalls[engine] = self._model.predict_recall(engine)
        if not priced:
            return QueryPlan(
                engine=DEFAULT_APPROX_ENGINE,
                kind="k_n_match",
                k=k,
                n_range=n_range,
                batched=False,
                fanout=self._fanout,
                cells=float(total),
                predicted_seconds=0.0,
                candidates={},
                reason=(
                    "no approx cost curve could be fit; falling back to "
                    "the certified engine"
                ),
                fallback=True,
                estimate=None,
                mode="approx",
                predicted_recall=None,
            )
        meeting = {
            name: seconds
            for name, seconds in priced.items()
            if recalls.get(name) is None or recalls[name] >= recall_goal
        }
        pool = meeting or priced
        chosen = min(
            pool,
            key=lambda name: (pool[name], APPROX_ENGINE_NAMES.index(name)),
        )
        reason = (
            f"approx mode (target recall {recall_goal:.2f}): {chosen} "
            f"prices cheapest among "
            f"{sorted(pool)}"
        )
        return QueryPlan(
            engine=chosen,
            kind="k_n_match",
            k=k,
            n_range=n_range,
            batched=False,
            fanout=self._fanout,
            cells=self._approx_engine_cells(chosen, k, recall_goal, total),
            predicted_seconds=priced[chosen],
            candidates=priced,
            reason=reason,
            fallback=False,
            estimate=None,
            mode="approx",
            predicted_recall=recalls.get(chosen),
        )

    def _approx_engine_cells(
        self, engine: str, k: int, recall_goal: float, total: int
    ) -> float:
        """Cells an approx engine touches: frontier budget or sketch scan.

        The unit matches what :meth:`_probe_approx` fits against —
        ``attributes_retrieved + approximation_entries_scanned`` — so
        the sketch's O(c p) rank scan is priced even though it never
        touches a raw attribute.
        """
        from ..approx import DEFAULT_PIVOTS, multiplier_from_target_recall

        d = self._db.dimensionality
        c = self._db.cardinality
        if engine == "budget-ad":
            budget = recall_goal * total
            return float(min(total, budget + 2 * k * d))
        multiplier = multiplier_from_target_recall(recall_goal)
        count = c if multiplier == 0 else min(c, multiplier * k)
        return float(c * DEFAULT_PIVOTS + count * d + DEFAULT_PIVOTS * d)

    def _probe_approx(
        self, engine: str, k: int, n_range, recall_goal: float
    ) -> None:
        """Fit an approx engine's curve (cost and certified recall).

        Probes reuse the database's cached approx engine — the
        pivot-sketch build is expensive and would otherwise run twice —
        with its metrics registry detached, so probe queries never
        inflate the logical approx-query counters.
        """
        getter = getattr(self._db, "_approx_engine", None)
        if getter is None:
            return
        try:
            probe = getter(engine)
        except ValidationError:
            return
        rows = sample_row_ids(
            self._db.cardinality,
            min(self._probe_queries, self._db.cardinality),
            self._seed + 1,
        )
        queries = self._db.data[rows]
        n = n_range[1]
        saved_metrics = probe.metrics
        probe.metrics = None
        try:
            started = time.perf_counter()
            results = [
                probe.k_n_match(query, k, n, target_recall=recall_goal)
                for query in queries
            ]
            seconds = time.perf_counter() - started
        finally:
            probe.metrics = saved_metrics
        cells = sum(
            result.stats.attributes_retrieved
            + result.stats.approximation_entries_scanned
            for result in results
        )
        if cells <= 0:
            cells = len(results) * self._db.cardinality * self._db.dimensionality
        self._model.fit(engine, cells / len(results), seconds / len(results))
        for result in results:
            self._model.observe_recall(engine, result.certified_recall)
