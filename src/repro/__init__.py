"""repro — matching-based similarity search (k-n-match).

A production-quality reproduction of *"Similarity Search: A Matching
Based Approach"* (Tung, Zhang, Koudas, Ooi; VLDB 2006): the k-n-match and
frequent k-n-match queries, the attribute-optimal AD algorithm, the
disk-based engines (sorted-column AD, sequential scan, a VA-file
adaptation), the IGrid competitor and the evaluation harness that
regenerates every table and figure of the paper's experimental study.

Quickstart::

    import numpy as np
    from repro import MatchDatabase

    db = MatchDatabase(np.random.default_rng(0).random((1000, 16)))
    result = db.k_n_match(query=np.full(16, 0.5), k=5, n=8)
    print(result.ids, result.differences)

    freq = db.frequent_k_n_match(query=np.full(16, 0.5), k=5, n_range=(4, 12))
    print(freq.ids, freq.frequencies)
"""

from .core import (
    ADEngine,
    AnytimeADEngine,
    AnytimeResult,
    BlockADEngine,
    CATEGORICAL,
    DynamicMatchDatabase,
    ENGINE_NAMES,
    FrequentMatchResult,
    MatchDatabase,
    MatchResult,
    MixedMatchDatabase,
    NUMERIC,
    NaiveScanEngine,
    MatchExplanation,
    Schema,
    SearchStats,
    WeightedMatchDatabase,
    explain_match,
    chebyshev_distance,
    dpf_distance,
    euclidean_distance,
    manhattan_distance,
    match_count_within,
    match_profile,
    minkowski_distance,
    n_match_difference,
    n_match_differences,
    naive_frequent_k_n_match,
    naive_k_n_match,
)
from .approx import (
    APPROX_ENGINE_NAMES,
    ApproxResult,
    BudgetADEngine,
    PivotSketchEngine,
)
from .errors import (
    DimensionalityMismatchError,
    EmptyDatabaseError,
    NotBuiltError,
    PageOverflowError,
    ReproError,
    StorageError,
    ValidationError,
)
from .io import (
    load_any_database,
    load_database,
    load_sharded_database,
    save_database,
    save_sharded_database,
)
from .obs import (
    MetricsRegistry,
    QueryTrace,
    registry_to_dict,
    render_json,
    render_prometheus,
)
from .parallel import BatchBlockADEngine, BatchStats, ParallelBatchExecutor
from .shard import (
    Partitioner,
    ScatterGatherCoordinator,
    ShardedMatchDatabase,
    make_partitioner,
    partitioner_names,
    register_partitioner,
)
from .sorted_lists import SortedColumns

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade and engines
    "MatchDatabase",
    "DynamicMatchDatabase",
    "MixedMatchDatabase",
    "WeightedMatchDatabase",
    "Schema",
    "NUMERIC",
    "CATEGORICAL",
    "ADEngine",
    "AnytimeADEngine",
    "AnytimeResult",
    "BlockADEngine",
    "BatchBlockADEngine",
    "NaiveScanEngine",
    "MatchExplanation",
    "explain_match",
    "ENGINE_NAMES",
    "SortedColumns",
    # approximate tier
    "ApproxResult",
    "BudgetADEngine",
    "PivotSketchEngine",
    "APPROX_ENGINE_NAMES",
    # results
    "MatchResult",
    "FrequentMatchResult",
    "SearchStats",
    # batch execution
    "ParallelBatchExecutor",
    "BatchStats",
    # sharding
    "ShardedMatchDatabase",
    "ScatterGatherCoordinator",
    "Partitioner",
    "register_partitioner",
    "make_partitioner",
    "partitioner_names",
    # observability
    "MetricsRegistry",
    "QueryTrace",
    "render_prometheus",
    "render_json",
    "registry_to_dict",
    # distances
    "n_match_difference",
    "n_match_differences",
    "match_profile",
    "match_count_within",
    "minkowski_distance",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "dpf_distance",
    # convenience functions
    "naive_k_n_match",
    "naive_frequent_k_n_match",
    "save_database",
    "load_database",
    "save_sharded_database",
    "load_sharded_database",
    "load_any_database",
    # errors
    "ReproError",
    "ValidationError",
    "DimensionalityMismatchError",
    "EmptyDatabaseError",
    "NotBuiltError",
    "StorageError",
    "PageOverflowError",
]
