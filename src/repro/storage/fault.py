"""Fault injection for the storage layer.

A :class:`FaultyPager` behaves exactly like a :class:`Pager` until a
scheduled fault fires: either a hard read error (:class:`StorageError`,
modelling a failed sector) or a silent single-bit corruption of the
returned page (modelling the uglier failure mode).  Tests use it to
verify that the engines neither swallow hard errors nor — in the
checked paths such as :mod:`repro.io` loading — accept corrupted bytes
silently.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..errors import StorageError
from .pager import Pager

__all__ = ["FaultyPager"]


class FaultyPager(Pager):
    """A pager with scheduled read faults."""

    def __init__(
        self,
        page_size: int = 4096,
        fail_pages: Optional[Iterable[int]] = None,
        corrupt_pages: Optional[Iterable[int]] = None,
        fail_after_reads: Optional[int] = None,
    ) -> None:
        super().__init__(page_size)
        self.fail_pages: Set[int] = set(fail_pages or ())
        self.corrupt_pages: Set[int] = set(corrupt_pages or ())
        self.fail_after_reads = fail_after_reads
        self.reads_served = 0
        self.faults_fired = 0

    def read(self, page_id: int, stream: str = "default") -> bytes:
        if (
            self.fail_after_reads is not None
            and self.reads_served >= self.fail_after_reads
        ):
            self.faults_fired += 1
            raise StorageError(
                f"injected fault: device failed after "
                f"{self.reads_served} reads"
            )
        if page_id in self.fail_pages:
            self.faults_fired += 1
            raise StorageError(f"injected fault: unreadable page {page_id}")
        payload = super().read(page_id, stream)
        self.reads_served += 1
        if page_id in self.corrupt_pages:
            self.faults_fired += 1
            if not payload:
                return payload
            # flip the lowest bit of the first byte: a silent corruption
            corrupted = bytes([payload[0] ^ 0x01]) + payload[1:]
            return corrupted
        return payload
