"""Fault injection for the storage layer.

A :class:`FaultyPager` behaves exactly like a :class:`Pager` until a
scheduled fault fires: either a hard read error (:class:`StorageError`,
modelling a failed sector) or a silent single-bit corruption of the
returned page (modelling the uglier failure mode).  Tests use it to
verify that the engines neither swallow hard errors nor — in the
checked paths such as :mod:`repro.io` loading — accept corrupted bytes
silently.

A :class:`FaultSchedule` models the *write-side* failures the durable
store (:mod:`repro.lsm`) must survive: a process death at a named
protocol point (between writing a segment and swapping the manifest,
say) and a torn write that persists only a prefix of a WAL record.
Components that support injection hold an optional schedule and call
:meth:`FaultSchedule.reached` at their crash points — ``None`` means no
check at all, the same zero-cost discipline as ``metrics=``/``spans=``.
An injected crash raises :class:`InjectedCrashError`; the test then
abandons the broken object and re-opens the store from disk, which must
recover to a state bit-identical to the naive oracle over the durable
mutations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..errors import StorageError
from .pager import Pager

__all__ = ["FaultyPager", "FaultSchedule", "InjectedCrashError"]


class InjectedCrashError(StorageError):
    """A scheduled crash fired: the process is considered dead here.

    Deliberately *not* a :class:`ValidationError` — recovery code and
    tests must treat it like a power cut, never catch-and-continue on
    the broken in-memory object.
    """


class FaultSchedule:
    """Deterministic crash scheduling for durability tests.

    ``crash_points`` are protocol point names (see the ``fault:``
    comments in :mod:`repro.lsm.store` for the vocabulary); the first
    time instrumented code reaches one, :class:`InjectedCrashError` is
    raised and the point is recorded in :attr:`fired`.

    ``wal_torn_after_bytes`` schedules a torn WAL append: the next
    writes persist normally until the byte budget runs out, then the
    record that crosses the budget is persisted only up to it and the
    writer crashes — exactly the on-disk shape a power cut mid-write
    leaves behind.
    """

    def __init__(
        self,
        crash_points: Iterable[str] = (),
        wal_torn_after_bytes: Optional[int] = None,
    ) -> None:
        self.crash_points: Set[str] = set(crash_points)
        if wal_torn_after_bytes is not None and wal_torn_after_bytes < 0:
            raise ValueError(
                f"wal_torn_after_bytes must be >= 0; got {wal_torn_after_bytes}"
            )
        self.wal_torn_after_bytes = wal_torn_after_bytes
        self.fired: List[str] = []

    def reached(self, point: str) -> None:
        """Crash if ``point`` is scheduled; otherwise a no-op."""
        if point in self.crash_points:
            self.crash_points.discard(point)
            self.fired.append(point)
            raise InjectedCrashError(f"injected crash at {point!r}")

    def wal_write(self, payload: bytes) -> Tuple[bytes, bool]:
        """The prefix of ``payload`` that persists, and whether it tore.

        Returns ``(payload, False)`` while the byte budget holds (or no
        tear is scheduled).  Once a write crosses the budget, returns
        ``(prefix, True)``: the caller must persist exactly the prefix
        and then crash with :class:`InjectedCrashError`.
        """
        if self.wal_torn_after_bytes is None:
            return payload, False
        if len(payload) <= self.wal_torn_after_bytes:
            self.wal_torn_after_bytes -= len(payload)
            return payload, False
        prefix = payload[: self.wal_torn_after_bytes]
        self.wal_torn_after_bytes = None
        self.fired.append("wal:torn-write")
        return prefix, True


class FaultyPager(Pager):
    """A pager with scheduled read faults.

    Counter semantics (every :meth:`read` call falls into exactly one
    outcome; ``reads_attempted`` counts them all):

    ``reads_attempted``
        Every call to :meth:`read`, whether it succeeded, failed hard,
        or returned corrupted bytes.
    ``reads_served``
        Calls that returned a payload — clean *or* corrupted.  Always
        ``reads_attempted - faults_hard``.
    ``corruptions_served``
        The subset of ``reads_served`` whose payload was silently
        corrupted, so clean reads are ``reads_served -
        corruptions_served``.
    ``faults_fired``
        Every injected fault, hard failures and corruptions alike.

    ``fail_after_reads=N`` is indexed on ``reads_attempted``: the first
    ``N`` read *attempts* proceed (even if some of them fail because of
    ``fail_pages``) and attempt ``N+1`` raises.  Earlier versions
    indexed it on served reads only, so a preceding ``fail_pages`` hit
    silently pushed the device failure to a later read index.
    """

    def __init__(
        self,
        page_size: int = 4096,
        fail_pages: Optional[Iterable[int]] = None,
        corrupt_pages: Optional[Iterable[int]] = None,
        fail_after_reads: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> None:
        super().__init__(page_size, metrics=metrics)
        self.fail_pages: Set[int] = set(fail_pages or ())
        self.corrupt_pages: Set[int] = set(corrupt_pages or ())
        self.fail_after_reads = fail_after_reads
        self.reads_attempted = 0
        self.reads_served = 0
        self.corruptions_served = 0
        self.faults_fired = 0

    def read(self, page_id: int, stream: str = "default") -> bytes:
        self.reads_attempted += 1
        if (
            self.fail_after_reads is not None
            and self.reads_attempted > self.fail_after_reads
        ):
            self._fire_fault("hard")
            raise StorageError(
                f"injected fault: device failed after "
                f"{self.fail_after_reads} reads"
            )
        if page_id in self.fail_pages:
            self._fire_fault("hard")
            raise StorageError(f"injected fault: unreadable page {page_id}")
        payload = super().read(page_id, stream)
        self.reads_served += 1
        if page_id in self.corrupt_pages:
            self._fire_fault("corruption")
            self.corruptions_served += 1
            if not payload:
                return payload
            # flip the lowest bit of the first byte: a silent corruption
            corrupted = bytes([payload[0] ^ 0x01]) + payload[1:]
            return corrupted
        return payload

    def _fire_fault(self, kind: str) -> None:
        self.faults_fired += 1
        if self.metrics is not None:
            from ..obs import observe_pager_fault

            observe_pager_fault(self.metrics, kind)
