"""Fault injection for the storage layer.

A :class:`FaultyPager` behaves exactly like a :class:`Pager` until a
scheduled fault fires: either a hard read error (:class:`StorageError`,
modelling a failed sector) or a silent single-bit corruption of the
returned page (modelling the uglier failure mode).  Tests use it to
verify that the engines neither swallow hard errors nor — in the
checked paths such as :mod:`repro.io` loading — accept corrupted bytes
silently.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..errors import StorageError
from .pager import Pager

__all__ = ["FaultyPager"]


class FaultyPager(Pager):
    """A pager with scheduled read faults.

    Counter semantics (every :meth:`read` call falls into exactly one
    outcome; ``reads_attempted`` counts them all):

    ``reads_attempted``
        Every call to :meth:`read`, whether it succeeded, failed hard,
        or returned corrupted bytes.
    ``reads_served``
        Calls that returned a payload — clean *or* corrupted.  Always
        ``reads_attempted - faults_hard``.
    ``corruptions_served``
        The subset of ``reads_served`` whose payload was silently
        corrupted, so clean reads are ``reads_served -
        corruptions_served``.
    ``faults_fired``
        Every injected fault, hard failures and corruptions alike.

    ``fail_after_reads=N`` is indexed on ``reads_attempted``: the first
    ``N`` read *attempts* proceed (even if some of them fail because of
    ``fail_pages``) and attempt ``N+1`` raises.  Earlier versions
    indexed it on served reads only, so a preceding ``fail_pages`` hit
    silently pushed the device failure to a later read index.
    """

    def __init__(
        self,
        page_size: int = 4096,
        fail_pages: Optional[Iterable[int]] = None,
        corrupt_pages: Optional[Iterable[int]] = None,
        fail_after_reads: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> None:
        super().__init__(page_size, metrics=metrics)
        self.fail_pages: Set[int] = set(fail_pages or ())
        self.corrupt_pages: Set[int] = set(corrupt_pages or ())
        self.fail_after_reads = fail_after_reads
        self.reads_attempted = 0
        self.reads_served = 0
        self.corruptions_served = 0
        self.faults_fired = 0

    def read(self, page_id: int, stream: str = "default") -> bytes:
        self.reads_attempted += 1
        if (
            self.fail_after_reads is not None
            and self.reads_attempted > self.fail_after_reads
        ):
            self._fire_fault("hard")
            raise StorageError(
                f"injected fault: device failed after "
                f"{self.fail_after_reads} reads"
            )
        if page_id in self.fail_pages:
            self._fire_fault("hard")
            raise StorageError(f"injected fault: unreadable page {page_id}")
        payload = super().read(page_id, stream)
        self.reads_served += 1
        if page_id in self.corrupt_pages:
            self._fire_fault("corruption")
            self.corruptions_served += 1
            if not payload:
                return payload
            # flip the lowest bit of the first byte: a silent corruption
            corrupted = bytes([payload[0] ^ 0x01]) + payload[1:]
            return corrupted
        return payload

    def _fire_fault(self, kind: str) -> None:
        self.faults_fired += 1
        if self.metrics is not None:
            from ..obs import observe_pager_fault

            observe_pager_fault(self.metrics, kind)
