"""An LRU buffer pool over the page simulator.

The paper's cost model charges every page access; a real system puts a
buffer pool in front of the disk, and repeated or overlapping queries
then hit memory.  :class:`BufferPool` adds that layer: reads go through
an LRU cache of fixed capacity, hits cost nothing on the underlying
pager (and are counted separately), misses fall through to
:meth:`Pager.read` and are recorded as usual.  The pool makes warm-vs-
cold behaviour an explicit, testable choice instead of an accident of
measurement — the disk engines measure cold by default; wrap their
pager in a pool to study the warm case (see the buffer ablation).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import StorageError
from .pager import Pager

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU page cache in front of a :class:`Pager`."""

    def __init__(self, pager: Pager, capacity: int) -> None:
        if not isinstance(pager, Pager):
            raise StorageError("BufferPool requires a Pager")
        if capacity < 1:
            raise StorageError(f"capacity must be >= 1 page; got {capacity}")
        self._pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def cached_pages(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def read(self, page_id: int, stream: str = "default") -> bytes:
        """Read a page through the cache.

        A hit serves the cached frame and touches neither the pager nor
        its access recorder; a miss reads through (recorded under
        ``stream``) and caches the frame, evicting the least recently
        used one if the pool is full.
        """
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        payload = self._pager.read(page_id, stream)
        self.misses += 1
        self._frames[page_id] = payload
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
        return payload

    def contains(self, page_id: int) -> bool:
        """True if the page is currently cached (no LRU touch)."""
        return page_id in self._frames

    def invalidate(self, page_id: int) -> None:
        """Drop one page from the cache (after an external write)."""
        self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached frame; keep the hit/miss counters."""
        self._frames.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
