"""Page-level storage simulator.

A :class:`Pager` is a flat array of fixed-size pages with an access
recorder.  Its single job is to make the disk engines honest: every page
an engine touches goes through :meth:`Pager.read`, which classifies the
access as *sequential* (the page immediately follows the last page read —
one disk head, no seek) or *random* (anything else, including the first
read after a :meth:`reset`).  The classification feeds
:class:`~repro.storage.diskmodel.DiskModel`.

Pages hold real bytes.  Engines that want zero-copy numpy views keep
their arrays separately and use :class:`PageAccessRecorder` alone; the
byte-backed :class:`Pager` is used by the column files and heap files so
that layout bugs (records straddling pages, bad page arithmetic) cannot
hide.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PageOverflowError, StorageError
from .diskmodel import PAGE_SIZE

__all__ = ["PageAccessRecorder", "Pager"]


class PageAccessRecorder:
    """Counts page reads, classifying sequential vs random access.

    Classification is per *stream*: every reader (a column walk, a heap
    scan, an inverted-list fetch) names the stream it reads under, and an
    access is sequential when it lands on a page adjacent to the stream's
    previous page — the behaviour of per-file read-ahead buffers, which
    is how a real system serves several concurrent scans without turning
    them all into seeks.  Reverse-adjacent reads (backward walk of a
    sorted column) also count as sequential: the buffer pool read-behind
    case.  Everything else — the first access of a stream, or any jump —
    is a seek, i.e. random.

    With a :class:`~repro.obs.MetricsRegistry` installed (``metrics=``),
    every counted read also increments ``repro_pager_reads_total`` with
    a ``pattern`` label; with no registry the extra cost is one ``is
    not None`` branch per read.
    """

    def __init__(self, metrics: Optional[object] = None) -> None:
        self.sequential_reads = 0
        self.random_reads = 0
        self.metrics = metrics
        self._last_page: dict = {}

    @property
    def total_reads(self) -> int:
        return self.sequential_reads + self.random_reads

    def record(self, page_id: int, stream: str = "default") -> None:
        """Record one read of ``page_id`` under ``stream``.

        Re-reading the stream's previous page is free: it is still in
        that stream's buffer.  (The engines exploit this when many
        consecutive records share a page.)
        """
        last = self._last_page.get(stream)
        if last is not None and page_id == last:
            return
        sequential = last is not None and abs(page_id - last) == 1
        if sequential:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_page[stream] = page_id
        if self.metrics is not None:
            from ..obs import observe_page_read

            observe_page_read(self.metrics, sequential)

    def reset(self) -> None:
        """Forget all stream positions and zero the counters."""
        self.sequential_reads = 0
        self.random_reads = 0
        self._last_page = {}

    def forget_streams(self) -> None:
        """Forget stream positions but keep the counters.

        Disk engines call this at query start so every query is measured
        cold — without it, a repeated query would ride the previous
        query's buffer positions and look cheaper than it is.
        """
        self._last_page = {}


class Pager:
    """An in-memory array of fixed-size pages with access accounting.

    ``metrics=`` installs a :class:`~repro.obs.MetricsRegistry` on the
    access recorder so page reads surface as pager-level counters.
    """

    def __init__(
        self, page_size: int = PAGE_SIZE, metrics: Optional[object] = None
    ) -> None:
        if page_size <= 0:
            raise StorageError(f"page size must be positive; got {page_size}")
        self.page_size = page_size
        self._pages: List[bytes] = []
        self.recorder = PageAccessRecorder(metrics=metrics)

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self.recorder.metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self.recorder.metrics = registry

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self, payload: bytes = b"") -> int:
        """Append a new page initialised with ``payload``; return its id.

        Pages are fixed-size: short payloads are zero-padded, oversized
        payloads raise :class:`PageOverflowError`.
        """
        if len(payload) > self.page_size:
            raise PageOverflowError(
                f"payload of {len(payload)} bytes exceeds page size "
                f"{self.page_size}"
            )
        page = payload + b"\x00" * (self.page_size - len(payload))
        self._pages.append(page)
        return len(self._pages) - 1

    def allocate_run(self, payload: bytes) -> range:
        """Split ``payload`` over as many contiguous pages as needed."""
        first = len(self._pages)
        for offset in range(0, max(len(payload), 1), self.page_size):
            self.allocate(payload[offset : offset + self.page_size])
        return range(first, len(self._pages))

    def read(self, page_id: int, stream: str = "default") -> bytes:
        """Read one page, recording the access under ``stream``."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"page {page_id} out of range [0, {len(self._pages)})"
            )
        self.recorder.record(page_id, stream)
        return self._pages[page_id]

    def write(self, page_id: int, payload: bytes) -> None:
        """Overwrite one page (no write-cost accounting: the paper's
        workload is read-only after the build phase)."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"page {page_id} out of range [0, {len(self._pages)})"
            )
        if len(payload) > self.page_size:
            raise PageOverflowError(
                f"payload of {len(payload)} bytes exceeds page size "
                f"{self.page_size}"
            )
        self._pages[page_id] = payload + b"\x00" * (self.page_size - len(payload))

    def reset_counters(self) -> None:
        self.recorder.reset()
