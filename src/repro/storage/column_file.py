"""Paged sorted-column files: the disk layout of the AD algorithm.

Sec. 4.1 of the paper: "First, we sort each dimension and store them
sequentially on disk.  Then we can use the same FKNMatchAD algorithm
except that, when reading the next attribute from the sorted dimensions,
if we reach the end of a page, we will read the next page from disk."

Each dimension is a contiguous run of pages holding ``(float32 value,
int32 point id)`` entries — 8 bytes each, 512 per 4 KB page, mirroring
the 2006 layout.  A small in-memory *page directory* (first value of each
page, built at load time) lets :meth:`locate` find the query's page with
no I/O beyond reading that one page; the AD walk then costs one page read
per 512 attributes consumed in a direction, sequential whenever the walk
moves to an adjacent page.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import validation
from ..errors import StorageError
from .pager import Pager

__all__ = ["ColumnFile", "SortedColumnStore"]

_ENTRY_DTYPE = np.dtype([("value", "<f4"), ("pid", "<i4")])


class ColumnFile:
    """One dimension stored as a contiguous run of sorted-entry pages."""

    def __init__(self, values: np.ndarray, ids: np.ndarray, pager: Pager) -> None:
        if values.shape != ids.shape or values.ndim != 1:
            raise StorageError("values and ids must be equal-length 1-D arrays")
        entries = np.empty(values.shape[0], dtype=_ENTRY_DTYPE)
        entries["value"] = values.astype(np.float32)
        entries["pid"] = ids.astype(np.int32)
        self._pager = pager
        self._length = entries.shape[0]
        self.entries_per_page = pager.page_size // _ENTRY_DTYPE.itemsize
        self._first_page = pager.page_count
        directory: List[float] = []
        for start in range(0, self._length, self.entries_per_page):
            block = entries[start : start + self.entries_per_page]
            directory.append(float(block["value"][0]))
            pager.allocate(block.tobytes())
        self._page_count = pager.page_count - self._first_page
        # First value of each page: the coarse in-memory index used to
        # locate a query value without touching the disk.
        self._directory = np.asarray(directory, dtype=np.float32)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        return self._length

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def first_page(self) -> int:
        return self._first_page

    def page_of_position(self, position: int) -> int:
        if not 0 <= position < self._length:
            raise StorageError(
                f"position {position} out of range [0, {self._length})"
            )
        return self._first_page + position // self.entries_per_page

    def read_entries(self, page_index: int, stream: str = "default") -> np.ndarray:
        """Entries of the ``page_index``-th page of this column.

        ``stream`` names the reader for sequential/random accounting:
        each AD cursor walks under its own stream, so its page-to-page
        progress is classified independently of the other 2d-1 cursors.
        """
        if not 0 <= page_index < self._page_count:
            raise StorageError(
                f"column page {page_index} out of range [0, {self._page_count})"
            )
        first_pos = page_index * self.entries_per_page
        count = min(self.entries_per_page, self._length - first_pos)
        payload = self._pager.read(self._first_page + page_index, stream)
        return np.frombuffer(payload, dtype=_ENTRY_DTYPE, count=count)

    def entry(self, position: int, stream: str = "default") -> Tuple[int, float]:
        """``(point id, value)`` at one sorted position (one page read)."""
        page_index = position // self.entries_per_page
        entries = self.read_entries(page_index, stream)
        row = entries[position - page_index * self.entries_per_page]
        return int(row["pid"]), float(row["value"])

    def locate(self, value: float) -> int:
        """Position of the first entry ``>= value``.

        Uses the in-memory page directory to pick the page, then one page
        read plus an in-page binary search — the disk analogue of
        Fig. 4's line 3.
        """
        # Last page whose first value is strictly below ``value``: the
        # first entry >= value is inside it, or at the start of the next
        # page (which the in-page search lands on when the whole page is
        # below).  side="left" matters when equal values span pages — the
        # earliest occurrence can live in a page whose first value is
        # still below.
        page_index = int(np.searchsorted(self._directory, value, side="left")) - 1
        if page_index < 0:
            return 0
        entries = self.read_entries(page_index, stream=f"locate@{self._first_page}")
        offset = int(np.searchsorted(entries["value"], value, side="left"))
        return page_index * self.entries_per_page + offset


class SortedColumnStore:
    """All ``d`` sorted dimensions of a database, paged on one device."""

    def __init__(self, data, pager: Pager) -> None:
        array = validation.as_database_array(data)
        c, d = array.shape
        self._pager = pager
        self._cardinality = c
        self._dimensionality = d
        order = np.argsort(array, axis=0, kind="stable")
        self._columns: List[ColumnFile] = []
        for j in range(d):
            values = array[order[:, j], j]
            self._columns.append(ColumnFile(values, order[:, j], pager))

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def total_attributes(self) -> int:
        return self._cardinality * self._dimensionality

    def column(self, dimension: int) -> ColumnFile:
        if not 0 <= dimension < self._dimensionality:
            raise StorageError(
                f"dimension {dimension} out of range [0, {self._dimensionality})"
            )
        return self._columns[dimension]
