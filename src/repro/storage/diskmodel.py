"""Calibrated disk cost model.

The paper's efficiency study (Sec. 5.2) ran on a 1.1 GHz desktop with a
2006-era disk; ours runs wherever pytest runs, so wall-clock time would
say more about this machine's page cache than about the algorithms.
Instead the disk engines *count* page accesses — split into sequential and
random, because the paper's analysis hinges on that distinction ("random
accesses of all the fragments are much more expensive than when they are
clustered together and accessed sequentially") — and :class:`DiskModel`
converts the counts into simulated seconds.

The default constants approximate a 2006 commodity drive (~10 ms seek +
rotational latency dominated random 4 KB reads; ~40 MB/s sequential
transfer) and a ~1 GHz CPU.  They are ordinary dataclass fields: every
experiment can re-run under a different device profile (an SSD profile is
provided) to see how the AD-vs-scan trade-off moves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.types import SearchStats

__all__ = ["DiskModel", "DEFAULT_DISK_MODEL", "SSD_DISK_MODEL", "PAGE_SIZE"]

#: Default page size in bytes (the paper uses 4096-byte data pages).
PAGE_SIZE = 4096


@dataclass(frozen=True)
class DiskModel:
    """Converts :class:`SearchStats` counters into simulated seconds."""

    page_size: int = PAGE_SIZE
    #: seconds to read one page adjacent to its stream's previous page
    #: (~40 MB/s sequential transfer of 4 KB pages)
    sequential_read_seconds: float = 1e-4
    #: seconds to read one page anywhere else (seek + rotation)
    random_read_seconds: float = 5e-3
    #: CPU seconds to process one retrieved attribute — difference,
    #: comparisons, heap/top-k work — on a ~1 GHz 2006 CPU; also applied
    #: to approximation entries
    cpu_seconds_per_attribute: float = 1e-6
    #: CPU seconds to process one inverted-list entry (IGrid)
    cpu_seconds_per_list_entry: float = 1e-6

    def simulated_seconds(self, stats: SearchStats) -> float:
        """Total simulated response time for one query's counters."""
        io = (
            stats.sequential_page_reads * self.sequential_read_seconds
            + stats.random_page_reads * self.random_read_seconds
        )
        cpu = (
            stats.attributes_retrieved + stats.approximation_entries_scanned
        ) * self.cpu_seconds_per_attribute
        cpu += stats.inverted_list_entries * self.cpu_seconds_per_list_entry
        return io + cpu

    def with_page_size(self, page_size: int) -> "DiskModel":
        """A copy of this model re-calibrated for a different page size.

        ``sequential_read_seconds`` is a *transfer-bound* per-page cost
        (the drive streams bytes at a fixed MB/s), so it scales linearly
        with the page size: a model whose pages are twice as large takes
        twice as long per sequential page.  ``random_read_seconds`` is
        seek/rotation dominated and the CPU constants are per-attribute,
        so none of them move with the page size.
        """
        from ..errors import ValidationError

        if page_size < 1:
            raise ValidationError(
                f"page_size must be >= 1 byte; got {page_size}"
            )
        scale = page_size / self.page_size
        return replace(
            self,
            page_size=page_size,
            sequential_read_seconds=self.sequential_read_seconds * scale,
        )


#: 2006-era commodity hard drive (the paper's setting).
DEFAULT_DISK_MODEL = DiskModel()

#: A modern SSD profile: random reads barely cost more than sequential.
#: Useful for the ablation benchmark showing the scan/AD crossover move.
SSD_DISK_MODEL = DiskModel(
    sequential_read_seconds=2e-5,
    random_read_seconds=8e-5,
    cpu_seconds_per_attribute=2e-8,
    cpu_seconds_per_list_entry=2e-8,
)
