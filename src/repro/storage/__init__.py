"""Disk substrate: pages, files and the calibrated cost model."""

from .buffer import BufferPool
from .column_file import ColumnFile, SortedColumnStore
from .fault import FaultyPager
from .diskmodel import DEFAULT_DISK_MODEL, PAGE_SIZE, SSD_DISK_MODEL, DiskModel
from .heapfile import HeapFile
from .pager import PageAccessRecorder, Pager

__all__ = [
    "Pager",
    "PageAccessRecorder",
    "BufferPool",
    "FaultyPager",
    "HeapFile",
    "ColumnFile",
    "SortedColumnStore",
    "DiskModel",
    "DEFAULT_DISK_MODEL",
    "SSD_DISK_MODEL",
    "PAGE_SIZE",
]
