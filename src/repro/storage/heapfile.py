"""Row-oriented heap file: the layout the scan and VA-file engines read.

Points are stored row-major, fixed-width, as many as fit per page.  Like
the paper (and the original VA-file work) attributes are 4-byte floats —
the data is normalised to [0, 1] so float32 is plenty, and it keeps the
file sizes, and therefore the page-count ratios between engines, faithful
to the 2006 setting.

Two access paths are offered, matching the two phases the paper analyses:

* :meth:`scan` — full sequential sweep (the scan engine, VA phase 1's
  analogue for the raw file);
* :meth:`fetch_points` — retrieve specific points by id (VA phase 2's
  refinement); page accesses come out sequential only when luck places
  candidates on adjacent pages, which is exactly the effect behind
  Fig. 10(b).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..core import validation
from ..errors import StorageError
from .pager import Pager

__all__ = ["HeapFile"]


class HeapFile:
    """Fixed-width row storage of a ``(c, d)`` float32 matrix."""

    def __init__(self, data, pager: Pager) -> None:
        array = validation.as_database_array(data).astype(np.float32)
        c, d = array.shape
        row_bytes = d * 4
        if row_bytes > pager.page_size:
            raise StorageError(
                f"one point needs {row_bytes} bytes but pages hold only "
                f"{pager.page_size}; raise the page size"
            )
        self._pager = pager
        self._cardinality = c
        self._dimensionality = d
        self.points_per_page = pager.page_size // row_bytes
        self._first_page = pager.page_count
        for start in range(0, c, self.points_per_page):
            block = array[start : start + self.points_per_page]
            pager.allocate(block.tobytes())
        self._page_count = pager.page_count - self._first_page

    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def pager(self) -> Pager:
        return self._pager

    def page_of_point(self, pid: int) -> int:
        """The pager page id holding point ``pid``."""
        if not 0 <= pid < self._cardinality:
            raise StorageError(
                f"point {pid} out of range [0, {self._cardinality})"
            )
        return self._first_page + pid // self.points_per_page

    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Sequential sweep yielding ``(first point id, rows)`` per page."""
        stream = f"heap-scan@{self._first_page}"
        for index in range(self._page_count):
            page_id = self._first_page + index
            first_pid = index * self.points_per_page
            rows_here = min(self.points_per_page, self._cardinality - first_pid)
            payload = self._pager.read(page_id, stream)
            rows = np.frombuffer(
                payload, dtype=np.float32, count=rows_here * self._dimensionality
            ).reshape(rows_here, self._dimensionality)
            yield first_pid, rows

    def fetch_points(self, ids: Sequence[int]) -> np.ndarray:
        """Fetch specific points by id; returns rows in the given order.

        Pages are visited in ascending order (the best any refinement
        phase can do); each distinct page is read once.
        """
        ids = list(ids)
        out = np.empty((len(ids), self._dimensionality), dtype=np.float32)
        by_page: dict = {}
        for position, pid in enumerate(ids):
            by_page.setdefault(self.page_of_point(pid), []).append((position, pid))
        stream = f"heap-fetch@{self._first_page}"
        for page_id in sorted(by_page):
            payload = self._pager.read(page_id, stream)
            first_pid = (page_id - self._first_page) * self.points_per_page
            rows_here = min(self.points_per_page, self._cardinality - first_pid)
            rows = np.frombuffer(
                payload, dtype=np.float32, count=rows_here * self._dimensionality
            ).reshape(rows_here, self._dimensionality)
            for position, pid in by_page[page_id]:
                out[position] = rows[pid - first_pid]
        return out

    def read_all(self) -> np.ndarray:
        """The whole matrix via a sequential scan (convenience)."""
        parts: List[np.ndarray] = [rows for _first, rows in self.scan()]
        return np.vstack(parts) if parts else np.empty(
            (0, self._dimensionality), dtype=np.float32
        )
