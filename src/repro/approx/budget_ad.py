"""``budget-ad``: early-terminated AD with a sound recall certificate.

The AD consumption order (paper §4, Thm 3.1) pops (point, attribute)
pairs in globally ascending difference order, which buys two facts at
any stopping moment:

* every point that completed ``n`` appearances is an exact answer
  member candidate with its *exact* n-match difference in hand;
* every point that did not has an n-match difference of at least the
  next frontier difference ``L`` — completing it needs one more
  attribute, and attributes arrive ascending.

``budget-ad`` spends an attribute budget on that frontier
(``approx_filter``), then exactly re-ranks the most-seen partial points
(``approx_rerank`` — appearance count is a free relevance signal the
frontier already paid for) and returns the best ``k`` of both pools in
canonical (difference, id) order.  Certification: a returned id whose
exact difference is ``<= L`` is **provably** in the exact tie-aware
top-k — fewer than ``k`` points can beat it, because anything unseen
costs at least ``L`` and anything cheaper already completed.  The
certificate is ``certified_count / k``.

``budget=None`` (or a budget covering every attribute) delegates to the
exact block-AD engine, so unbudgeted answers are byte-identical to
``mode="exact"``.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

import numpy as np

from ..core import validation
from ..core.ad_block import BlockADEngine
from ..core.types import SearchStats
from ..errors import ValidationError
from ..sorted_lists import (
    AscendingDifferenceFrontier,
    SortedColumns,
    make_cursors,
)
from .params import (
    validate_budget,
    validate_candidate_multiplier,
    validate_target_recall,
)
from .types import ApproxResult

__all__ = ["BudgetADEngine", "DEFAULT_REFINE_MULTIPLIER"]

#: Partial points exactly re-ranked per answer slot when the caller
#: does not size the pool: 2k re-ranks cost ``2 k d`` attributes — noise
#: next to any useful frontier budget — and in practice recover most of
#: the uncertified tail.
DEFAULT_REFINE_MULTIPLIER = 2


class BudgetADEngine:
    """Budgeted AD search with per-query recall certificates."""

    name = "budget-ad"

    def __init__(self, data, metrics=None, spans=None) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)
        self._metrics = metrics
        self._spans = spans
        self._exact_engine: Optional[BlockADEngine] = None

    @property
    def columns(self) -> SortedColumns:
        return self._columns

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    def _exact(self) -> BlockADEngine:
        # Unmetered on purpose: delegated queries are budget-ad queries,
        # not block-ad queries — this engine records its own telemetry.
        if self._exact_engine is None:
            self._exact_engine = BlockADEngine(self._columns)
        return self._exact_engine

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
    ) -> ApproxResult:
        """Budgeted k-n-match (see the module docstring).

        ``budget`` caps the attributes the AD frontier consumes
        (re-ranking partial candidates is charged to ``stats``, not the
        budget).  ``target_recall`` is the budget spelled as a fraction
        of the total attribute count; passing both is rejected.
        ``candidate_multiplier`` sizes the re-rank pool (default
        ``2k``).
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, n = validation.validate_match_args(query, k, n, c, d)
        budget = validate_budget(budget)
        target_recall = validate_target_recall(target_recall)
        multiplier = (
            validate_candidate_multiplier(candidate_multiplier)
            or DEFAULT_REFINE_MULTIPLIER
        )
        if budget is not None and target_recall is not None:
            raise ValidationError(
                "budget and target_recall are mutually exclusive; pass one"
            )
        total = self._columns.total_attributes
        if target_recall is not None:
            budget = (
                total
                if target_recall >= 1.0
                else int(math.ceil(target_recall * total))
            )

        started = time.perf_counter()
        if budget is None or budget >= total:
            result = self._delegate_exact(query, k, n, budget)
        else:
            result = self._search(query, k, n, budget, multiplier)
        if self._metrics is not None:
            from ..obs import observe_approx_query

            observe_approx_query(
                self._metrics,
                self.name,
                "k_n_match",
                result.stats,
                time.perf_counter() - started,
                d,
                result.certified_recall,
            )
        return result

    # ------------------------------------------------------------------
    def _delegate_exact(self, query, k, n, budget) -> ApproxResult:
        """Unbudgeted answer: exact block-AD, certified in full."""
        spans = self._spans
        if spans is None:
            exact = self._exact().k_n_match(query, k, n)
        else:
            with spans.span(
                f"{self.name}/k_n_match", k=k, n=n, delegated="block-ad"
            ):
                exact = self._exact().k_n_match(query, k, n)
        return ApproxResult(
            ids=list(exact.ids),
            differences=list(exact.differences),
            k=k,
            n=n,
            engine=self.name,
            certified_recall=1.0,
            certified_count=k,
            unseen_lower_bound=None,
            exact=True,
            budget=budget,
            stats=exact.stats,
        )

    def _search(self, query, k, n, budget, multiplier) -> ApproxResult:
        spans = self._spans
        if spans is None:
            return self._search_impl(query, k, n, budget, multiplier)
        with spans.span(f"{self.name}/k_n_match", k=k, n=n, budget=budget):
            return self._search_impl(query, k, n, budget, multiplier)

    def _search_impl(self, query, k, n, budget, multiplier) -> ApproxResult:
        c, d = self._columns.cardinality, self._columns.dimensionality
        spans = self._spans

        # Phase 1 (approx_filter): spend the budget on the AD frontier.
        frontier = AscendingDifferenceFrontier(
            make_cursors(self._columns, query)
        )
        appear = np.zeros(c, dtype=np.int32)
        prefix_ids: List[int] = []
        prefix_diffs: List[float] = []

        def _consume() -> None:
            while len(prefix_ids) < k:
                if frontier.attributes_retrieved >= budget:
                    break
                popped = frontier.pop()
                if popped is None:
                    break
                pid, _slot, dif = popped
                appear[pid] += 1
                if appear[pid] == n:
                    prefix_ids.append(pid)
                    prefix_diffs.append(dif)

        if spans is None:
            _consume()
        else:
            with spans.span("approx_filter", budget=budget):
                _consume()
                spans.annotate(
                    attributes=int(frontier.attributes_retrieved),
                    verified=len(prefix_ids),
                )
        bound = frontier.peek_difference()  # None <=> frontier exhausted

        # Phase 2 (approx_rerank): exactly re-rank the most-seen partial
        # points.  Skipped when the prefix already holds k answers.
        chosen = np.empty(0, dtype=np.int64)
        refined_diffs = np.empty(0, dtype=np.float64)
        want = max(0, multiplier * k - len(prefix_ids))
        if want and len(prefix_ids) < k:
            partial = np.flatnonzero((appear > 0) & (appear < n))
            if partial.size:

                def _rerank():
                    order = np.lexsort((partial, -appear[partial]))
                    counts = appear[partial][order]
                    keep = order.size
                    if keep > want:
                        # Never cut inside an appearance-count tie: the
                        # pid tie-break is arbitrary, and dropping a tied
                        # candidate can make a *larger* budget return a
                        # worse answer (certified recall must be
                        # monotone in budget).
                        cutoff = counts[want - 1]
                        keep = int(
                            np.searchsorted(-counts, -cutoff, side="right")
                        )
                    picked = partial[order[:keep]].astype(np.int64)
                    rows = self._columns.data[picked]
                    diffs = np.partition(
                        np.abs(rows - query), n - 1, axis=1
                    )[:, n - 1]
                    return picked, diffs

                if spans is None:
                    chosen, refined_diffs = _rerank()
                else:
                    with spans.span("approx_rerank"):
                        chosen, refined_diffs = _rerank()
                        spans.annotate(candidates=int(chosen.size))

        # Best k of both pools, canonical (difference, id) order.
        all_ids = np.concatenate(
            [np.asarray(prefix_ids, dtype=np.int64), chosen]
        )
        all_diffs = np.concatenate(
            [np.asarray(prefix_diffs, dtype=np.float64), refined_diffs]
        )
        order = np.lexsort((all_ids, all_diffs))[:k]
        out_ids = all_ids[order]
        out_diffs = all_diffs[order]

        limit = np.inf if bound is None else bound
        certified_count = int(np.count_nonzero(out_diffs <= limit))

        stats = SearchStats(
            attributes_retrieved=frontier.attributes_retrieved
            + int(chosen.size) * d,
            total_attributes=self._columns.total_attributes,
            heap_pops=frontier.pops,
            binary_search_probes=d,
            candidates_refined=int(chosen.size),
        )
        return ApproxResult(
            ids=[int(pid) for pid in out_ids],
            differences=[float(dif) for dif in out_diffs],
            k=k,
            n=n,
            engine=self.name,
            certified_recall=certified_count / k,
            certified_count=certified_count,
            unseen_lower_bound=bound,
            exact=certified_count == k,
            budget=budget,
            stats=stats,
        )
