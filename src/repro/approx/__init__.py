"""Approximate search tier with per-query recall certificates.

Two engines behind one :class:`~repro.approx.types.ApproxResult`:

* ``budget-ad`` (:class:`~repro.approx.budget_ad.BudgetADEngine`) —
  early-terminated AD under an attribute budget; its answers carry a
  *sound* per-query recall certificate derived from the anytime
  frontier's lower bound (``certified_recall`` never exceeds the true
  recall).
* ``pivot-sketch`` (:class:`~repro.approx.sketch.PivotSketchEngine`) —
  a permutation/pivot sketch filter with exact re-ranking; fast,
  tunable via a candidate multiplier, but uncertified
  (``certified_recall == 0.0`` short of a full scan).

Entry points: ``MatchDatabase.k_n_match(..., mode="approx",
budget=/target_recall=)`` (also the sharded facade, ``serve`` requests
with ``"mode": "approx"``, and the CLI ``--mode approx``).  Exact mode
is the default everywhere and stays byte-identical to a build without
this package.  See ``docs/approx.md``.
"""

from .budget_ad import DEFAULT_REFINE_MULTIPLIER, BudgetADEngine
from .params import (
    APPROX_ENGINE_CHOICES,
    APPROX_ENGINE_NAMES,
    APPROX_FREQUENT_MESSAGE,
    APPROX_UNSUPPORTED_MESSAGE,
    DEFAULT_APPROX_ENGINE,
    DEFAULT_TARGET_RECALL,
    MODES,
    multiplier_from_target_recall,
    validate_approx_engine,
    validate_approx_params,
    validate_budget,
    validate_candidate_multiplier,
    validate_mode,
    validate_target_recall,
)
from .sketch import (
    DEFAULT_CANDIDATE_MULTIPLIER,
    DEFAULT_PIVOTS,
    PivotSketchEngine,
    PivotSketchIndex,
)
from .types import ApproxResult

__all__ = [
    "ApproxResult",
    "BudgetADEngine",
    "PivotSketchEngine",
    "PivotSketchIndex",
    "APPROX_ENGINE_NAMES",
    "APPROX_ENGINE_CHOICES",
    "DEFAULT_APPROX_ENGINE",
    "DEFAULT_TARGET_RECALL",
    "DEFAULT_CANDIDATE_MULTIPLIER",
    "DEFAULT_PIVOTS",
    "DEFAULT_REFINE_MULTIPLIER",
    "MODES",
    "APPROX_UNSUPPORTED_MESSAGE",
    "APPROX_FREQUENT_MESSAGE",
    "validate_mode",
    "validate_approx_engine",
    "validate_budget",
    "validate_target_recall",
    "validate_candidate_multiplier",
    "validate_approx_params",
    "multiplier_from_target_recall",
]
