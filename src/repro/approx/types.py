"""Result type shared by every approximate engine.

An :class:`ApproxResult` looks like a :class:`~repro.core.types.MatchResult`
(ids + ascending n-match differences) with the approximation contract
attached:

* ``certified_recall`` — a *sound per-query lower bound* on the recall
  of ``ids`` against the exact tie-aware top-k.  ``certified_count`` of
  the returned ids are **provably** members of the exact answer (their
  exact n-match difference is at most ``unseen_lower_bound``, the
  certified lower bound on every point the engine did not finish);
  dividing by ``k`` gives the certificate.  The certificate never
  exceeds the true recall — measured recall >= certified recall on
  every query is the invariant the test suite pins.
* ``budget`` — the attribute budget the query was asked to respect
  (``None`` for unbudgeted runs); ``stats.attributes_retrieved`` is
  what was actually spent, including exact re-ranking.
* ``exact`` — True when the whole answer is certified (the result is a
  valid exact tie-aware answer; ``certified_recall == 1.0``).

Differences are exact for every returned id — approximation only ever
drops candidates, it never reports a wrong difference — so results
re-rank and merge with the exact machinery unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.types import SearchStats

__all__ = ["ApproxResult"]


@dataclass
class ApproxResult:
    """Answer of an approximate k-n-match query (see module docstring)."""

    ids: List[int]
    differences: List[float]
    k: int
    n: int
    engine: str
    certified_recall: float
    certified_count: int
    unseen_lower_bound: Optional[float]
    exact: bool
    budget: Optional[int] = None
    stats: SearchStats = field(default_factory=SearchStats)
    trace: Optional[object] = None

    @property
    def match_difference(self) -> float:
        """The largest (k-th) returned n-match difference."""
        return max(self.differences) if self.differences else float("inf")

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(zip(self.ids, self.differences))
