"""Approximate-tier parameter validation and canonical messages.

Every layer that accepts approximate-search knobs — the flat facade,
the sharded facade, ``serve``, the CLI — funnels through these
validators, so the same bad input raises the same
:class:`~repro.errors.ValidationError` (same message, same valid-value
list) everywhere.  ``serve`` forwards the messages verbatim as
structured 400s per the canonical-error convention.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.validation import _as_int
from ..errors import ValidationError

__all__ = [
    "APPROX_ENGINE_NAMES",
    "APPROX_ENGINE_CHOICES",
    "DEFAULT_APPROX_ENGINE",
    "DEFAULT_TARGET_RECALL",
    "MODES",
    "APPROX_UNSUPPORTED_MESSAGE",
    "APPROX_FREQUENT_MESSAGE",
    "validate_mode",
    "validate_approx_engine",
    "validate_budget",
    "validate_target_recall",
    "validate_candidate_multiplier",
    "validate_approx_params",
    "multiplier_from_target_recall",
]

#: The approximate engines, registry order.  ``budget-ad`` certifies,
#: ``pivot-sketch`` filters; see :mod:`repro.approx`.
APPROX_ENGINE_NAMES = ("budget-ad", "pivot-sketch")

#: What callers may pass as ``engine=`` under ``mode="approx"``: every
#: approx engine plus the planner pseudo-engine.
APPROX_ENGINE_CHOICES = APPROX_ENGINE_NAMES + ("auto",)

#: The engine an approx query runs on when none is named: the certified
#: one — a caller who asked for approximation but named nothing gets a
#: sound per-query certificate by default.
DEFAULT_APPROX_ENGINE = "budget-ad"

#: The recall hint applied when an approx query names neither a budget
#: nor a target (a bare ``mode="approx"`` must not silently be exact).
DEFAULT_TARGET_RECALL = 0.9

#: The query modes; ``None`` means ``"exact"`` everywhere.
MODES = ("exact", "approx")

#: Canonical message for facades without an approximate path (e.g. the
#: mutable store).  ``serve`` returns it verbatim as a structured 400.
APPROX_UNSUPPORTED_MESSAGE = (
    "this database does not support approximate queries; "
    "use mode='exact' or drop the 'mode' field"
)

#: Canonical message for ``mode="approx"`` on a frequent k-n-match:
#: the frequency vote has no per-query certificate semantics.
APPROX_FREQUENT_MESSAGE = (
    "approximate mode does not support frequent_k_n_match; "
    "use mode='exact'"
)


def validate_mode(mode: Optional[str]) -> str:
    """Normalise a ``mode=`` value; ``None`` means ``"exact"``."""
    if mode is None:
        return "exact"
    if mode not in MODES:
        raise ValidationError(f"unknown mode {mode!r}; choose from {MODES}")
    return mode


def validate_approx_engine(name: str) -> str:
    """Check an engine name against the approximate registry."""
    if name not in APPROX_ENGINE_NAMES:
        raise ValidationError(
            f"unknown approx engine {name!r}; "
            f"choose from {APPROX_ENGINE_CHOICES}"
        )
    return name


def validate_budget(budget) -> Optional[int]:
    """Check an attribute budget (``None`` means unbudgeted/exact)."""
    if budget is None:
        return None
    budget = _as_int("budget", budget)
    if budget < 0:
        raise ValidationError(f"budget must be >= 0; got {budget}")
    return budget


def validate_target_recall(target_recall) -> Optional[float]:
    """Check a recall hint lies in ``[0, 1]`` (``None`` means unset)."""
    if target_recall is None:
        return None
    if isinstance(target_recall, bool) or not isinstance(
        target_recall, (int, float)
    ):
        raise ValidationError(
            f"target_recall must be a number; got {target_recall!r}"
        )
    value = float(target_recall)
    if not 0.0 <= value <= 1.0 or math.isnan(value):
        raise ValidationError(
            f"target_recall must be within [0.0, 1.0]; got {target_recall}"
        )
    return value


def validate_candidate_multiplier(multiplier) -> Optional[int]:
    """Check a pivot-sketch candidate multiplier (``None`` means default)."""
    if multiplier is None:
        return None
    multiplier = _as_int("candidate_multiplier", multiplier)
    if multiplier < 1:
        raise ValidationError(
            f"candidate_multiplier must be >= 1; got {multiplier}"
        )
    return multiplier


def validate_approx_params(mode, budget, target_recall, candidate_multiplier):
    """Validate the approx knobs together, in one canonical order.

    Returns ``(mode, budget, target_recall, candidate_multiplier)``
    coerced.  The knobs only mean something under ``mode="approx"``, and
    ``budget`` / ``target_recall`` are two ways of saying the same thing
    — both at once is a contradiction, not a preference.
    """
    mode = validate_mode(mode)
    budget = validate_budget(budget)
    target_recall = validate_target_recall(target_recall)
    candidate_multiplier = validate_candidate_multiplier(candidate_multiplier)
    extras = (budget, target_recall, candidate_multiplier)
    if mode != "approx" and any(value is not None for value in extras):
        raise ValidationError(
            "budget/target_recall/candidate_multiplier require mode='approx'"
        )
    if budget is not None and target_recall is not None:
        raise ValidationError(
            "budget and target_recall are mutually exclusive; pass one"
        )
    return mode, budget, target_recall, candidate_multiplier


def multiplier_from_target_recall(target_recall: float) -> int:
    """Map a recall hint to a pivot-sketch candidate multiplier.

    The sketch has no certificate, so the hint only sizes the candidate
    set: the closer to 1.0 the caller asks, the more candidates are
    re-ranked exactly.  ``4 / (1 - r)`` clamped to ``[4, 64]`` spans
    4x (r<=0) to 64x (r>=0.94) — past that, ask for ``mode="exact"``.
    """
    if target_recall >= 1.0:
        return 0  # sentinel: re-rank everything (exact)
    return int(min(64, max(4, math.ceil(4.0 / (1.0 - target_recall)))))
