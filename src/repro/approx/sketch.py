"""``pivot-sketch``: permutation filtering for the n-match difference.

Permutation search (Naidan & Boytsov, "Permutation Search Methods are
Efficient, Yet Faster Search is Possible") indexes each point by the
*order* in which a fixed pivot set would rank it — close points see the
pivots in a similar order even when the underlying dissimilarity is
non-metric, which the n-match difference is (it picks its ``n`` best
dimensions per pair, so the triangle inequality is off the table and
classic metric pruning with it; Boytsov & Nyberg's non-metric pruning
work motivates filtering by rank agreement instead of by distance
bounds).

Build (once, chunked): Floyd-sample ``p`` pivots from the data (the
advisor's :func:`~repro.core.advisor.sample_row_ids`), compute every
point's n-match difference to each pivot at a fixed reference ``n``
(``ceil(d/2)`` by default — the middle of the range the sketch must
serve), and store each point's pivot *rank permutation* as a
``(cardinality, p)`` int32 matrix.

Query (``approx_filter``): rank the pivots around the query the same
way and score every point by Spearman footrule distance between rank
vectors — one vectorised ``O(c p)`` pass, no per-point attribute
access.  The best ``candidate_multiplier * k`` points by (score, id)
are then re-ranked *exactly* (``approx_rerank``) with the column data,
so every returned difference is exact and the canonical
(difference, id) order is preserved.

The sketch certifies nothing (``certified_recall == 0.0``) unless the
candidate set covers the whole database, in which case the "filter" was
a full exact scan and the answer is canonical.  When a sound
certificate matters more than wall clock, use ``budget-ad``.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..core import validation
from ..core.advisor import sample_row_ids
from ..core.types import SearchStats
from ..errors import ValidationError
from ..sorted_lists import SortedColumns
from .params import (
    multiplier_from_target_recall,
    validate_budget,
    validate_candidate_multiplier,
    validate_target_recall,
)
from .types import ApproxResult

__all__ = [
    "PivotSketchEngine",
    "PivotSketchIndex",
    "DEFAULT_PIVOTS",
    "DEFAULT_CANDIDATE_MULTIPLIER",
]

#: Pivot count: 16 ranks fit one cache line per point and already
#: separate clusters well at the dimensionalities the paper studies.
DEFAULT_PIVOTS = 16

#: Candidates re-ranked exactly per answer slot when the caller sizes
#: nothing: 8k exact re-ranks keep recall high on clustered data while
#: touching a small fraction of a large database.
DEFAULT_CANDIDATE_MULTIPLIER = 8

_BLOCK_ROWS = 4096  # build-time chunk: bounds the (rows, p, d) temporary


class PivotSketchIndex:
    """The precomputed pivot rank-permutation matrix (see module doc)."""

    def __init__(
        self,
        columns: SortedColumns,
        pivots: int = DEFAULT_PIVOTS,
        seed: int = 0,
        reference_n: Optional[int] = None,
    ) -> None:
        data = columns.data
        c, d = data.shape
        pivots = validation._as_int("pivots", pivots)
        if pivots < 1:
            raise ValidationError(f"pivots must be >= 1; got {pivots}")
        if reference_n is None:
            reference_n = max(1, math.ceil(d / 2))
        self.reference_n = validation.validate_n(reference_n, d)
        self.seed = int(seed)
        self.pivot_ids = sample_row_ids(c, pivots, seed=seed)
        self.pivot_rows = np.ascontiguousarray(data[self.pivot_ids])
        p = self.pivot_ids.shape[0]
        ranks = np.empty((c, p), dtype=np.int32)
        for start in range(0, c, _BLOCK_ROWS):
            block = data[start : start + _BLOCK_ROWS]
            diffs = np.abs(block[:, None, :] - self.pivot_rows[None, :, :])
            nmatch = np.partition(diffs, self.reference_n - 1, axis=2)[
                :, :, self.reference_n - 1
            ]
            order = np.argsort(nmatch, axis=1, kind="stable")
            ranks[start : start + block.shape[0]] = np.argsort(
                order, axis=1, kind="stable"
            )
        self.ranks = ranks

    @property
    def pivot_count(self) -> int:
        return self.pivot_ids.shape[0]

    @property
    def nbytes(self) -> int:
        """Sketch memory: the rank matrix plus the pivot rows."""
        return self.ranks.nbytes + self.pivot_rows.nbytes

    def query_ranks(self, query: np.ndarray) -> np.ndarray:
        """The query's pivot rank permutation (same recipe as build)."""
        diffs = np.abs(query[None, :] - self.pivot_rows)
        nmatch = np.partition(diffs, self.reference_n - 1, axis=1)[
            :, self.reference_n - 1
        ]
        order = np.argsort(nmatch, kind="stable")
        return np.argsort(order, kind="stable").astype(np.int32)


class PivotSketchEngine:
    """Permutation-sketch filter + exact re-rank (see module docstring)."""

    name = "pivot-sketch"

    def __init__(
        self,
        data,
        pivots: int = DEFAULT_PIVOTS,
        seed: int = 0,
        reference_n: Optional[int] = None,
        metrics=None,
        spans=None,
    ) -> None:
        if isinstance(data, SortedColumns):
            self._columns = data
        else:
            self._columns = SortedColumns(data)
        self._pivots = pivots
        self._seed = seed
        self._reference_n = reference_n
        self._index: Optional[PivotSketchIndex] = None
        self._metrics = metrics
        self._spans = spans

    @property
    def columns(self) -> SortedColumns:
        return self._columns

    @property
    def cardinality(self) -> int:
        return self._columns.cardinality

    @property
    def dimensionality(self) -> int:
        return self._columns.dimensionality

    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def spans(self):
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def index(self) -> PivotSketchIndex:
        """The sketch, built lazily on first use (then reused)."""
        if self._index is None:
            self._index = PivotSketchIndex(
                self._columns,
                pivots=self._pivots,
                seed=self._seed,
                reference_n=self._reference_n,
            )
        return self._index

    # ------------------------------------------------------------------
    def k_n_match(
        self,
        query,
        k: int,
        n: int,
        budget: Optional[int] = None,
        target_recall: Optional[float] = None,
        candidate_multiplier: Optional[int] = None,
    ) -> ApproxResult:
        """Sketch-filtered k-n-match.

        The candidate set is sized by the first of
        ``candidate_multiplier`` (``multiplier * k`` candidates),
        ``target_recall`` (mapped through
        :func:`~repro.approx.params.multiplier_from_target_recall`;
        1.0 re-ranks everything, i.e. an exact scan) or ``budget``
        (``budget // d`` candidates — the re-rank is what touches
        attributes).  Default: ``8k`` candidates.
        """
        c, d = self._columns.cardinality, self._columns.dimensionality
        query, k, n = validation.validate_match_args(query, k, n, c, d)
        budget = validate_budget(budget)
        target_recall = validate_target_recall(target_recall)
        candidate_multiplier = validate_candidate_multiplier(
            candidate_multiplier
        )
        if budget is not None and target_recall is not None:
            raise ValidationError(
                "budget and target_recall are mutually exclusive; pass one"
            )
        if candidate_multiplier is not None:
            count = min(c, candidate_multiplier * k)
        elif target_recall is not None:
            multiplier = multiplier_from_target_recall(target_recall)
            count = c if multiplier == 0 else min(c, multiplier * k)
        elif budget is not None:
            count = min(c, budget // d)
        else:
            count = min(c, DEFAULT_CANDIDATE_MULTIPLIER * k)

        started = time.perf_counter()
        spans = self._spans
        if spans is None:
            result = self._search_impl(query, k, n, count, budget)
        else:
            with spans.span(
                f"{self.name}/k_n_match", k=k, n=n, candidates=count
            ):
                result = self._search_impl(query, k, n, count, budget)
        if self._metrics is not None:
            from ..obs import observe_approx_query

            observe_approx_query(
                self._metrics,
                self.name,
                "k_n_match",
                result.stats,
                time.perf_counter() - started,
                d,
                result.certified_recall,
            )
        return result

    def _search_impl(self, query, k, n, count, budget) -> ApproxResult:
        c, d = self._columns.cardinality, self._columns.dimensionality
        spans = self._spans
        index = self.index
        p = index.pivot_count

        # Phase 1 (approx_filter): footrule-score every point against
        # the query's pivot permutation; pick the best `count` by the
        # deterministic (score, id) composite key.
        def _filter():
            if count >= c:
                return np.arange(c, dtype=np.int64)
            qranks = index.query_ranks(query)
            scores = np.abs(
                index.ranks.astype(np.int64) - qranks[None, :]
            ).sum(axis=1)
            composite = scores * c + np.arange(c, dtype=np.int64)
            if count == 0:
                return np.empty(0, dtype=np.int64)
            return np.argpartition(composite, count - 1)[:count].astype(
                np.int64
            )

        if spans is None:
            candidates = _filter()
        else:
            with spans.span("approx_filter", pivots=p):
                candidates = _filter()
                spans.annotate(candidates=int(candidates.size))

        # Phase 2 (approx_rerank): exact n-match differences for the
        # candidates, canonical (difference, id) top-k.
        def _rerank():
            if candidates.size == 0:
                return (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                )
            rows = self._columns.data[candidates]
            diffs = np.partition(np.abs(rows - query), n - 1, axis=1)[
                :, n - 1
            ]
            order = np.lexsort((candidates, diffs))[:k]
            return candidates[order], diffs[order]

        if spans is None:
            out_ids, out_diffs = _rerank()
        else:
            with spans.span("approx_rerank"):
                out_ids, out_diffs = _rerank()

        full_scan = candidates.size >= c
        certified_count = k if full_scan else 0
        stats = SearchStats(
            attributes_retrieved=int(candidates.size) * d
            + (0 if full_scan else p * d),
            total_attributes=self._columns.total_attributes,
            candidates_refined=int(candidates.size),
            approximation_entries_scanned=0 if full_scan else c * p,
        )
        return ApproxResult(
            ids=[int(pid) for pid in out_ids],
            differences=[float(dif) for dif in out_diffs],
            k=k,
            n=n,
            engine=self.name,
            certified_recall=certified_count / k,
            certified_count=certified_count,
            unseen_lower_bound=None,
            exact=full_scan,
            budget=budget,
            stats=stats,
        )
