"""Disk-based engines: paged AD and sequential scan (Sec. 4)."""

from .ad_disk import DiskADEngine
from .cursor import DiskDirectionCursor, make_disk_cursors
from .scan import DiskScanEngine

__all__ = [
    "DiskADEngine",
    "DiskScanEngine",
    "DiskDirectionCursor",
    "make_disk_cursors",
]
