"""Direction cursors over paged column files.

The disk analogue of :mod:`repro.sorted_lists.cursor`: one cursor walks
one sorted dimension in one direction, but attributes now live in pages —
the cursor buffers the current page and triggers a page read (through the
pager's access recorder) only when the walk crosses a page boundary.
Forward walks cross onto the *next* page, which the recorder classifies
as sequential; backward walks cross onto the previous page, a (cheap but
real) seek, classified as random.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..storage.column_file import ColumnFile

__all__ = ["DiskDirectionCursor", "make_disk_cursors"]

DOWN = -1
UP = +1


class DiskDirectionCursor:
    """One-directional, page-buffered walk over a :class:`ColumnFile`."""

    __slots__ = (
        "column",
        "direction",
        "_position",
        "_q",
        "retrieved",
        "_page_index",
        "_page_values",
        "_page_pids",
        "_page_first",
        "_stream",
    )

    def __init__(
        self,
        column: ColumnFile,
        direction: int,
        start_position: int,
        query_value: float,
    ) -> None:
        if direction not in (DOWN, UP):
            raise ValueError(f"direction must be DOWN(-1) or UP(+1); got {direction}")
        self.column = column
        self.direction = direction
        self._position = start_position
        self._q = query_value
        self.retrieved = 0
        self._page_index = -1
        self._page_values: Optional[np.ndarray] = None
        self._page_pids: Optional[np.ndarray] = None
        self._page_first = 0
        # Each cursor is its own read stream: its page walk is classified
        # sequential/random independently of the other 2d - 1 cursors,
        # modelling per-stream read-ahead buffers.
        self._stream = f"cursor@{column.first_page}:{direction}"

    @property
    def exhausted(self) -> bool:
        if self.direction == DOWN:
            return self._position < 0
        return self._position >= self.column.length

    def _ensure_page(self) -> None:
        page_index = self._position // self.column.entries_per_page
        if page_index != self._page_index:
            entries = self.column.read_entries(page_index, self._stream)
            self._page_index = page_index
            self._page_values = entries["value"]
            self._page_pids = entries["pid"]
            self._page_first = page_index * self.column.entries_per_page

    def next(self) -> Optional[Tuple[int, float]]:
        """Consume the next ``(point id, difference)`` pair, or ``None``."""
        if self.exhausted:
            return None
        self._ensure_page()
        offset = self._position - self._page_first
        pid = int(self._page_pids[offset])
        dif = abs(float(self._page_values[offset]) - self._q)
        self._position += self.direction
        self.retrieved += 1
        return pid, dif


def make_disk_cursors(
    store, query: np.ndarray
) -> List[DiskDirectionCursor]:
    """Build the ``2d`` disk cursors for ``query``.

    Each dimension costs one :meth:`ColumnFile.locate` (one page read via
    the in-memory page directory) to find the split position; both
    cursors of the dimension then start from that split.
    """
    cursors: List[DiskDirectionCursor] = []
    for j in range(store.dimensionality):
        column = store.column(j)
        q_j = float(query[j])
        split = column.locate(q_j)
        cursors.append(DiskDirectionCursor(column, DOWN, split - 1, q_j))
        cursors.append(DiskDirectionCursor(column, UP, split, q_j))
    return cursors
