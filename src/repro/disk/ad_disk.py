"""Disk-based AD engine (Sec. 4.1 of the paper).

Runs the very same FKNMatchAD consumption loop as the in-memory engine
(:mod:`repro.core.matchloop`), but over paged sorted-column files: each
attribute comes from a page-buffered disk cursor, and every page the walk
crosses is recorded as sequential or random by the pager.  Results carry
both the attribute counters and the page counters, plus a simulated
response time under a :class:`~repro.storage.DiskModel`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple


from ..core import validation
from ..core.matchloop import run_frequent_k_n_match, run_k_n_match
from ..core.types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency
from ..sorted_lists import AscendingDifferenceFrontier
from ..storage import DEFAULT_DISK_MODEL, DiskModel, Pager, SortedColumnStore
from .cursor import make_disk_cursors

__all__ = ["DiskADEngine"]


class DiskADEngine:
    """Frequent k-n-match over sorted columns stored page-wise on disk."""

    name = "disk-ad"

    def __init__(
        self,
        data,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
        metrics: Optional[object] = None,
        spans: Optional[object] = None,
    ) -> None:
        self.disk_model = disk_model
        if pager is None:
            pager = Pager(disk_model.page_size, metrics=metrics)
        elif metrics is not None and pager.metrics is None:
            pager.metrics = metrics
        self._pager = pager
        self._metrics = metrics
        self._spans = spans
        self._store = SortedColumnStore(data, self._pager)

    @property
    def metrics(self):
        """The installed :class:`~repro.obs.MetricsRegistry`, or ``None``."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        self._pager.metrics = registry

    @property
    def spans(self):
        """The installed :class:`~repro.obs.SpanCollector`, or ``None``."""
        return self._spans

    @spans.setter
    def spans(self, collector) -> None:
        self._spans = collector

    @property
    def store(self) -> SortedColumnStore:
        return self._store

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def cardinality(self) -> int:
        return self._store.cardinality

    @property
    def dimensionality(self) -> int:
        return self._store.dimensionality

    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """KNMatchAD over the paged columns."""
        c, d = self.cardinality, self.dimensionality
        query, k, n = validation.validate_match_args(query, k, n, c, d)

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        baseline = self._io_snapshot()
        if spans is None:
            frontier = AscendingDifferenceFrontier(
                make_disk_cursors(self._store, query)
            )
            ids, differences = run_k_n_match(frontier, c, k, n)
        else:
            with spans.span(f"{self.name}/k_n_match", k=k, n=n):
                with spans.span("cursor_init", dimensions=d):
                    frontier = AscendingDifferenceFrontier(
                        make_disk_cursors(self._store, query)
                    )
                with spans.span("heap_consume"):
                    ids, differences = run_k_n_match(frontier, c, k, n)
                    spans.annotate(
                        heap_pops=frontier.pops,
                        attributes_retrieved=frontier.attributes_retrieved,
                    )
        stats = self._make_stats(frontier, baseline)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return MatchResult(ids=ids, differences=differences, k=k, n=n, stats=stats)

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """FKNMatchAD over the paged columns."""
        c, d = self.cardinality, self.dimensionality
        query, k, (n0, n1) = validation.validate_frequent_args(
            query, k, n_range, c, d
        )

        registry = self._metrics
        spans = self._spans
        started = time.perf_counter() if registry is not None else 0.0
        baseline = self._io_snapshot()
        if spans is None:
            frontier = AscendingDifferenceFrontier(
                make_disk_cursors(self._store, query)
            )
            sets = run_frequent_k_n_match(frontier, c, k, n0, n1)
            answer_sets = {n: ids[:k] for n, ids in sets.items()}
            chosen, frequencies = rank_by_frequency(answer_sets, k)
        else:
            with spans.span(
                f"{self.name}/frequent_k_n_match", k=k, n0=n0, n1=n1
            ):
                with spans.span("cursor_init", dimensions=d):
                    frontier = AscendingDifferenceFrontier(
                        make_disk_cursors(self._store, query)
                    )
                with spans.span("heap_consume"):
                    sets = run_frequent_k_n_match(frontier, c, k, n0, n1)
                    spans.annotate(
                        heap_pops=frontier.pops,
                        attributes_retrieved=frontier.attributes_retrieved,
                    )
                with spans.span("rank"):
                    answer_sets = {n: ids[:k] for n, ids in sets.items()}
                    chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = self._make_stats(frontier, baseline)
        if registry is not None:
            from ..obs import observe_query

            observe_query(
                registry, self.name, "frequent_k_n_match", stats,
                time.perf_counter() - started, d,
            )
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    def simulated_seconds(self, stats: SearchStats) -> float:
        """Response time of ``stats`` under this engine's disk model."""
        return self.disk_model.simulated_seconds(stats)

    # ------------------------------------------------------------------
    def _io_snapshot(self) -> Tuple[int, int]:
        recorder = self._pager.recorder
        recorder.forget_streams()  # measure each query cold
        return recorder.sequential_reads, recorder.random_reads

    def _make_stats(
        self, frontier: AscendingDifferenceFrontier, baseline: Tuple[int, int]
    ) -> SearchStats:
        recorder = self._pager.recorder
        return SearchStats(
            attributes_retrieved=frontier.attributes_retrieved,
            total_attributes=self._store.total_attributes,
            heap_pops=frontier.pops,
            binary_search_probes=self.dimensionality,
            sequential_page_reads=recorder.sequential_reads - baseline[0],
            random_page_reads=recorder.random_reads - baseline[1],
        )
