"""Sequential-scan disk engine.

The paper's scan baseline: read the heap file front to back (all pages
sequential), compute every point's match profile and keep a running top-k
per ``n`` value.  Answers are identical to the in-memory naive oracle —
same deterministic tie-breaking — but the result carries honest page and
attribute counters for the response-time figures (Figs. 10-15).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import validation
from ..core.types import FrequentMatchResult, MatchResult, SearchStats, rank_by_frequency
from ..storage import DEFAULT_DISK_MODEL, DiskModel, HeapFile, Pager

__all__ = ["DiskScanEngine"]


class DiskScanEngine:
    """Full sequential scan over a paged heap file."""

    name = "disk-scan"

    def __init__(
        self,
        data,
        pager: Optional[Pager] = None,
        disk_model: DiskModel = DEFAULT_DISK_MODEL,
    ) -> None:
        self.disk_model = disk_model
        self._pager = pager if pager is not None else Pager(disk_model.page_size)
        array = validation.as_database_array(data)
        self._heap = HeapFile(array, self._pager)

    @property
    def heap_file(self) -> HeapFile:
        return self._heap

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def cardinality(self) -> int:
        return self._heap.cardinality

    @property
    def dimensionality(self) -> int:
        return self._heap.dimensionality

    # ------------------------------------------------------------------
    def k_n_match(self, query, k: int, n: int) -> MatchResult:
        """Scan every page; keep the k smallest n-match differences."""
        c, d = self.cardinality, self.dimensionality
        k = validation.validate_k(k, c)
        n = validation.validate_n(n, d)
        query = validation.as_query_array(query, d).astype(np.float32)

        baseline = self._io_snapshot()
        best_ids: np.ndarray = np.empty(0, dtype=np.int64)
        best_diffs: np.ndarray = np.empty(0, dtype=np.float64)
        for first_pid, rows in self._heap.scan():
            deltas = np.abs(rows.astype(np.float64) - query)
            diffs = np.partition(deltas, n - 1, axis=1)[:, n - 1]
            ids = np.arange(first_pid, first_pid + rows.shape[0])
            best_ids = np.concatenate([best_ids, ids])
            best_diffs = np.concatenate([best_diffs, diffs])
            if best_ids.shape[0] > 4 * k:
                keep = np.lexsort((best_ids, best_diffs))[:k]
                best_ids, best_diffs = best_ids[keep], best_diffs[keep]
        keep = np.lexsort((best_ids, best_diffs))[:k]
        stats = self._make_stats(baseline)
        return MatchResult(
            ids=[int(i) for i in best_ids[keep]],
            differences=[float(x) for x in best_diffs[keep]],
            k=k,
            n=n,
            stats=stats,
        )

    def frequent_k_n_match(
        self,
        query,
        k: int,
        n_range: Tuple[int, int],
        keep_answer_sets: bool = True,
    ) -> FrequentMatchResult:
        """Scan once; keep a top-k per n value (paper's naive strategy)."""
        c, d = self.cardinality, self.dimensionality
        k = validation.validate_k(k, c)
        n0, n1 = validation.validate_n_range(n_range, d)
        query = validation.as_query_array(query, d).astype(np.float32)

        baseline = self._io_snapshot()
        n_values = list(range(n0, n1 + 1))
        pool_ids: np.ndarray = np.empty(0, dtype=np.int64)
        pool_profiles: np.ndarray = np.empty((0, len(n_values)), dtype=np.float64)
        for first_pid, rows in self._heap.scan():
            deltas = np.sort(np.abs(rows.astype(np.float64) - query), axis=1)
            profiles = deltas[:, n0 - 1 : n1]
            ids = np.arange(first_pid, first_pid + rows.shape[0])
            pool_ids = np.concatenate([pool_ids, ids])
            pool_profiles = np.vstack([pool_profiles, profiles])
            if pool_ids.shape[0] > max(4 * k, 256):
                pool_ids, pool_profiles = self._shrink_pool(
                    pool_ids, pool_profiles, k
                )
        answer_sets: Dict[int, List[int]] = {}
        for column, n in enumerate(n_values):
            order = np.lexsort((pool_ids, pool_profiles[:, column]))[:k]
            answer_sets[n] = [int(pool_ids[i]) for i in order]
        chosen, frequencies = rank_by_frequency(answer_sets, k)
        stats = self._make_stats(baseline)
        return FrequentMatchResult(
            ids=chosen,
            frequencies=frequencies,
            k=k,
            n_range=(n0, n1),
            answer_sets=answer_sets if keep_answer_sets else None,
            stats=stats,
        )

    def simulated_seconds(self, stats: SearchStats) -> float:
        """Response time of ``stats`` under this engine's disk model."""
        return self.disk_model.simulated_seconds(stats)

    # ------------------------------------------------------------------
    @staticmethod
    def _shrink_pool(
        ids: np.ndarray, profiles: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Keep only points still in some per-n top-k."""
        keep_mask = np.zeros(ids.shape[0], dtype=bool)
        for column in range(profiles.shape[1]):
            order = np.lexsort((ids, profiles[:, column]))[:k]
            keep_mask[order] = True
        return ids[keep_mask], profiles[keep_mask]

    def _io_snapshot(self) -> Tuple[int, int]:
        recorder = self._pager.recorder
        recorder.forget_streams()  # measure each query cold
        return recorder.sequential_reads, recorder.random_reads

    def _make_stats(self, baseline: Tuple[int, int]) -> SearchStats:
        c, d = self.cardinality, self.dimensionality
        recorder = self._pager.recorder
        return SearchStats(
            attributes_retrieved=c * d,
            total_attributes=c * d,
            points_scanned=c,
            sequential_page_reads=recorder.sequential_reads - baseline[0],
            random_page_reads=recorder.random_reads - baseline[1],
        )
