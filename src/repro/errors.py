"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one base class.  Validation
failures additionally derive from :class:`ValueError` (or
:class:`TypeError`) so that the library behaves like idiomatic Python for
callers who do not know about the hierarchy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range or type)."""


class DimensionalityMismatchError(ValidationError):
    """A query's dimensionality does not match the database's."""

    def __init__(self, expected: int, got: int):
        self.expected = expected
        self.got = got
        super().__init__(
            f"query has {got} dimensions but the database has {expected}"
        )


class EmptyDatabaseError(ValidationError):
    """An operation requires a non-empty database."""


class NotBuiltError(ReproError, RuntimeError):
    """An index was queried before :meth:`build` was called."""


class StorageError(ReproError, IOError):
    """A simulated storage operation failed (bad page id, closed pager...)."""


class ShardWorkerError(ReproError, RuntimeError):
    """A shard worker process failed (crashed mid-task or raised).

    Raised by the process-backed scatter-gather pool instead of hanging:
    either a worker died while holding a task (the message names its pid
    and exit code) or the task raised inside the worker (the message
    carries the remote traceback).  The pool itself stays usable — dead
    workers are respawned on the next scatter.
    """


class PageOverflowError(StorageError):
    """A record does not fit into a single page."""
