"""Command-line interface.

Subcommands::

    repro generate  --kind uniform --cardinality 10000 --dimensionality 16 out.npy
    repro build     data.npy db.npz [--shards 4 --partitioner hash]
    repro info      db.npz
    repro shard-info db.npz
    repro query     db.npz --k 5 --n 8 --query 0.1,0.2,...     (k-n-match)
    repro query     db.npz --k 5 --n-range 4:12 --query-row 42 (frequent)
    repro batch     db.npz --k 5 --n 8 --queries batch.npy --workers 4
    repro stats     db.npz --k 5 --n 8 --format prom [--engine block-ad]
    repro trace     db.npz --k 5 --n 8 --query-row 0 [--chrome-out t.json]
    repro advise    db.npz --k 20 --n-range 4:8 [--minimize disk-time]
    repro plan      db.npz --k 20 --n 8 [--save]   (calibrate engine=auto)
    repro serve     db.npz --port 8707 --max-inflight 64 --cache-size 1024
    repro serve     --store store_dir/ [--dimensionality 16]  (mutable LSM)
    repro flight    --host 127.0.0.1 --port 8707 [--trace ID --chrome-out t.json]
    repro lsm-info  store_dir/            (level layout, WAL, compaction stats)
    repro wal-info  store_dir/            (decode the write-ahead log)
    repro compact   store_dir/            (flush + compact to quiescence)
    repro experiments --scale 0.1 --only table4,fig12

``query`` accepts either an inline comma-separated vector (``--query``)
or a row of the database itself (``--query-row``).  ``query`` and
``batch`` accept ``--metrics-out PATH`` to run under a fresh
:class:`~repro.obs.MetricsRegistry` and write its export next to the
answers (Prometheus text for ``.prom``/``.txt`` paths, JSON otherwise);
``stats`` probes a database with one in-memory ``ad`` query and one
disk-backed query and prints the resulting registry.  All output goes to
stdout; exit status is non-zero on any validation or storage error.

Sharding: ``build --shards S`` writes a sharded database file;
``query``/``batch`` open either kind of file and also accept
``--shards S [--partitioner NAME]`` to (re)shard in memory and answer
by scatter-gather — answers are exact either way, so sharded and flat
invocations print identical ids.  ``--shard-backend process`` moves the
per-shard calls into a shared-memory worker-process pool (multi-core
scaling past the GIL; same answers).  ``shard-info`` describes a
sharded file's partitioner and per-shard balance.

Planning: ``--engine auto`` on ``query``/``batch``/``trace``/``serve``
lets the cost-based planner (:mod:`repro.plan`) pick the engine per
query; ``repro plan`` calibrates the per-database cost model and
persists it as a ``<db>.plan.json`` sidecar, which every later
invocation loads automatically.  Answers are bit-identical to any
manual engine choice.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

import numpy as np

from . import __version__
from .approx import APPROX_ENGINE_NAMES, DEFAULT_TARGET_RECALL, MODES
from .core.advisor import recommend_engine
from .core.engine import ENGINE_CHOICES, ENGINE_NAMES, MatchDatabase
from .data import gaussian_clusters, skewed_dataset, uniform_dataset
from .errors import ReproError
from .io import (
    load_any_database,
    load_database,
    save_database,
    save_sharded_database,
)
from .shard.coordinator import SHARD_BACKENDS
from .shard.partition import DEFAULT_PARTITIONER, partitioner_names

__all__ = ["main", "build_parser"]

#: Engines a query-shaped subcommand accepts: the exact registry (plus
#: ``auto``) and, under ``--mode approx``, the approximate tier.
_QUERY_ENGINE_CHOICES = ENGINE_CHOICES + APPROX_ENGINE_NAMES


def _add_approx_args(sub) -> None:
    """The approximate-tier flags shared by query/batch/trace."""
    sub.add_argument(
        "--mode",
        choices=MODES,
        default=None,
        help="approx = approximate tier with a per-query recall "
        "certificate (k-n-match only); default exact",
    )
    sub.add_argument(
        "--budget",
        type=int,
        default=None,
        help="attribute budget for --mode approx (budget-ad)",
    )
    sub.add_argument(
        "--target-recall",
        type=float,
        default=None,
        dest="target_recall",
        help=f"recall target for --mode approx "
        f"(default {DEFAULT_TARGET_RECALL})",
    )
    sub.add_argument(
        "--candidate-multiplier",
        type=int,
        default=None,
        dest="candidate_multiplier",
        help="re-rank pool size per answer slot for --mode approx",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="matching-based similarity search (k-n-match, VLDB'06)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset as .npy"
    )
    generate.add_argument("output", help="output .npy path")
    generate.add_argument(
        "--kind",
        choices=("uniform", "clustered", "skewed"),
        default="uniform",
    )
    generate.add_argument("--cardinality", type=int, default=10000)
    generate.add_argument("--dimensionality", type=int, default=16)
    generate.add_argument("--seed", type=int, default=0)

    build = commands.add_parser(
        "build", help="build a match database from a .npy array"
    )
    build.add_argument("data", help="input .npy path (cardinality x dims)")
    build.add_argument("output", help="output database .npz path")
    build.add_argument(
        "--engine", choices=ENGINE_NAMES, default="ad", help="default engine"
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="write a sharded database with this many shards",
    )
    build.add_argument(
        "--partitioner",
        choices=partitioner_names(),
        default=None,
        help=f"shard assignment strategy (default {DEFAULT_PARTITIONER})",
    )
    build.add_argument(
        "--partition-dim",
        type=int,
        default=0,
        help="dimension for the range partitioner",
    )

    info = commands.add_parser("info", help="describe a database file")
    info.add_argument("database", help="database .npz path")

    shard_info = commands.add_parser(
        "shard-info",
        help="describe a sharded database file (partitioner, balance)",
    )
    shard_info.add_argument("database", help="sharded database .npz path")

    query = commands.add_parser(
        "query", help="run a (frequent) k-n-match query"
    )
    query.add_argument("database", help="database .npz path")
    query.add_argument("--k", type=int, required=True)
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--n", type=int, help="single n: plain k-n-match")
    group.add_argument(
        "--n-range", type=str, help="n0:n1 -> frequent k-n-match"
    )
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--query", type=str, help="comma-separated query vector"
    )
    source.add_argument(
        "--query-row", type=int, help="use this database row as the query"
    )
    query.add_argument(
        "--engine", choices=_QUERY_ENGINE_CHOICES, default=None
    )
    _add_approx_args(query)
    query.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the data and answer by scatter-gather (exact)",
    )
    query.add_argument(
        "--partitioner",
        choices=partitioner_names(),
        default=None,
        help="shard assignment strategy (requires --shards)",
    )
    query.add_argument(
        "--shard-backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="scatter fan-out backend for sharded execution "
        "(process = shared-memory worker pool; identical answers)",
    )
    query.add_argument(
        "--stats", action="store_true", help="also print work counters"
    )
    query.add_argument(
        "--trace", action="store_true", help="also print a per-query trace"
    )
    query.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="export query metrics to this path (.prom -> text, else JSON)",
    )

    batch = commands.add_parser(
        "batch", help="run many (frequent) k-n-match queries in one go"
    )
    batch.add_argument("database", help="database .npz path")
    batch.add_argument("--k", type=int, required=True)
    batch_mode = batch.add_mutually_exclusive_group(required=True)
    batch_mode.add_argument("--n", type=int, help="single n: plain k-n-match")
    batch_mode.add_argument(
        "--n-range", type=str, help="n0:n1 -> frequent k-n-match"
    )
    batch_source = batch.add_mutually_exclusive_group(required=True)
    batch_source.add_argument(
        "--queries", type=str, help=".npy file with one query per row"
    )
    batch_source.add_argument(
        "--query-rows",
        type=str,
        help="A:B -> use database rows [A, B) as the queries",
    )
    batch.add_argument(
        "--engine",
        choices=_QUERY_ENGINE_CHOICES,
        default="batch-block-ad",
        help="engine to run each shard with (auto = planner's choice)",
    )
    _add_approx_args(batch)
    batch.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the data and answer by scatter-gather (exact)",
    )
    batch.add_argument(
        "--partitioner",
        choices=partitioner_names(),
        default=None,
        help="shard assignment strategy (requires --shards)",
    )
    batch.add_argument(
        "--shard-backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="scatter fan-out backend for sharded execution "
        "(process = shared-memory worker pool; identical answers)",
    )
    batch.add_argument(
        "--parallel",
        action="store_true",
        default=None,
        help="shard the batch across a thread pool",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size (implies --parallel)",
    )
    batch.add_argument(
        "--stats", action="store_true", help="also print aggregate counters"
    )
    batch.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="export batch metrics to this path (.prom -> text, else JSON)",
    )

    stats = commands.add_parser(
        "stats",
        help="probe a database and export its metrics registry",
        description=(
            "Run one in-memory ad query and one disk-backed AD query "
            "against the database under a fresh metrics registry, then "
            "print the registry (Prometheus text or JSON).  A quick way "
            "to see the attribute-retrieval and page-access profile of "
            "a dataset, and a smoke test for the observability layer."
        ),
    )
    stats.add_argument("database", help="database .npz path")
    stats.add_argument("--k", type=int, default=5)
    stats.add_argument(
        "--n", type=int, default=None, help="defaults to half the dimensions"
    )
    stats.add_argument(
        "--query-row", type=int, default=0, help="database row used as probe"
    )
    stats.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="ad",
        help="engine for the in-memory probe query",
    )
    stats.add_argument(
        "--format", choices=("prom", "json"), default="prom"
    )
    stats.add_argument(
        "--no-disk",
        action="store_true",
        help="skip the disk-backed probe (page-read counters stay zero)",
    )

    trace = commands.add_parser(
        "trace",
        help="run a query under a span collector and print phase spans",
        description=(
            "Run one (frequent) k-n-match query with a SpanCollector "
            "installed and print the phase-span tree (where the time "
            "went inside the query).  --chrome-out writes the spans as "
            "Chrome trace_event JSON loadable in chrome://tracing or "
            "Perfetto; --audit additionally checks the engine's "
            "attribute cost against the Fagin-model lower bound of "
            "Thm 3.2/3.3."
        ),
    )
    trace.add_argument("database", help="database .npz path")
    trace.add_argument("--k", type=int, required=True)
    trace_mode = trace.add_mutually_exclusive_group(required=True)
    trace_mode.add_argument("--n", type=int, help="single n: plain k-n-match")
    trace_mode.add_argument(
        "--n-range", type=str, help="n0:n1 -> frequent k-n-match"
    )
    trace_source = trace.add_mutually_exclusive_group(required=True)
    trace_source.add_argument(
        "--query", type=str, help="comma-separated query vector"
    )
    trace_source.add_argument(
        "--query-row", type=int, help="use this database row as the query"
    )
    trace.add_argument(
        "--engine", choices=_QUERY_ENGINE_CHOICES, default=None
    )
    _add_approx_args(trace)
    trace.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the data and trace the scatter-gather fan-out",
    )
    trace.add_argument(
        "--partitioner",
        choices=partitioner_names(),
        default=None,
        help="shard assignment strategy (requires --shards)",
    )
    trace.add_argument(
        "--shard-backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="scatter fan-out backend for sharded execution",
    )
    trace.add_argument(
        "--chrome-out",
        type=str,
        default=None,
        help="write the spans as Chrome trace_event JSON to this path",
    )
    trace.add_argument(
        "--audit",
        action="store_true",
        help="audit the engine cost against the Fagin lower bound",
    )
    trace.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="slow-query-log threshold in milliseconds",
    )

    advise = commands.add_parser(
        "advise", help="estimate cost and recommend an engine"
    )
    advise.add_argument("database", help="database .npz path")
    advise.add_argument("--k", type=int, required=True)
    advise.add_argument("--n-range", type=str, required=True, help="n0:n1")
    advise.add_argument(
        "--minimize",
        choices=("attributes", "wall-clock", "disk-time"),
        default="wall-clock",
        help="what the recommendation optimises (disk-time prices the "
        "disk engines under the calibrated DiskModel)",
    )
    advise.add_argument(
        "--kind",
        choices=("frequent", "k-n-match"),
        default="frequent",
        help="the workload kind the estimate is taken for",
    )
    advise.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="disk-model page size in bytes (rescales transfer costs; "
        "only meaningful with --minimize disk-time)",
    )
    advise.add_argument("--samples", type=int, default=5)

    plan = commands.add_parser(
        "plan",
        help="calibrate the engine=auto planner and show its decision",
        description=(
            "Run the cost-based planner for one workload: estimate the "
            "retrieval fraction, probe the candidate engines, print the "
            "decision with per-candidate predicted costs, and (with "
            "--save) persist the calibrated cost model as a "
            "<database>.plan.json sidecar that query/batch/trace/serve "
            "--engine auto load automatically."
        ),
    )
    plan.add_argument("database", help="database .npz path")
    plan.add_argument("--k", type=int, required=True)
    plan_mode = plan.add_mutually_exclusive_group(required=True)
    plan_mode.add_argument("--n", type=int, help="single n: plain k-n-match")
    plan_mode.add_argument(
        "--n-range", type=str, help="n0:n1 -> frequent k-n-match"
    )
    plan.add_argument(
        "--batch",
        action="store_true",
        help="plan the batch variant of the workload",
    )
    plan.add_argument(
        "--save",
        action="store_true",
        help="persist the calibrated model as <database>.plan.json",
    )
    plan.add_argument(
        "--from-bench",
        type=str,
        default=None,
        help="seed the model with priors from BENCH_*.json under this "
        "directory before probing",
    )

    serve = commands.add_parser(
        "serve",
        help="serve (frequent) k-n-match queries over HTTP",
        description=(
            "Run an HTTP server answering k-n-match, frequent k-n-match "
            "and batch queries over a versioned JSON protocol (see "
            "docs/serving.md).  Admission control bounds concurrent "
            "queries (--max-inflight) with deadline-aware 429 shedding "
            "(--deadline-ms); a generation-keyed LRU cache (--cache-size) "
            "replays repeated queries byte-identically.  GET /metrics "
            "exposes the repro_serve_* and engine counters in Prometheus "
            "text; SIGTERM/SIGINT drains in-flight queries before exit.  "
            "--port 0 picks an ephemeral port, printed on startup."
        ),
    )
    serve.add_argument(
        "database",
        nargs="?",
        default=None,
        help="database .npz path (omit when serving an LSM store "
        "via --store)",
    )
    serve.add_argument(
        "--store",
        type=str,
        default=None,
        help="serve a mutable LSM store from this directory instead of "
        "a database file; enables POST /v1/insert and /v1/delete "
        "(see docs/durability.md)",
    )
    serve.add_argument(
        "--dimensionality",
        type=int,
        default=None,
        help="with --store on an empty directory: create a fresh store "
        "with this many dimensions",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8707,
        help="listen port (0 picks an ephemeral one, printed on startup)",
    )
    serve.add_argument(
        "--engine",
        choices=_QUERY_ENGINE_CHOICES,
        default=None,
        help="default engine for served queries (auto = planner's choice)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the data and serve by scatter-gather (exact)",
    )
    serve.add_argument(
        "--partitioner",
        choices=partitioner_names(),
        default=None,
        help="shard assignment strategy (requires --shards)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard coordinator pool size (requires --shards)",
    )
    serve.add_argument(
        "--shard-backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="scatter fan-out backend for sharded serving "
        "(process = shared-memory worker pool; identical answers)",
    )
    serve.add_argument(
        "--mode",
        choices=MODES,
        default=None,
        help="default query mode for requests that set no approx field",
    )
    serve.add_argument(
        "--budget",
        type=int,
        default=None,
        help="default attribute budget under --mode approx",
    )
    serve.add_argument(
        "--target-recall",
        type=float,
        default=None,
        dest="target_recall",
        help="default recall target under --mode approx",
    )
    serve.add_argument(
        "--candidate-multiplier",
        type=int,
        default=None,
        dest="candidate_multiplier",
        help="default re-rank pool multiplier under --mode approx",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrent query limit; excess requests queue then shed (429)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=1000.0,
        help="default per-request queueing deadline in milliseconds",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache capacity in entries (0 disables caching)",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="how long shutdown waits for in-flight queries",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="slow-query threshold in milliseconds: requests at least "
        "this slow land in the slow-query log and the flight recorder "
        "(0 records every query)",
    )
    serve.add_argument(
        "--flight-capacity",
        type=int,
        default=64,
        help="flight-recorder ring size for slow/shed/error requests "
        "(0 disables; inspect via GET /v1/debug/flight or repro flight)",
    )
    serve.add_argument(
        "--access-log",
        type=str,
        default=None,
        help="write one JSON line per request to this path ('-' = stdout)",
    )

    flight = commands.add_parser(
        "flight",
        help="inspect a running server's flight recorder",
        description=(
            "Fetch the flight recorder of a running repro serve instance "
            "(the retained slow/shed/error request records) and print "
            "one line per record, or one full record by trace id.  The "
            "server records requests when started with --slow-ms and/or "
            "--flight-capacity; see docs/observability.md."
        ),
    )
    flight.add_argument("--host", default="127.0.0.1")
    flight.add_argument("--port", type=int, default=8707)
    flight.add_argument(
        "--trace",
        type=str,
        default=None,
        help="print one full record (canonical JSON) by trace id",
    )
    flight.add_argument(
        "--chrome-out",
        type=str,
        default=None,
        help="with --trace: write the record's span tree as Chrome "
        "trace_event JSON to this path",
    )
    flight.add_argument(
        "--json",
        action="store_true",
        help="print the raw canonical JSON instead of the summary lines",
    )

    lsm_info = commands.add_parser(
        "lsm-info",
        help="describe an LSM store directory",
        description=(
            "Print an LSM store's level layout (segments, rows, dead "
            "rows per level), live/tombstone counts, WAL size and the "
            "last compaction's statistics.  Opening the store runs "
            "recovery, so a torn WAL tail is truncated and reported."
        ),
    )
    lsm_info.add_argument("store", help="LSM store directory")
    lsm_info.add_argument(
        "--json",
        action="store_true",
        help="print the raw status as canonical JSON",
    )

    wal_info_cmd = commands.add_parser(
        "wal-info",
        help="decode an LSM store's write-ahead log",
        description=(
            "Read a write-ahead log (a store directory or the wal.log "
            "file itself) without replaying it and print its record "
            "counts, generation span and torn-tail status.  Purely a "
            "read: the log is not truncated or modified."
        ),
    )
    wal_info_cmd.add_argument(
        "path", help="LSM store directory or wal.log path"
    )
    wal_info_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the raw summary as canonical JSON",
    )

    compact_cmd = commands.add_parser(
        "compact",
        help="flush and fully compact an LSM store",
        description=(
            "Open an LSM store, flush its memtable and run leveled "
            "compaction to quiescence (no level over its fanout), then "
            "print the resulting layout.  Queries before and after "
            "return bit-identical answers; this only reclaims "
            "tombstoned rows and reduces the segment count."
        ),
    )
    compact_cmd.add_argument("store", help="LSM store directory")

    approx_info = commands.add_parser(
        "approx-info",
        help="describe and probe the approximate tier for a database",
        description=(
            "Probe both approximate engines on a few database rows and "
            "print what they deliver here: certified recall, attributes "
            "touched versus the exact block-AD baseline, and (for "
            "pivot-sketch) the sketch index footprint.  The certified "
            "recall is a per-query *lower bound* the engine proves, not "
            "a sample estimate."
        ),
    )
    approx_info.add_argument("database", help="database .npz path")
    approx_info.add_argument("--k", type=int, default=10)
    approx_info.add_argument(
        "--n", type=int, default=None, help="defaults to half the dimensions"
    )
    approx_info.add_argument(
        "--target-recall",
        type=float,
        default=None,
        dest="target_recall",
        help=f"recall target probed (default {DEFAULT_TARGET_RECALL})",
    )
    approx_info.add_argument(
        "--probe-queries",
        type=int,
        default=3,
        help="database rows probed per engine",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("--scale", type=float, default=1.0)
    experiments.add_argument("--queries", type=int, default=3)
    experiments.add_argument("--accuracy-queries", type=int, default=100)
    experiments.add_argument("--only", type=str, default="")
    experiments.add_argument("--csv-dir", type=str, default="")
    experiments.add_argument("--charts", action="store_true")
    return parser


def _parse_range(text: str) -> Tuple[int, int]:
    try:
        n0_text, n1_text = text.split(":")
        return int(n0_text), int(n1_text)
    except ValueError:
        raise ReproError(
            f"invalid n range {text!r}; expected the form n0:n1"
        ) from None


def _resolve_query(args, db: MatchDatabase) -> np.ndarray:
    if args.query is not None:
        try:
            return np.asarray(
                [float(token) for token in args.query.split(",")]
            )
        except ValueError:
            raise ReproError(
                f"invalid --query {args.query!r}; expected comma-separated numbers"
            ) from None
    if not 0 <= args.query_row < db.cardinality:
        raise ReproError(
            f"--query-row {args.query_row} out of range [0, {db.cardinality})"
        )
    return db.data[args.query_row]


def _load_db(args):
    """Open a flat or sharded database; (re)shard when ``--shards``.

    With ``--shards`` the data is repartitioned in memory regardless of
    how the file was stored — answers are exact either way, so this only
    changes the execution strategy, never the output.  ``--shard-backend``
    likewise only moves where the per-shard calls run (stored sharded
    files included); it never changes answers.
    """
    backend = getattr(args, "shard_backend", None) or "thread"
    db = load_any_database(
        args.database, backend=backend, workers=getattr(args, "workers", None)
    )
    shards = getattr(args, "shards", None)
    partitioner = getattr(args, "partitioner", None)
    if shards is not None:
        from .shard import ShardedMatchDatabase

        db = ShardedMatchDatabase(
            db.data,
            shards=shards,
            partitioner=partitioner or DEFAULT_PARTITIONER,
            default_engine=db.default_engine,
            workers=getattr(args, "workers", None),
            backend=backend,
        )
    else:
        if partitioner is not None:
            raise ReproError("--partitioner requires --shards")
        if backend != "thread" and not hasattr(db, "shard_count"):
            raise ReproError(
                "--shard-backend requires a sharded database file or --shards"
            )
    _install_plan_model(db, args.database)
    return db


def _install_plan_model(db, database_path: str) -> None:
    """Load the ``<db>.plan.json`` sidecar, when present, onto the facade."""
    from .plan import load_plan_model

    model = load_plan_model(database_path)
    if model is not None and hasattr(db, "set_plan_model"):
        db.set_plan_model(model)


def _make_registry(args):
    """A fresh registry when ``--metrics-out`` was given, else ``None``."""
    if getattr(args, "metrics_out", None) is None:
        return None
    from .obs import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(registry, path: str) -> None:
    from .obs import render_json, render_prometheus

    if path.endswith((".prom", ".txt")):
        text = render_prometheus(registry)
    else:
        text = render_json(registry) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote metrics to {path}")


def _approx_cli_kwargs(args) -> dict:
    """The facade kwargs the approx CLI flags resolve to (non-None only)."""
    fields = {
        "mode": getattr(args, "mode", None),
        "budget": getattr(args, "budget", None),
        "target_recall": getattr(args, "target_recall", None),
        "candidate_multiplier": getattr(args, "candidate_multiplier", None),
    }
    return {
        name: value for name, value in fields.items() if value is not None
    }


def _check_frequent_approx_flags(args) -> dict:
    """Frequent queries accept ``--mode`` only (to reject it canonically)."""
    extras = [
        flag
        for flag, name in (
            ("--budget", "budget"),
            ("--target-recall", "target_recall"),
            ("--candidate-multiplier", "candidate_multiplier"),
        )
        if getattr(args, name, None) is not None
    ]
    if extras:
        raise ReproError(
            f"{'/'.join(extras)} apply to k-n-match queries (--n); "
            f"frequent k-n-match has no approximate mode"
        )
    mode = getattr(args, "mode", None)
    return {} if mode is None else {"mode": mode}


def _print_certificate(result) -> None:
    """One line stating what an approximate answer provably delivers."""
    if not hasattr(result, "certified_recall"):
        return
    bound = result.unseen_lower_bound
    tail = (
        f", unseen difference >= {bound:.6f}" if bound is not None else ""
    )
    print(
        f"certificate: recall >= {result.certified_recall:.3f} "
        f"({result.certified_count}/{result.k} answers certified, "
        f"engine={result.engine}, attributes="
        f"{result.stats.attributes_retrieved}"
        f"/{result.stats.total_attributes}{tail})"
    )


def _print_stats(stats) -> None:
    print(
        f"stats: attributes={stats.attributes_retrieved}"
        f"/{stats.total_attributes} ({stats.fraction_retrieved:.1%}), "
        f"heap pops={stats.heap_pops}, pages seq={stats.sequential_page_reads} "
        f"rand={stats.random_page_reads}"
    )


def _run_generate(args) -> int:
    if args.kind == "uniform":
        data = uniform_dataset(args.cardinality, args.dimensionality, args.seed)
    elif args.kind == "clustered":
        data, _labels = gaussian_clusters(
            args.cardinality, args.dimensionality, seed=args.seed
        )
    else:
        data = skewed_dataset(args.cardinality, args.dimensionality, args.seed)
    np.save(args.output, data)
    print(f"wrote {args.kind} dataset {data.shape} to {args.output}")
    return 0


def _run_build(args) -> int:
    try:
        data = np.load(args.data)
    except (OSError, ValueError) as error:
        raise ReproError(f"cannot read {args.data!r}: {error}") from error
    if args.shards is not None:
        from .shard import ShardedMatchDatabase

        options = (
            {"dimension": args.partition_dim}
            if args.partitioner == "range"
            else {}
        )
        db = ShardedMatchDatabase(
            data,
            shards=args.shards,
            partitioner=args.partitioner or DEFAULT_PARTITIONER,
            default_engine=args.engine,
            **options,
        )
        save_sharded_database(db, args.output)
        print(
            f"built sharded database: {db.cardinality} points x "
            f"{db.dimensionality} dims, {db.shard_count} shards "
            f"({db.partitioner.describe()}) -> {args.output}"
        )
        return 0
    if args.partitioner is not None:
        raise ReproError("--partitioner requires --shards")
    db = MatchDatabase(data, default_engine=args.engine)
    save_database(db, args.output)
    print(
        f"built database: {db.cardinality} points x {db.dimensionality} "
        f"dims -> {args.output}"
    )
    return 0


def _run_info(args) -> int:
    db = load_any_database(args.database)
    print(f"cardinality:     {db.cardinality}")
    print(f"dimensionality:  {db.dimensionality}")
    print(f"default engine:  {db.default_engine}")
    print(f"attribute count: {db.cardinality * db.dimensionality}")
    if hasattr(db, "shard_count"):
        print(f"shards:          {db.shard_count}")
        print(f"partitioner:     {db.partitioner.describe()}")
    return 0


def _run_shard_info(args) -> int:
    db = load_any_database(args.database)
    if not hasattr(db, "shard_count"):
        raise ReproError(
            f"{args.database!r} is a flat database; rebuild it with "
            f"'repro build --shards' to shard it"
        )
    sizes = db.shard_sizes
    occupied = [size for size in sizes if size]
    print(f"cardinality:     {db.cardinality}")
    print(f"dimensionality:  {db.dimensionality}")
    print(f"default engine:  {db.default_engine}")
    print(f"partitioner:     {db.partitioner.describe()}")
    print(f"shards:          {db.shard_count} ({len(occupied)} non-empty)")
    print(
        f"trace label:     sharded[{db.shard_count}x{db.default_engine}"
        f"/{db.partitioner.name}]"
    )
    if occupied:
        mean = db.cardinality / len(occupied)
        balance = max(occupied) / mean if mean else 1.0
        print(
            f"shard sizes:     min={min(occupied)} max={max(occupied)} "
            f"(balance: largest/mean = {balance:.2f})"
        )
    for index, size in enumerate(sizes):
        print(f"  shard {index:4d}: {size} points")
    return 0


def _run_query(args) -> int:
    db = _load_db(args)
    registry = _make_registry(args)
    if registry is not None:
        db.set_metrics(registry)
    query = _resolve_query(args, db)
    if args.n is not None:
        result = db.k_n_match(
            query, args.k, args.n, engine=args.engine, trace=args.trace,
            **_approx_cli_kwargs(args),
        )
        print(f"{args.k}-{args.n}-match answers (id, difference):")
        for pid, diff in result:
            print(f"  {pid:8d}  {diff:.6f}")
        _print_certificate(result)
    else:
        n_range = _parse_range(args.n_range)
        result = db.frequent_k_n_match(
            query,
            args.k,
            n_range,
            engine=args.engine,
            keep_answer_sets=False,
            trace=args.trace,
            **_check_frequent_approx_flags(args),
        )
        print(
            f"frequent {args.k}-n-match over n in "
            f"[{n_range[0]}, {n_range[1]}] (id, appearances):"
        )
        for pid, count in result:
            print(f"  {pid:8d}  {count}")
    if args.stats:
        _print_stats(result.stats)
    if args.trace and result.trace is not None:
        print(result.trace.summary())
    if registry is not None:
        _write_metrics(registry, args.metrics_out)
    if hasattr(db, "close"):
        db.close()
    return 0


def _resolve_query_batch(args, db: MatchDatabase) -> np.ndarray:
    if args.queries is not None:
        try:
            queries = np.load(args.queries)
        except (OSError, ValueError) as error:
            raise ReproError(
                f"cannot read {args.queries!r}: {error}"
            ) from error
        return np.atleast_2d(np.asarray(queries, dtype=np.float64))
    start, stop = _parse_range(args.query_rows)
    if not 0 <= start <= stop <= db.cardinality:
        raise ReproError(
            f"--query-rows {args.query_rows!r} out of range "
            f"[0, {db.cardinality}]"
        )
    return db.data[start:stop]


def _run_batch(args) -> int:
    import time

    db = _load_db(args)
    registry = _make_registry(args)
    if registry is not None:
        db.set_metrics(registry)
    queries = _resolve_query_batch(args, db)
    if hasattr(db, "shard_count"):
        # the coordinator owns parallelism; workers were set at load time
        kwargs = dict(engine=args.engine)
    else:
        kwargs = dict(
            engine=args.engine, parallel=args.parallel, workers=args.workers
        )
    approx = _approx_cli_kwargs(args)
    if approx.get("mode") == "approx" and args.engine == "batch-block-ad":
        # the batch default engine is exact; under --mode approx let the
        # approximate tier pick its own default instead of rejecting
        kwargs["engine"] = None
    started = time.perf_counter()
    if args.n is not None:
        results = db.k_n_match_batch(
            queries, args.k, args.n, **kwargs, **approx
        )
        elapsed = time.perf_counter() - started
        print(
            f"{args.k}-{args.n}-match over {len(results)} queries "
            f"(query: id,id,... in ascending difference order):"
        )
        for index, result in enumerate(results):
            print(f"  {index:6d}: {','.join(str(pid) for pid in result.ids)}")
        if results and hasattr(results[0], "certified_recall"):
            recalls = [result.certified_recall for result in results]
            print(
                f"certificates: recall >= {min(recalls):.3f} (weakest), "
                f"mean {sum(recalls) / len(recalls):.3f} over "
                f"{len(recalls)} queries"
            )
    else:
        n_range = _parse_range(args.n_range)
        results = db.frequent_k_n_match_batch(
            queries, args.k, n_range, keep_answer_sets=False, **kwargs,
            **_check_frequent_approx_flags(args),
        )
        elapsed = time.perf_counter() - started
        print(
            f"frequent {args.k}-n-match over n in [{n_range[0]}, {n_range[1]}], "
            f"{len(results)} queries (query: id,id,... by appearances):"
        )
        for index, result in enumerate(results):
            print(f"  {index:6d}: {','.join(str(pid) for pid in result.ids)}")
    if args.stats:
        from .core.types import SearchStats

        total = SearchStats.aggregate([result.stats for result in results])
        rate = len(results) / elapsed if elapsed > 0 else 0.0
        print(
            f"batch: {len(results)} queries in {elapsed:.3f}s "
            f"({rate:.1f} q/s)"
        )
        _print_stats(total)
    if registry is not None:
        _write_metrics(registry, args.metrics_out)
    if hasattr(db, "close"):
        db.close()
    return 0


def _run_stats(args) -> int:
    db = load_database(args.database)
    if not 0 <= args.query_row < db.cardinality:
        raise ReproError(
            f"--query-row {args.query_row} out of range [0, {db.cardinality})"
        )
    from .obs import MetricsRegistry, render_json, render_prometheus

    registry = MetricsRegistry()
    db.set_metrics(registry)
    query = db.data[args.query_row]
    n = args.n if args.n is not None else max(1, db.dimensionality // 2)
    db.k_n_match(query, args.k, n, engine=args.engine)
    if not args.no_disk:
        from .disk import DiskADEngine

        disk = DiskADEngine(db.data, metrics=registry)
        disk.k_n_match(query, args.k, n)
    if args.format == "json":
        print(render_json(registry))
    else:
        print(render_prometheus(registry), end="")
    return 0


def _run_trace(args) -> int:
    from .obs import SpanCollector, render_chrome_json, render_span_text

    db = _load_db(args)
    query = _resolve_query(args, db)
    threshold = (
        args.slow_ms / 1000.0 if args.slow_ms is not None else None
    )
    collector = SpanCollector(slow_threshold_seconds=threshold)
    db.set_spans(collector)
    if args.n is not None:
        result = db.k_n_match(
            query, args.k, args.n, engine=args.engine,
            **_approx_cli_kwargs(args),
        )
        print(f"{args.k}-{args.n}-match answers (id, difference):")
        for pid, diff in result:
            print(f"  {pid:8d}  {diff:.6f}")
        _print_certificate(result)
    else:
        n_range = _parse_range(args.n_range)
        result = db.frequent_k_n_match(
            query, args.k, n_range, engine=args.engine,
            keep_answer_sets=False, **_check_frequent_approx_flags(args),
        )
        print(
            f"frequent {args.k}-n-match over n in "
            f"[{n_range[0]}, {n_range[1]}] (id, appearances):"
        )
        for pid, count in result:
            print(f"  {pid:8d}  {count}")
    traces = collector.traces()
    print(f"spans ({len(traces)} trace{'s' if len(traces) != 1 else ''}):")
    for root in traces:
        print(render_span_text(root))
    if threshold is not None:
        slow = collector.slow_traces()
        print(
            f"slow-query log (>= {args.slow_ms:g}ms): "
            f"{len(slow)} trace{'s' if len(slow) != 1 else ''}"
        )
    if args.chrome_out is not None:
        with open(args.chrome_out, "w") as handle:
            handle.write(
                render_chrome_json(traces, epoch=collector.epoch) + "\n"
            )
        print(f"wrote Chrome trace to {args.chrome_out}")
    if args.audit:
        from .obs import audit_result

        engine_label = args.engine or db.default_engine
        report = audit_result(db.data, query, result, engine=engine_label)
        print(report.summary())
    if hasattr(db, "close"):
        db.close()
    return 0


def _run_advise(args) -> int:
    db = load_database(args.database)
    disk_model = None
    if args.page_size is not None:
        from .storage import DEFAULT_DISK_MODEL

        disk_model = DEFAULT_DISK_MODEL.with_page_size(args.page_size)
    advice = recommend_engine(
        db,
        args.k,
        _parse_range(args.n_range),
        minimize=args.minimize,
        sample_queries=args.samples,
        kind=args.kind,
        disk_model=disk_model,
    )
    print(str(advice.estimate))
    print(f"recommended engine: {advice.engine}")
    print(f"reason: {advice.reason}")
    return 0


def _run_plan(args) -> int:
    from .plan import PlanModel, load_plan_model, save_plan_model

    db = load_any_database(args.database)
    model = load_plan_model(args.database)
    if model is None and args.from_bench is not None:
        model = PlanModel.from_reports(args.from_bench)
        print(
            f"seeded model from bench reports: "
            f"{', '.join(model.engines) or 'none matched'}"
        )
    if model is not None:
        db.set_plan_model(model)
    if args.n is not None:
        kind, n_range = "k_n_match", (args.n, args.n)
    else:
        kind, n_range = "frequent_k_n_match", _parse_range(args.n_range)
    plan = db.plan_query(kind, args.k, n_range, batched=args.batch)
    print(plan.describe())
    if plan.estimate is not None:
        print(f"estimate: {plan.estimate}")
    fitted = db.planner.model
    print("cost curves (seconds per cell):")
    for name in fitted.engines:
        curve = fitted.curve(name)
        print(
            f"  {name:15s} {curve.seconds_per_cell:.3e} "
            f"({curve.source}, {curve.samples} sample"
            f"{'s' if curve.samples != 1 else ''})"
        )
    if args.save:
        path = save_plan_model(fitted, args.database)
        print(f"wrote plan model to {path}")
    if hasattr(db, "close"):
        db.close()
    return 0


def _run_experiments(args) -> int:
    from .experiments import runall

    argv: List[str] = [
        "--scale",
        str(args.scale),
        "--queries",
        str(args.queries),
        "--accuracy-queries",
        str(args.accuracy_queries),
    ]
    if args.only:
        argv += ["--only", args.only]
    if args.csv_dir:
        argv += ["--csv-dir", args.csv_dir]
    if args.charts:
        argv += ["--charts"]
    return runall.main(argv)


def _open_store(args):
    """Open (or, with --dimensionality, create) the LSM store for serve."""
    from .lsm import LsmMatchDatabase

    for flag, name in (
        ("--shards", "shards"),
        ("--partitioner", "partitioner"),
        ("--engine", "engine"),
    ):
        if getattr(args, name, None) is not None:
            raise ReproError(f"{flag} does not apply to --store serving")
    return LsmMatchDatabase(
        args.store, dimensionality=args.dimensionality
    )


def _run_serve(args) -> int:
    from .obs import SpanCollector
    from .serve import MatchServer, ServeApp

    if args.store is not None:
        if args.database is not None:
            raise ReproError(
                "give either a database file or --store, not both"
            )
        db = _open_store(args)
    elif args.database is None:
        raise ReproError("provide a database file or --store <dir>")
    else:
        if args.dimensionality is not None:
            raise ReproError("--dimensionality requires --store")
        db = _load_db(args)
    slow_threshold = (
        args.slow_ms / 1000.0 if args.slow_ms is not None else None
    )
    access_log = None
    access_log_note = ""
    if args.access_log is not None:
        if args.access_log == "-":
            access_log = sys.stdout
        else:
            access_log = open(args.access_log, "a", encoding="utf-8")
        access_log_note = f", access-log={args.access_log}"
    try:
        app = ServeApp(
            db,
            default_engine=args.engine,
            max_inflight=args.max_inflight,
            deadline_ms=args.deadline_ms,
            cache_size=args.cache_size,
            default_mode=args.mode,
            default_budget=args.budget,
            default_target_recall=args.target_recall,
            default_candidate_multiplier=args.candidate_multiplier,
            spans=SpanCollector(),
            slow_threshold_seconds=slow_threshold,
            flight_capacity=args.flight_capacity,
            access_log=access_log,
        )
        server = MatchServer(app, host=args.host, port=args.port)
        shard_note = (
            f", {db.shard_count} shards" if hasattr(db, "shard_count") else ""
        )
        store_note = (
            f", store={args.store} gen={db.generation}"
            if args.store is not None
            else ""
        )
        # the port line is load-bearing: with --port 0, clients (and the
        # CLI e2e test) learn the ephemeral port from it.
        print(
            f"serving {db.cardinality} points x {db.dimensionality} dims"
            f"{shard_note}{store_note} on http://{server.host}:{server.port} "
            f"(max-inflight={args.max_inflight}, "
            f"deadline={args.deadline_ms:g}ms, "
            f"cache={args.cache_size})",
            flush=True,
        )
        slow_note = (
            f"slow-ms={args.slow_ms:g}" if args.slow_ms is not None
            else "slow-ms off"
        )
        print(
            f"flight recorder: capacity={args.flight_capacity}, "
            f"{slow_note}{access_log_note}",
            flush=True,
        )
        if args.mode == "approx":
            target = (
                args.target_recall
                if args.target_recall is not None
                else (DEFAULT_TARGET_RECALL if args.budget is None else None)
            )
            note = f"budget={args.budget}" if args.budget is not None else (
                f"target recall {target:g}"
            )
            print(f"default mode: approx ({note})", flush=True)
        server.run(drain_seconds=args.drain_seconds)
        print("server drained and stopped", flush=True)
    finally:
        if hasattr(db, "close"):
            db.close()
        if access_log is not None and access_log is not sys.stdout:
            access_log.close()
    return 0


def _print_lsm_status(status: dict) -> None:
    print(f"path:             {status['path']}")
    print(f"dimensionality:   {status['dimensionality']}")
    print(f"cardinality:      {status['cardinality']} live points")
    print(
        f"memtable:         {status['memtable_rows']} rows, "
        f"{status['tombstones']} tombstones"
    )
    print(
        f"generation:       {status['generation']} "
        f"(persisted {status['persisted_generation']})"
    )
    print(f"wal:              {status['wal_bytes']} bytes")
    print(
        f"flushes:          {status['flushes']}, "
        f"compactions: {status['compactions']}, "
        f"write amplification: {status['write_amplification']:.2f}"
    )
    print(f"segments:         {status['segments']}")
    for level in status["levels"]:
        ids = ",".join(str(s) for s in level["segment_ids"])
        print(
            f"  level {level['level']}: {level['segments']} segment"
            f"{'s' if level['segments'] != 1 else ''}, "
            f"{level['rows']} rows ({level['dead_rows']} dead) "
            f"[{ids}]"
        )
    last = status.get("last_compaction")
    if last:
        print(
            f"last compaction:  level {last['level']} -> "
            f"{last['level'] + 1}: {last['segments_merged']} segments, "
            f"{last['rows_in']} -> {last['rows_out']} rows in "
            f"{last['seconds']:.3f}s (generation {last['at_generation']})"
        )
    else:
        print("last compaction:  never")


def _run_lsm_info(args) -> int:
    from .lsm import LsmMatchDatabase

    with LsmMatchDatabase.recover(args.store, auto_compact=False) as db:
        status = db.info()
        torn = db.recovered_torn_wal
    if args.json:
        print(json.dumps(status, sort_keys=True, indent=2))
        return 0
    _print_lsm_status(status)
    if torn:
        print("note: a torn WAL tail was truncated during recovery")
    return 0


def _run_wal_info(args) -> int:
    import os

    from .lsm import wal_info
    from .lsm.store import WAL_NAME

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, WAL_NAME)
    summary = wal_info(path)
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
        return 0
    print(f"path:            {summary['path']}")
    print(
        f"bytes:           {summary['total_bytes']} total, "
        f"{summary['valid_bytes']} valid"
    )
    if summary["torn"]:
        print(f"torn tail:       yes ({summary['torn_reason']})")
    else:
        print("torn tail:       no")
    print(
        f"records:         {summary['records']} "
        f"({summary['inserts']} inserts, {summary['deletes']} deletes)"
    )
    if summary["records"]:
        print(
            f"generations:     {summary['min_generation']} .. "
            f"{summary['max_generation']}"
        )
    return 0


def _run_compact(args) -> int:
    from .lsm import LsmMatchDatabase

    with LsmMatchDatabase.recover(args.store, auto_compact=False) as db:
        before = db.info()
        flushed = db.flush()
        merges = db.compact()
        status = db.info()
    print(
        f"flushed {'the memtable' if flushed else 'nothing'} "
        f"({before['memtable_rows']} rows), ran {merges} level merge"
        f"{'s' if merges != 1 else ''}"
    )
    print(
        f"segments: {before['segments']} -> {status['segments']}, "
        f"tombstones: {before['tombstones']} -> {status['tombstones']}"
    )
    _print_lsm_status(status)
    return 0


def _run_flight(args) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(args.host, args.port)
    try:
        if args.trace is not None:
            payload = client.debug_trace(args.trace)
            record = payload.get("record", payload)
            if args.chrome_out is not None:
                chrome = client.debug_trace(args.trace, chrome=True)
                with open(args.chrome_out, "w", encoding="utf-8") as handle:
                    json.dump(chrome, handle)
                    handle.write("\n")
                print(
                    f"wrote Chrome trace for {args.trace} to "
                    f"{args.chrome_out}",
                    file=sys.stderr,
                )
            print(json.dumps(record, sort_keys=True, indent=2))
            return 0
        if args.chrome_out is not None:
            raise ReproError("--chrome-out requires --trace <id>")
        payload = client.debug_flight()
        if args.json:
            print(json.dumps(payload, sort_keys=True, indent=2))
            return 0
        records = payload.get("records", [])
        print(
            f"flight recorder: capacity={payload.get('capacity')} "
            f"recorded={payload.get('recorded')} "
            f"dropped={payload.get('dropped')} "
            f"retained={len(records)}"
        )
        for record in records:
            print(
                f"  seq={record['seq']} {record['reason']:5s} "
                f"{record['method']} {record['path']} "
                f"status={record['status']} "
                f"queue={record['queue_ms']:.3f}ms "
                f"handle={record['handle_ms']:.3f}ms "
                f"trace={record['trace_id']}"
            )
        return 0
    except ServeError as error:
        raise ReproError(str(error)) from error


def _run_approx_info(args) -> int:
    import time as _time

    from .eval import tie_aware_match_recall

    db = load_any_database(args.database)
    if args.k < 1 or args.k > db.cardinality:
        raise ReproError(
            f"--k {args.k} out of range [1, {db.cardinality}]"
        )
    n = args.n if args.n is not None else max(1, db.dimensionality // 2)
    target = (
        args.target_recall
        if args.target_recall is not None
        else DEFAULT_TARGET_RECALL
    )
    probes = max(1, min(args.probe_queries, db.cardinality))
    rows = np.unique(
        np.linspace(0, db.cardinality - 1, probes).astype(np.int64)
    )
    print(
        f"approximate tier on {args.database}: "
        f"{db.cardinality} points x {db.dimensionality} dims, "
        f"k={args.k}, n={n}, target recall {target:g}"
    )
    exact = []
    started = _time.perf_counter()
    for row in rows:
        exact.append(db.k_n_match(db.data[row], args.k, n, engine="block-ad"))
    exact_seconds = _time.perf_counter() - started
    exact_cells = sum(r.stats.attributes_retrieved for r in exact)
    print(
        f"exact block-ad baseline: {exact_cells} attributes, "
        f"{exact_seconds / len(rows) * 1e3:.2f} ms/query over "
        f"{len(rows)} probe queries"
    )
    for name in APPROX_ENGINE_NAMES:
        certified, measured, cells = [], [], 0
        started = _time.perf_counter()
        for row, truth in zip(rows, exact):
            result = db.k_n_match(
                db.data[row], args.k, n,
                mode="approx", engine=name, target_recall=target,
            )
            certified.append(result.certified_recall)
            measured.append(
                tie_aware_match_recall(result.differences, truth.differences)
            )
            cells += result.stats.attributes_retrieved
        seconds = _time.perf_counter() - started
        print(
            f"  {name:12s} certified recall >= {min(certified):.3f} "
            f"(weakest), measured {float(np.mean(measured)):.3f} mean; "
            f"attributes {cells}/{exact_cells} of exact, "
            f"{seconds / len(rows) * 1e3:.2f} ms/query"
        )
    engine = getattr(db, "_approx_engine", None)
    if engine is not None:
        sketch = engine("pivot-sketch")
        index = getattr(sketch, "index", None)
        if index is not None:
            print(
                f"pivot-sketch index: {index.pivot_count} pivots, "
                f"{index.nbytes / 1024:.1f} KiB "
                f"({index.nbytes / max(1, db.data.nbytes):.1%} of the data)"
            )
    print(
        "certified recall is a per-query lower bound the engine proves; "
        "measured recall is tie-aware agreement with the exact answer."
    )
    if hasattr(db, "close"):
        db.close()
    return 0


_HANDLERS = {
    "generate": _run_generate,
    "build": _run_build,
    "info": _run_info,
    "shard-info": _run_shard_info,
    "query": _run_query,
    "batch": _run_batch,
    "stats": _run_stats,
    "trace": _run_trace,
    "advise": _run_advise,
    "plan": _run_plan,
    "serve": _run_serve,
    "flight": _run_flight,
    "lsm-info": _run_lsm_info,
    "wal-info": _run_wal_info,
    "compact": _run_compact,
    "approx-info": _run_approx_info,
    "experiments": _run_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
