"""Background compaction: a worker thread that keeps the levels shallow.

The store's write path only ever *appends* segments (flushes land in
L0); this worker merges an overflowing level into the next one whenever
:meth:`~repro.lsm.store.LsmMatchDatabase.compact_once` finds work.  All
correctness lives in the store — the worker is pure scheduling: it
sleeps on a condition, is woken after every flush, and drains one
``compact_once`` at a time until no level overflows.

The thread is a daemon: an abandoned store cannot hang interpreter
shutdown.  A crash in the merge (including an injected
:class:`~repro.storage.fault.InjectedCrashError`) stops the worker and
is re-raised to whoever calls :meth:`check`; the store itself stays
consistent because an interrupted merge never unpublishes a victim
segment.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["Compactor"]


class Compactor:
    """Runs ``store.compact_once()`` on a daemon thread when woken."""

    def __init__(self, store, poll_seconds: float = 1.0) -> None:
        self._store = store
        self.poll_seconds = poll_seconds
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self.error: Optional[BaseException] = None
        self.rounds = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-lsm-compactor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def wake(self) -> None:
        """Signal that a flush may have created compaction work."""
        self._wake.set()

    def stop(self) -> None:
        """Stop the worker and wait for the in-flight round to finish."""
        self._stopping.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join()

    def check(self) -> None:
        """Re-raise a background failure, if any."""
        if self.error is not None:
            raise self.error

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=self.poll_seconds)
            if self._stopping.is_set():
                return
            self._wake.clear()
            try:
                while self._store.compact_once():
                    self.rounds += 1
                    if self._stopping.is_set():
                        return
            except BaseException as error:  # recorded, not swallowed
                self.error = error
                return
