"""The LSM memtable: the small mutable tier in front of the segments.

Freshly-inserted points live here until a flush freezes them into an L0
:class:`~repro.lsm.segment.Segment`.  It is the same brute-force delta
buffer :class:`~repro.core.dynamic.DynamicMatchDatabase` uses — tiny by
construction (the store flushes at ``memtable_flush_rows``), so an exact
per-point profile scan costs less than maintaining sorted columns under
mutation would.

The memtable itself is not thread-safe; the store's RLock serialises
every access, like all other mutable state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.types import SearchStats

__all__ = ["Memtable"]


class Memtable:
    """Append-only (rows, pids) with brute-force exact search."""

    def __init__(self, dimensionality: int) -> None:
        self.dimensionality = int(dimensionality)
        self.rows: List[np.ndarray] = []
        self.pids: List[int] = []
        self._pid_set: set = set()

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, pid: int) -> bool:
        return pid in self._pid_set

    @property
    def approx_bytes(self) -> int:
        """Rough resident size (coordinates only)."""
        return len(self.rows) * self.dimensionality * 8

    def add(self, coords: np.ndarray, pid: int) -> None:
        self.rows.append(coords)
        self.pids.append(pid)
        self._pid_set.add(pid)

    def get_point(self, pid: int) -> np.ndarray:
        return self.rows[self.pids.index(pid)].copy()

    def live_arrays(self, tombstones: set) -> Tuple[np.ndarray, np.ndarray]:
        """Live rows and pids in ascending-pid order, ready to freeze.

        Insertion order *is* pid order (pids are assigned monotonically
        under the store lock), so no sort is needed — asserted cheaply
        by the segment constructor's strictly-ascending check.
        """
        keep = [
            (coords, pid)
            for coords, pid in zip(self.rows, self.pids)
            if pid not in tombstones
        ]
        if not keep:
            empty = np.empty((0, self.dimensionality), dtype=np.float64)
            return empty, np.empty(0, dtype=np.int64)
        rows = np.vstack([coords for coords, _pid in keep])
        pids = np.asarray([pid for _coords, pid in keep], dtype=np.int64)
        return rows, pids

    def collect_candidates(
        self,
        query: np.ndarray,
        n0: int,
        n1: int,
        tombstones: set,
        per_n: Dict[int, List[Tuple[float, int]]],
        stats: SearchStats,
    ) -> None:
        """Add every live memtable point's exact candidates to the streams."""
        for coords, pid in zip(self.rows, self.pids):
            if pid in tombstones:
                continue
            profile = np.sort(np.abs(coords - query))
            stats.attributes_retrieved += self.dimensionality
            for n in range(n0, n1 + 1):
                per_n[n].append((float(profile[n - 1]), pid))

    def clear(self) -> None:
        self.rows = []
        self.pids = []
        self._pid_set = set()
