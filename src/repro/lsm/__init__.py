"""``repro.lsm`` — the durable, write-heavy tier of the reproduction.

An LSM-tree organisation of the paper's exact k-n-match engines:
WAL-logged mutations, a brute-force memtable, leveled immutable
block-AD segments, background compaction and crash recovery — every
query bit-identical to the naive oracle over the live set at every
instant.  See ``docs/durability.md``.
"""

from .compactor import Compactor
from .memtable import Memtable
from .segment import Segment
from .store import LsmMatchDatabase
from .wal import WalRecord, WalWriter, read_wal, truncate_wal, wal_info

__all__ = [
    "LsmMatchDatabase",
    "Compactor",
    "Memtable",
    "Segment",
    "WalRecord",
    "WalWriter",
    "read_wal",
    "truncate_wal",
    "wal_info",
]
